//! Backend equivalence: the same [`NetScenario`] replayed over the
//! deterministic sim transport and over real loopback TCP sockets must
//! deliver the same message multiset to every subscriber and the same
//! per-broker delivery counts (DESIGN.md §13).

use greenps_broker::messages::BrokerMsg;
use greenps_broker::{NetDeployment, NetScenario};
use greenps_core::pipeline::CancelToken;
use greenps_net::{SimTransport, TcpTransport, Transport};

fn run<T, E>(mut transport: T, scenario: &NetScenario) -> greenps_broker::NetDeployReport
where
    T: Transport<BrokerMsg, Endpoint = E>,
    E: greenps_net::Endpoint<BrokerMsg>,
{
    NetDeployment::build(&mut transport, scenario)
        .expect("build deployment")
        .run(&CancelToken::new())
        .expect("run deployment")
}

#[test]
fn sim_and_tcp_deliver_the_same_multiset() {
    let scenario = NetScenario::stock_chain(3, 25);
    let sim = run(SimTransport::new(), &scenario);
    let tcp = run(TcpTransport::new(), &scenario);

    assert_eq!(sim.published, 25);
    assert_eq!(tcp.published, 25);
    // Same deliveries, subscriber by subscriber, as sorted multisets.
    assert_eq!(sim.deliveries, tcp.deliveries);
    // Same per-broker matched/delivered counters.
    assert_eq!(sim.broker_stats, tcp.broker_stats);
    // And the chain actually carried traffic end to end.
    assert_eq!(sim.total_delivered(), 75);
    assert_eq!(sim.mean_hops, tcp.mean_hops);
    assert_eq!(tcp.send_errors, 0);
}

#[test]
fn tcp_overlay_reports_latency_per_broker() {
    let scenario = NetScenario::stock_chain(2, 10);
    let report = run(TcpTransport::new(), &scenario);
    assert_eq!(report.total_delivered(), 20);
    // Both home brokers produced latency samples on the wall clock.
    assert_eq!(report.latency_us_by_broker.len(), 2);
    for samples in report.latency_us_by_broker.values() {
        assert_eq!(samples.len(), 10);
    }
    assert!(report.elapsed.as_secs_f64() > 0.0);
}
