//! Broker protocol integration tests: unsubscribe/unadvertise flows,
//! re-profiling, and larger fan-out trees.

use greenps_broker::{Broker, BrokerConfig, BrokerMsg, Deployment, SubscriberClient, TopologySpec};
use greenps_core::model::LinearFn;
use greenps_pubsub::filter::{stock_advertisement, stock_template};
use greenps_pubsub::ids::{AdvId, BrokerId, ClientId, MsgId, SubId};
use greenps_pubsub::message::{Publication, Subscription};
use greenps_pubsub::Op;
use greenps_pubsub::Predicate;
use greenps_simnet::{LinkSpec, SimDuration};

fn spec(n: u64) -> TopologySpec {
    TopologySpec {
        brokers: (0..n)
            .map(|i| BrokerConfig::new(BrokerId::new(i), LinearFn::new(0.0001, 0.0), 1e9))
            .collect(),
        edges: (1..n)
            .map(|i| (BrokerId::new((i - 1) / 2), BrokerId::new(i)))
            .collect(),
        link: LinkSpec::with_latency(SimDuration::from_millis(1)),
    }
}

fn stock_gen(symbol: &'static str) -> greenps_broker::PublicationGen {
    Box::new(move |adv, msg: MsgId| {
        Publication::builder(adv, msg)
            .attr("class", "STOCK")
            .attr("symbol", symbol)
            .attr("low", 10.0 + (msg.raw() % 10) as f64)
            .build()
    })
}

#[test]
fn unsubscribe_stops_delivery_network_wide() {
    let mut d = Deployment::build(&spec(7)).expect("valid topology");
    d.attach_publisher(
        ClientId::new(1),
        AdvId::new(1),
        stock_advertisement("YHOO"),
        SimDuration::from_millis(100),
        BrokerId::new(3),
        stock_gen("YHOO"),
    )
    .expect("known broker");
    let sub_node = d
        .attach_subscriber(
            ClientId::new(2),
            BrokerId::new(6),
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        )
        .expect("known broker");
    d.run_for(SimDuration::from_secs(2));
    let before = d
        .net
        .node_as::<SubscriberClient>(sub_node)
        .unwrap()
        .deliveries();
    assert!(before > 10);

    // The subscriber's broker receives an Unsubscribe from the client.
    let broker_node = d.brokers[&BrokerId::new(6)];
    d.net
        .inject(sub_node, broker_node, BrokerMsg::Unsubscribe(SubId::new(1)));
    d.run_for(SimDuration::from_secs(1)); // let it propagate
    let settled = d
        .net
        .node_as::<SubscriberClient>(sub_node)
        .unwrap()
        .deliveries();
    d.run_for(SimDuration::from_secs(3));
    let after = d
        .net
        .node_as::<SubscriberClient>(sub_node)
        .unwrap()
        .deliveries();
    assert!(
        after <= settled + 1,
        "deliveries kept arriving after unsubscribe: {settled} -> {after}"
    );
    // Upstream brokers dropped the route: the publication no longer
    // crosses the root.
    d.net.reset_counters();
    d.run_for(SimDuration::from_secs(3));
    let root_traffic = d.net.counters(d.brokers[&BrokerId::new(0)]).msgs_in;
    assert_eq!(root_traffic, 0, "root still sees traffic after unsubscribe");
}

#[test]
fn overlapping_subscriptions_share_one_stream() {
    // Two subscribers on the same broker with overlapping filters: the
    // upstream link carries each publication once.
    let mut d = Deployment::build(&spec(3)).expect("valid topology");
    d.attach_publisher(
        ClientId::new(1),
        AdvId::new(1),
        stock_advertisement("YHOO"),
        SimDuration::from_millis(100),
        BrokerId::new(1),
        stock_gen("YHOO"),
    )
    .expect("known broker");
    d.attach_subscriber(
        ClientId::new(2),
        BrokerId::new(2),
        vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
    )
    .expect("known broker");
    d.attach_subscriber(
        ClientId::new(3),
        BrokerId::new(2),
        vec![Subscription::new(
            SubId::new(2),
            stock_template("YHOO").and(Predicate::new("low", Op::Lt, 15.0)),
        )],
    )
    .expect("known broker");
    d.run_for(SimDuration::from_secs(1));
    d.net.reset_counters();
    d.run_for(SimDuration::from_secs(10));
    // ~100 publications; broker 2 receives each once from broker 0 but
    // sends up to two copies to its clients.
    let b2 = d.net.counters(d.brokers[&BrokerId::new(2)]);
    assert!(b2.msgs_in >= 95 && b2.msgs_in <= 105, "in {}", b2.msgs_in);
    assert!(b2.msgs_out > b2.msgs_in, "fan-out to two clients");
}

#[test]
fn reset_profiles_supports_reprofiling_rounds() {
    let mut d = Deployment::build(&spec(3)).expect("valid topology");
    d.attach_publisher(
        ClientId::new(1),
        AdvId::new(1),
        stock_advertisement("YHOO"),
        SimDuration::from_millis(100),
        BrokerId::new(1),
        stock_gen("YHOO"),
    )
    .expect("known broker");
    d.attach_subscriber(
        ClientId::new(2),
        BrokerId::new(2),
        vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
    )
    .expect("known broker");
    d.run_for(SimDuration::from_secs(5));
    let infos1 = d.gather(SimDuration::from_secs(10)).expect("gather 1");
    let ones1: usize = infos1
        .iter()
        .flat_map(|i| &i.subscriptions)
        .map(|s| s.profile.count_ones())
        .sum();
    assert!(ones1 >= 40);

    // Reset CBC state everywhere and re-profile a shorter window.
    let broker_nodes: Vec<_> = d.brokers.values().copied().collect();
    for node in broker_nodes {
        d.net.node_as_mut::<Broker>(node).unwrap().reset_profiles();
    }
    d.run_for(SimDuration::from_secs(2));
    let infos2 = d.gather(SimDuration::from_secs(10)).expect("gather 2");
    let ones2: usize = infos2
        .iter()
        .flat_map(|i| &i.subscriptions)
        .map(|s| s.profile.count_ones())
        .sum();
    assert!(
        ones2 > 0 && ones2 < ones1,
        "fresh window is shorter: {ones2} vs {ones1}"
    );
}

#[test]
fn wide_tree_floods_advertisements_everywhere() {
    let mut d = Deployment::build(&spec(15)).expect("valid topology");
    d.attach_publisher(
        ClientId::new(1),
        AdvId::new(1),
        stock_advertisement("YHOO"),
        SimDuration::from_millis(200),
        BrokerId::new(7), // a leaf
        stock_gen("YHOO"),
    )
    .expect("known broker");
    d.run_for(SimDuration::from_secs(1));
    // Every broker in the 15-node tree knows the advertisement: attach a
    // late subscriber at the farthest leaf and expect deliveries.
    let sub_node = d
        .attach_subscriber(
            ClientId::new(2),
            BrokerId::new(14),
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        )
        .expect("known broker");
    d.run_for(SimDuration::from_secs(5));
    let s = d.net.node_as::<SubscriberClient>(sub_node).unwrap();
    assert!(
        s.deliveries() >= 20,
        "late subscriber receives: {}",
        s.deliveries()
    );
}
