//! Property tests of the broker wire codec: every [`BrokerMsg`]
//! variant must survive encode → decode → re-encode with the re-encoded
//! bytes identical to the original (byte stability), for arbitrary
//! filters, publications, profiles and gathered BIA payloads.

use greenps_broker::messages::{BrokerMsg, GatheredBroker, PubEnvelope};
use greenps_core::model::{BrokerSpec, LinearFn, SubscriptionEntry};
use greenps_net::{decode_exact, Wire};
use greenps_profile::{PublisherProfile, SubscriptionProfile};
use greenps_pubsub::filter::Filter;
use greenps_pubsub::ids::{AdvId, ClientId, MsgId, SubId};
use greenps_pubsub::message::{Advertisement, Publication, Subscription};
use greenps_pubsub::predicate::{Op, Predicate};
use greenps_pubsub::value::Value;
use greenps_simnet::SimTime;
use proptest::prelude::*;

const ATTRS: [&str; 4] = ["class", "symbol", "low", "volume"];
const SYMBOLS: [&str; 3] = ["YHOO", "GOOG", "AAPL"];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        proptest::sample::select(SYMBOLS.to_vec()).prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    proptest::sample::select(vec![
        Op::Eq,
        Op::Neq,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::Prefix,
        Op::Suffix,
        Op::Contains,
        Op::Present,
    ])
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    proptest::collection::vec(
        (
            proptest::sample::select(ATTRS.to_vec()),
            arb_op(),
            arb_value(),
        )
            .prop_map(|(attr, op, value)| Predicate::new(attr, op, value)),
        0..4,
    )
    .prop_map(Filter::from_predicates)
}

fn arb_publication() -> impl Strategy<Value = Publication> {
    (
        0u64..100,
        0u64..1000,
        proptest::collection::vec(
            (proptest::sample::select(ATTRS.to_vec()), arb_value()),
            0..5,
        ),
    )
        .prop_map(|(adv, msg, attrs)| {
            let mut b = Publication::builder(AdvId::new(adv), MsgId::new(msg));
            for (a, v) in attrs {
                b = b.attr(a, v);
            }
            b.build()
        })
}

fn arb_profile() -> impl Strategy<Value = SubscriptionProfile> {
    proptest::collection::vec(
        (0u64..4, proptest::collection::vec(0u64..2000, 0..12)),
        0..4,
    )
    .prop_map(|advs| {
        let mut p = SubscriptionProfile::with_capacity(64);
        for (adv, msgs) in advs {
            for m in msgs {
                p.record(AdvId::new(adv), MsgId::new(m));
            }
        }
        p
    })
}

fn arb_gathered() -> impl Strategy<Value = GatheredBroker> {
    (
        0u64..50,
        proptest::sample::select(vec!["", "sim://b0", "tcp://127.0.0.1:7000", "broker-url"]),
        (-2.0f64..2.0, -2.0f64..2.0, 0.0f64..1e9),
        proptest::collection::vec((0u64..100, arb_filter(), arb_profile()), 0..3),
        proptest::collection::vec((0u64..100, 0.0f64..500.0, 0.0f64..1e6, 0u64..1000), 0..3),
    )
        .prop_map(
            |(id, url, (base, per_sub, bw), subs, pubs)| GatheredBroker {
                spec: BrokerSpec::new(
                    greenps_pubsub::ids::BrokerId::new(id),
                    url,
                    LinearFn::new(base, per_sub),
                    bw,
                ),
                subscriptions: subs
                    .into_iter()
                    .map(|(s, f, p)| SubscriptionEntry::new(SubId::new(s), f, p))
                    .collect(),
                publishers: pubs
                    .into_iter()
                    .map(|(adv, rate, bw, last)| {
                        PublisherProfile::new(AdvId::new(adv), rate, bw, MsgId::new(last))
                    })
                    .collect(),
            },
        )
}

fn arb_msg() -> impl Strategy<Value = BrokerMsg> {
    prop_oneof![
        (0u64..1000).prop_map(|c| BrokerMsg::ClientHello {
            client: ClientId::new(c)
        }),
        (0u64..100, arb_filter())
            .prop_map(|(id, f)| BrokerMsg::Advertise(Advertisement::new(AdvId::new(id), f))),
        (0u64..100).prop_map(|id| BrokerMsg::Unadvertise(AdvId::new(id))),
        (0u64..100, arb_filter())
            .prop_map(|(id, f)| BrokerMsg::Subscribe(Subscription::new(SubId::new(id), f))),
        (0u64..100).prop_map(|id| BrokerMsg::Unsubscribe(SubId::new(id))),
        (arb_publication(), 0u32..16, 0u64..1_000_000).prop_map(|(p, hops, at)| {
            let mut env = PubEnvelope::new(p, SimTime::from_micros(at));
            for _ in 0..hops {
                env = env.hopped();
            }
            BrokerMsg::Publication(env)
        }),
        (0u64..1000).prop_map(|request| BrokerMsg::Bir { request }),
        (0u64..1000, proptest::collection::vec(arb_gathered(), 0..3))
            .prop_map(|(request, infos)| BrokerMsg::Bia { request, infos }),
    ]
}

proptest! {
    /// Encode → decode → re-encode is the identity on bytes: the codec
    /// is deterministic and byte-stable for every message variant.
    #[test]
    fn broker_msg_round_trips_byte_stably(msg in arb_msg()) {
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        let decoded: BrokerMsg = decode_exact(&bytes).expect("decode what we encoded");
        let mut again = Vec::new();
        decoded.encode(&mut again);
        prop_assert_eq!(&bytes, &again, "re-encoded bytes diverged");
    }

    /// Decoding never panics on arbitrary garbage — it returns a typed
    /// error or (rarely) a valid message.
    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_exact::<BrokerMsg>(&bytes);
    }

    /// Truncating a valid encoding at any point yields an error, never
    /// a silently short message.
    #[test]
    fn truncation_is_detected(msg in arb_msg(), cut in 0usize..64) {
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        if cut < bytes.len() {
            prop_assert!(decode_exact::<BrokerMsg>(&bytes[..cut]).is_err());
        }
    }
}
