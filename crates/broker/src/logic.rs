//! Backend-agnostic broker logic: the content-based routing, CBC
//! profiling and BIR/BIA protocol of [`crate::broker`] factored out of
//! the simnet `Process` so the same state machine drives every
//! transport backend (DESIGN.md §13).
//!
//! [`BrokerCore`] is generic over the peer handle `P` — a simnet
//! `NodeId`, a live-thread endpoint id, or a `greenps_net` node name —
//! and performs all I/O through a [`BrokerSink`], the minimal clocked
//! send interface each runtime implements. The simnet wrapper in
//! [`crate::broker`] adapts a `Context` to the sink, so the discrete-
//! event semantics (and every existing test) are bit-identical to the
//! pre-refactor broker.

use crate::messages::{BrokerMsg, GatheredBroker};
use greenps_core::model::{BrokerSpec, SubscriptionEntry};
use greenps_profile::{PublisherProfile, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, MsgId, SubId};
use greenps_pubsub::routing::RoutingTables;
use greenps_simnet::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

use crate::broker::BrokerConfig;

/// The I/O surface a broker runtime offers the core: a clock and a
/// way to send (possibly delayed) messages to peers.
///
/// `send_after` models the broker's service delay. Backends without a
/// scheduler (live threads, TCP) may send immediately; the simnet
/// backend maps it onto `Context::send_after` so queueing delays stay
/// bit-identical with the original in-process broker.
pub trait BrokerSink<P> {
    /// Current time on this runtime's clock.
    fn now(&self) -> SimTime;
    /// Sends a message to a peer now.
    fn send(&mut self, to: P, msg: BrokerMsg);
    /// Sends a message to a peer after a service delay.
    fn send_after(&mut self, delay: SimDuration, to: P, msg: BrokerMsg);
}

/// Per-publisher statistics kept by the CBC for locally attached
/// publishers.
#[derive(Debug, Clone)]
pub(crate) struct LocalPublisher {
    pub(crate) first_seen: SimTime,
    pub(crate) msgs: u64,
    pub(crate) bytes: u64,
    pub(crate) last_msg_id: MsgId,
}

#[derive(Debug)]
struct PendingBir<P> {
    parent: P,
    waiting: BTreeSet<P>,
    collected: Vec<GatheredBroker>,
}

/// The transport-independent broker state machine.
///
/// Owns routing tables, the CBC profiles and the service-queue clock;
/// every handler takes a [`BrokerSink`] for output. Peer handles are
/// opaque ordered values — the core never inspects them beyond
/// equality and set membership.
pub struct BrokerCore<P> {
    pub(crate) config: BrokerConfig,
    pub(crate) routing: RoutingTables<P>,
    pub(crate) broker_neighbors: BTreeSet<P>,
    pub(crate) clients: BTreeSet<P>,
    busy_until: SimTime,
    /// CBC: bit-vector profiles of local (client) subscriptions.
    pub(crate) sub_profiles: BTreeMap<SubId, SubscriptionProfile>,
    /// CBC: local publisher statistics keyed by advertisement.
    pub(crate) local_publishers: BTreeMap<AdvId, LocalPublisher>,
    pending_bir: BTreeMap<u64, PendingBir<P>>,
    seen_bir: BTreeSet<u64>,
    /// Publications processed (matched) by this broker.
    pub matched_count: u64,
    /// Publications delivered to local clients.
    pub delivered_count: u64,
    /// Reusable next-hop buffer for [`BrokerCore::handle_publication`]:
    /// the per-publication forwarding set is rebuilt in place instead
    /// of allocating a fresh `Vec` per message.
    hops_scratch: Vec<P>,
}

impl<P: Copy + Ord> BrokerCore<P> {
    /// Creates a broker core.
    pub fn new(config: BrokerConfig) -> Self {
        Self {
            config,
            routing: RoutingTables::new(),
            broker_neighbors: BTreeSet::new(),
            clients: BTreeSet::new(),
            busy_until: SimTime::ZERO,
            sub_profiles: BTreeMap::new(),
            local_publishers: BTreeMap::new(),
            pending_bir: BTreeMap::new(),
            seen_bir: BTreeSet::new(),
            matched_count: 0,
            delivered_count: 0,
            hops_scratch: Vec::new(),
        }
    }

    /// Broker identity.
    pub fn id(&self) -> greenps_pubsub::ids::BrokerId {
        self.config.id
    }

    /// Registers a neighboring broker peer (call on both endpoints
    /// after connecting them in the underlying network).
    pub fn add_broker_neighbor(&mut self, peer: P) {
        self.broker_neighbors.insert(peer);
    }

    /// Number of stored subscriptions (routing-table entries).
    pub fn subscription_count(&self) -> usize {
        self.routing.subscription_count()
    }

    /// The CBC profile of a local subscription.
    pub fn profile_of(&self, sub: SubId) -> Option<&SubscriptionProfile> {
        self.sub_profiles.get(&sub)
    }

    /// Resets CBC profiling state (fresh re-profiling window).
    pub fn reset_profiles(&mut self) {
        for p in self.sub_profiles.values_mut() {
            *p = SubscriptionProfile::with_capacity(self.config.profile_bits);
        }
        self.local_publishers.clear();
    }

    /// Builds this broker's own BIA contribution.
    fn own_info(&self, now: SimTime) -> GatheredBroker {
        let subscriptions = self
            .sub_profiles
            .iter()
            .filter_map(|(&id, profile)| {
                self.routing
                    .subscription(id)
                    .map(|s| SubscriptionEntry::new(id, s.filter.clone(), profile.clone()))
            })
            .collect();
        let publishers = self
            .local_publishers
            .iter()
            .map(|(&adv, lp)| {
                let elapsed = now.since(lp.first_seen).as_secs_f64().max(1e-9);
                PublisherProfile::new(
                    adv,
                    lp.msgs as f64 / elapsed,
                    lp.bytes as f64 / elapsed,
                    lp.last_msg_id,
                )
            })
            .collect();
        GatheredBroker {
            spec: BrokerSpec::new(
                self.config.id,
                self.config.url.clone(),
                self.config.matching_delay,
                self.config.out_bandwidth,
            ),
            subscriptions,
            publishers,
        }
    }

    fn handle_publication<S: BrokerSink<P>>(
        &mut self,
        sink: &mut S,
        from: P,
        env: crate::messages::PubEnvelope,
    ) {
        // Single service queue: matching delay depends on table size.
        let service =
            SimDuration::from_secs_f64(self.config.matching_delay.delay(self.subscription_count()));
        let now = sink.now();
        let start = now.max(self.busy_until);
        self.busy_until = start + service;
        let fwd_delay = self.busy_until.since(now);
        self.matched_count += 1;

        // CBC: update local publisher stats.
        if self.clients.contains(&from) {
            let lp = self
                .local_publishers
                .entry(env.publication.adv_id)
                .or_insert_with(|| LocalPublisher {
                    first_seen: now,
                    msgs: 0,
                    bytes: 0,
                    last_msg_id: MsgId::new(0),
                });
            lp.msgs += 1;
            lp.bytes += env.publication.wire_size() as u64;
            lp.last_msg_id = lp.last_msg_id.max(env.publication.msg_id);
        }

        // Match once; derive forwarding set and local deliveries. The
        // hop buffer is a scratch field so steady-state forwarding does
        // not allocate per publication.
        let matching = self.routing.matching_subscriptions_mut(&env.publication);
        let mut hops = std::mem::take(&mut self.hops_scratch);
        hops.clear();
        hops.reserve(matching.len());
        for &sub in &matching {
            let Some(&hop) = self.routing.subscription_hop(sub) else {
                continue;
            };
            if hop == from {
                continue;
            }
            if self.clients.contains(&hop) {
                // CBC: record the publication in the local profile.
                if let Some(profile) = self.sub_profiles.get_mut(&sub) {
                    profile.record(env.publication.adv_id, env.publication.msg_id);
                }
            }
            if !hops.contains(&hop) {
                hops.push(hop);
            }
        }
        for &hop in &hops {
            if self.clients.contains(&hop) {
                self.delivered_count += 1;
            }
            sink.send_after(fwd_delay, hop, BrokerMsg::Publication(env.hopped()));
        }
        self.hops_scratch = hops;
    }

    /// Advertisement churn (control plane): install the advertisement
    /// and route existing subscriptions toward a late advertiser.
    fn handle_advertise<S: BrokerSink<P>>(
        &mut self,
        sink: &mut S,
        from: P,
        adv: greenps_pubsub::message::Advertisement,
    ) {
        if self.routing.insert_advertisement(adv.clone(), from) {
            for &n in &self.broker_neighbors {
                if n != from {
                    sink.send(n, BrokerMsg::Advertise(adv.clone()));
                }
            }
            // Late advertisement: route existing subscriptions
            // toward it.
            let subs = self.routing.subscriptions_toward(&adv, &from);
            if self.broker_neighbors.contains(&from) {
                for sub_id in subs {
                    if let Some(s) = self.routing.subscription(sub_id) {
                        sink.send(from, BrokerMsg::Subscribe(s.clone()));
                    }
                }
            }
        }
    }

    /// Subscription churn (control plane): install the subscription,
    /// start a CBC profile for local clients, and forward upstream.
    fn handle_subscribe<S: BrokerSink<P>>(
        &mut self,
        sink: &mut S,
        from: P,
        sub: greenps_pubsub::message::Subscription,
    ) {
        let is_local = self.clients.contains(&from);
        let forwards = self.routing.insert_subscription(sub.clone(), from);
        if is_local {
            self.sub_profiles.insert(
                sub.id,
                SubscriptionProfile::with_capacity(self.config.profile_bits),
            );
        }
        for hop in forwards {
            if self.broker_neighbors.contains(&hop) {
                sink.send(hop, BrokerMsg::Subscribe(sub.clone()));
            }
        }
    }

    fn handle_bir<S: BrokerSink<P>>(&mut self, sink: &mut S, from: P, request: u64) {
        if !self.seen_bir.insert(request) {
            // Duplicate (possible only in non-tree overlays): answer
            // empty so the sender is not left waiting.
            sink.send(
                from,
                BrokerMsg::Bia {
                    request,
                    infos: Vec::new(),
                },
            );
            return;
        }
        let targets: Vec<P> = self
            .broker_neighbors
            .iter()
            .copied()
            .filter(|&n| n != from)
            .collect();
        if targets.is_empty() {
            let infos = vec![self.own_info(sink.now())];
            sink.send(from, BrokerMsg::Bia { request, infos });
            return;
        }
        for &t in &targets {
            sink.send(t, BrokerMsg::Bir { request });
        }
        self.pending_bir.insert(
            request,
            PendingBir {
                parent: from,
                waiting: targets.into_iter().collect(),
                collected: Vec::new(),
            },
        );
    }

    fn handle_bia<S: BrokerSink<P>>(
        &mut self,
        sink: &mut S,
        from: P,
        request: u64,
        infos: Vec<GatheredBroker>,
    ) {
        let Some(pending) = self.pending_bir.get_mut(&request) else {
            return;
        };
        pending.waiting.remove(&from);
        pending.collected.extend(infos);
        if !pending.waiting.is_empty() {
            return;
        }
        let Some(pending) = self.pending_bir.remove(&request) else {
            return;
        };
        let mut infos = pending.collected;
        infos.push(self.own_info(sink.now()));
        sink.send(pending.parent, BrokerMsg::Bia { request, infos });
    }

    /// Dispatches one incoming message — the single entry point every
    /// backend drives. `from` is the peer the message arrived from.
    pub fn on_message<S: BrokerSink<P>>(&mut self, sink: &mut S, from: P, msg: BrokerMsg) {
        match msg {
            BrokerMsg::ClientHello { .. } => {
                self.clients.insert(from);
            }
            BrokerMsg::Advertise(adv) => self.handle_advertise(sink, from, adv),
            BrokerMsg::Unadvertise(id) => {
                if self.routing.remove_advertisement(id) {
                    for &n in &self.broker_neighbors {
                        if n != from {
                            sink.send(n, BrokerMsg::Unadvertise(id));
                        }
                    }
                }
            }
            BrokerMsg::Subscribe(sub) => self.handle_subscribe(sink, from, sub),
            BrokerMsg::Unsubscribe(id) => {
                if self.routing.remove_subscription(id).is_some() {
                    self.sub_profiles.remove(&id);
                    for &n in &self.broker_neighbors {
                        if n != from {
                            sink.send(n, BrokerMsg::Unsubscribe(id));
                        }
                    }
                }
            }
            BrokerMsg::Publication(env) => self.handle_publication(sink, from, env),
            BrokerMsg::Bir { request } => self.handle_bir(sink, from, request),
            BrokerMsg::Bia { request, infos } => self.handle_bia(sink, from, request, infos),
        }
    }
}
