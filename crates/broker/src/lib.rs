//! # greenps-broker
//!
//! The PADRES-like broker built on `greenps-pubsub` routing and the
//! `greenps-simnet` discrete-event runtime, with the paper's CROC
//! Back-end Component (CBC) integrated: bit-vector subscription
//! profiling, local publisher profiling, and the BIR/BIA information-
//! gathering protocol of Phase 1.
//!
//! The [`deploy`] module provides the PANDA-style deployment harness the
//! evaluation uses: build a topology, attach publishers/subscribers,
//! warm up, gather, and measure.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod audit;
pub mod broker;
pub mod client;
pub mod deploy;
pub mod live;
pub mod logic;
pub mod messages;
pub mod netdeploy;
pub mod wire;

pub use broker::{Broker, BrokerConfig};
pub use client::{CrocClient, PublicationGen, PublisherClient, SubscriberClient};
pub use deploy::{DeployError, Deployment, GatherError, RunMetrics, TopologySpec};
pub use logic::{BrokerCore, BrokerSink};
pub use messages::{BrokerMsg, GatheredBroker, PubEnvelope};
pub use netdeploy::{
    NetBrokerStats, NetDeployError, NetDeployReport, NetDeployment, NetPublisher, NetScenario,
    NetSubscriber,
};
