//! Live threaded deployment: the same broker overlay semantics running
//! on OS threads and crossbeam channels instead of the discrete-event
//! simulator — the moral equivalent of a PANDA deployment onto real
//! processes.
//!
//! Each broker is a thread owning a [`BrokerCore`] — the same
//! transport-independent state machine the simulator and TCP backends
//! drive — with channel pairs for links and a [`LiveSink`] adapting
//! core sends onto crossbeam senders. The harness uses this runtime to
//! demonstrate that a `ReconfigurationPlan` is executable against live
//! processes, not only inside the simulator.
//!
//! Every public operation returns `Result<_, LiveError>` rather than
//! panicking: an unknown broker id or a broker thread that has already
//! exited surfaces as a typed error the deployer can react to. Shared
//! runtime state (the per-broker statistics snapshot) sits behind an
//! [`audit::TrackedRwLock`] so the concurrency audit observes the live
//! path, and the `concurrency-audit` cargo feature arms a watchdog
//! thread that files stall reports when brokers have queued input but
//! stop making progress (see DESIGN.md §9).

use crate::audit::TrackedRwLock;
use crate::broker::BrokerConfig;
use crate::logic::{BrokerCore, BrokerSink};
use crate::messages::{BrokerMsg, PubEnvelope};
use greenps_core::model::LinearFn;
use greenps_core::pipeline::ReconfigContext;
use greenps_pubsub::ids::{AdvId, BrokerId, ClientId, SubId};
use greenps_pubsub::message::{Advertisement, Publication, Subscription};
use greenps_simnet::{SimDuration, SimTime};
use greenps_telemetry::{Gauge, Registry};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Global endpoint id: brokers and clients share one namespace.
type EndpointId = u64;

/// Errors surfaced by the live deployment runtime.
#[derive(Debug)]
pub enum LiveError {
    /// An operation referenced a broker id not present in the overlay.
    UnknownBroker(BrokerId),
    /// A broker's message loop has already exited, so its channel is
    /// disconnected.
    Disconnected(BrokerId),
    /// The OS refused to spawn a broker thread.
    Spawn(std::io::Error),
    /// A broker thread panicked; its statistics are lost.
    BrokerPanicked(BrokerId),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::UnknownBroker(b) => write!(f, "unknown broker {b} in live overlay"),
            LiveError::Disconnected(b) => write!(f, "live broker {b} is no longer running"),
            LiveError::Spawn(e) => write!(f, "failed to spawn broker thread: {e}"),
            LiveError::BrokerPanicked(b) => write!(f, "live broker {b} panicked"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Spawn(e) => Some(e),
            _ => None,
        }
    }
}

/// Messages flowing between live endpoints. Broker traffic is the
/// shared [`BrokerMsg`] vocabulary — the same state machine the simnet
/// and TCP backends drive — while the `Attach*` variants carry the
/// channel-wiring control plane unique to this runtime.
enum LiveMsg {
    AttachBroker(EndpointId, Sender<Envelope>),
    AttachClient(EndpointId, Sender<Publication>),
    Broker(BrokerMsg),
    Shutdown,
}

struct Envelope {
    from: EndpointId,
    msg: LiveMsg,
}

/// Statistics a live broker reports at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveBrokerStats {
    /// Messages received from peers/clients.
    pub msgs_in: u64,
    /// Messages sent to peers/clients.
    pub msgs_out: u64,
    /// Publications delivered to local clients.
    pub delivered: u64,
}

/// Shared, audited view of every live broker's statistics, refreshed by
/// the broker threads as they run.
type StatsBoard = Arc<TrackedRwLock<BTreeMap<BrokerId, LiveBrokerStats>>>;

/// How many messages a broker processes between snapshot refreshes.
const STATS_REFRESH_EVERY: u64 = 32;

/// Per-broker live gauges, refreshed together with the stats board so
/// the telemetry plane and the audit watchdog observe the same values.
struct BrokerGauges {
    msgs_in: Gauge,
    msgs_out: Gauge,
    delivered: Gauge,
}

impl BrokerGauges {
    fn attach(registry: &Registry, broker: BrokerId) -> Self {
        let tag = format!("broker.b{}", broker.raw());
        Self {
            msgs_in: registry.gauge(&format!("{tag}.live_msgs_in")),
            msgs_out: registry.gauge(&format!("{tag}.live_msgs_out")),
            delivered: registry.gauge(&format!("{tag}.live_delivered")),
        }
    }

    fn refresh(&self, stats: &LiveBrokerStats) {
        self.msgs_in.set(stats.msgs_in);
        self.msgs_out.set(stats.msgs_out);
        self.delivered.set(stats.delivered);
    }
}

/// [`BrokerSink`] over crossbeam channels: peer sends travel as
/// [`LiveMsg::Broker`] envelopes, client-bound publications unwrap to
/// the bare [`Publication`] delivery channel. The live runtime has no
/// scheduler, so `send_after` sends immediately — service delays are
/// whatever the OS threads impose.
struct LiveSink<'a> {
    my_id: EndpointId,
    peers: &'a HashMap<EndpointId, Sender<Envelope>>,
    clients: &'a HashMap<EndpointId, Sender<Publication>>,
    stats: &'a mut LiveBrokerStats,
    start: &'a Instant,
}

impl BrokerSink<EndpointId> for LiveSink<'_> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    fn send(&mut self, to: EndpointId, msg: BrokerMsg) {
        if let Some(tx) = self.clients.get(&to) {
            if let BrokerMsg::Publication(env) = msg {
                self.stats.msgs_out += 1;
                self.stats.delivered += 1;
                let _ = tx.send(env.publication);
            }
            return;
        }
        if let Some(tx) = self.peers.get(&to) {
            self.stats.msgs_out += 1;
            let _ = tx.send(Envelope {
                from: self.my_id,
                msg: LiveMsg::Broker(msg),
            });
        }
    }

    fn send_after(&mut self, _delay: SimDuration, to: EndpointId, msg: BrokerMsg) {
        self.send(to, msg);
    }
}

fn broker_main(
    broker: BrokerId,
    my_id: EndpointId,
    rx: Receiver<Envelope>,
    board: StatsBoard,
    gauges: BrokerGauges,
) -> LiveBrokerStats {
    let mut core: BrokerCore<EndpointId> =
        BrokerCore::new(BrokerConfig::new(broker, LinearFn::new(0.0, 0.0), 1e9));
    let mut peers: HashMap<EndpointId, Sender<Envelope>> = HashMap::new();
    let mut clients: HashMap<EndpointId, Sender<Publication>> = HashMap::new();
    let mut stats = LiveBrokerStats::default();
    let start = Instant::now();
    let mut since_refresh = 0u64;
    while let Ok(Envelope { from, msg }) = rx.recv() {
        match msg {
            LiveMsg::AttachBroker(id, tx) => {
                // Control wiring, not traffic: no msgs_in.
                peers.insert(id, tx);
                core.add_broker_neighbor(id);
            }
            LiveMsg::AttachClient(id, tx) => {
                clients.insert(id, tx);
            }
            LiveMsg::Broker(m) => {
                stats.msgs_in += 1;
                let mut sink = LiveSink {
                    my_id,
                    peers: &peers,
                    clients: &clients,
                    stats: &mut stats,
                    start: &start,
                };
                core.on_message(&mut sink, from, m);
            }
            LiveMsg::Shutdown => {
                stats.msgs_in += 1;
                break;
            }
        }
        since_refresh += 1;
        if since_refresh >= STATS_REFRESH_EVERY {
            since_refresh = 0;
            board.write().insert(broker, stats);
            gauges.refresh(&stats);
        }
    }
    board.write().insert(broker, stats);
    gauges.refresh(&stats);
    stats
}

/// A live, threaded broker overlay.
///
/// Debug output lists the broker ids only; channels and join handles
/// are opaque.
pub struct LiveNet {
    handles: BTreeMap<BrokerId, JoinHandle<LiveBrokerStats>>,
    senders: BTreeMap<BrokerId, Sender<Envelope>>,
    stats: StatsBoard,
    next_endpoint: EndpointId,
    #[cfg(feature = "concurrency-audit")]
    watchdog: Option<watchdog::Watchdog>,
}

impl fmt::Debug for LiveNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveNet")
            .field("brokers", &self.senders.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl LiveNet {
    /// Spawns one thread per broker and wires the overlay edges.
    ///
    /// When the context carries an enabled telemetry registry, each
    /// broker thread refreshes
    /// `broker.b<id>.live_msgs_in`/`live_msgs_out`/`live_delivered`
    /// gauges alongside the stats board, and (under the
    /// `concurrency-audit` feature) the watchdog mirrors its stall
    /// reports into the `broker.live` event ring.
    ///
    /// Fails with [`LiveError::UnknownBroker`] if an edge references a
    /// broker not in `brokers`, or [`LiveError::Spawn`] if the OS
    /// refuses a thread.
    pub fn start(
        brokers: &[BrokerId],
        edges: &[(BrokerId, BrokerId)],
        ctx: &ReconfigContext,
    ) -> Result<Self, LiveError> {
        let registry = ctx.registry();
        let stats: StatsBoard = Arc::new(TrackedRwLock::new(
            "live-stats-board",
            brokers
                .iter()
                .map(|&b| (b, LiveBrokerStats::default()))
                .collect(),
        ));
        let mut senders = BTreeMap::new();
        let mut receivers = BTreeMap::new();
        for &b in brokers {
            let (tx, rx) = unbounded::<Envelope>();
            senders.insert(b, tx);
            receivers.insert(b, rx);
        }
        let mut handles = BTreeMap::new();
        for (b, rx) in receivers {
            let my_id = endpoint_of(b);
            let board = Arc::clone(&stats);
            let gauges = BrokerGauges::attach(registry, b);
            let handle = std::thread::Builder::new()
                .name(format!("broker-{b}"))
                .spawn(move || broker_main(b, my_id, rx, board, gauges))
                .map_err(LiveError::Spawn)?;
            handles.insert(b, handle);
        }
        #[cfg(feature = "concurrency-audit")]
        let watchdog =
            watchdog::Watchdog::start(&senders, Arc::clone(&stats), registry.ring("broker.live"))
                .map_err(LiveError::Spawn)
                .map(Some)?;
        let net = Self {
            handles,
            senders,
            stats,
            next_endpoint: 1 << 32,
            #[cfg(feature = "concurrency-audit")]
            watchdog,
        };
        for &(a, b) in edges {
            net.wire(a, b)?;
        }
        Ok(net)
    }

    fn sender(&self, broker: BrokerId) -> Result<&Sender<Envelope>, LiveError> {
        self.senders
            .get(&broker)
            .ok_or(LiveError::UnknownBroker(broker))
    }

    fn wire(&self, a: BrokerId, b: BrokerId) -> Result<(), LiveError> {
        let ta = self.sender(a)?.clone();
        let tb = self.sender(b)?.clone();
        ta.send(Envelope {
            from: endpoint_of(b),
            msg: LiveMsg::AttachBroker(endpoint_of(b), tb.clone()),
        })
        .map_err(|_| LiveError::Disconnected(a))?;
        tb.send(Envelope {
            from: endpoint_of(a),
            msg: LiveMsg::AttachBroker(endpoint_of(a), ta),
        })
        .map_err(|_| LiveError::Disconnected(b))?;
        Ok(())
    }

    fn fresh_endpoint(&mut self) -> EndpointId {
        let id = self.next_endpoint;
        self.next_endpoint += 1;
        id
    }

    /// Registers a publisher at a broker; returns a handle for
    /// publishing.
    pub fn publisher(
        &mut self,
        broker: BrokerId,
        adv: Advertisement,
    ) -> Result<LivePublisher, LiveError> {
        let endpoint = self.fresh_endpoint();
        let tx = self.sender(broker)?.clone();
        tx.send(Envelope {
            from: endpoint,
            msg: LiveMsg::Broker(BrokerMsg::ClientHello {
                client: ClientId::new(endpoint),
            }),
        })
        .map_err(|_| LiveError::Disconnected(broker))?;
        tx.send(Envelope {
            from: endpoint,
            msg: LiveMsg::Broker(BrokerMsg::Advertise(adv.clone())),
        })
        .map_err(|_| LiveError::Disconnected(broker))?;
        Ok(LivePublisher {
            endpoint,
            tx,
            adv_id: adv.id,
        })
    }

    /// Registers a subscriber at a broker; returns the delivery channel.
    pub fn subscriber(
        &mut self,
        broker: BrokerId,
        subscription: Subscription,
    ) -> Result<Receiver<Publication>, LiveError> {
        let endpoint = self.fresh_endpoint();
        let (dtx, drx) = unbounded();
        let tx = self.sender(broker)?;
        tx.send(Envelope {
            from: endpoint,
            msg: LiveMsg::AttachClient(endpoint, dtx),
        })
        .map_err(|_| LiveError::Disconnected(broker))?;
        tx.send(Envelope {
            from: endpoint,
            msg: LiveMsg::Broker(BrokerMsg::ClientHello {
                client: ClientId::new(endpoint),
            }),
        })
        .map_err(|_| LiveError::Disconnected(broker))?;
        tx.send(Envelope {
            from: endpoint,
            msg: LiveMsg::Broker(BrokerMsg::Subscribe(subscription)),
        })
        .map_err(|_| LiveError::Disconnected(broker))?;
        Ok(drx)
    }

    /// Retracts a subscription previously registered at `broker`.
    pub fn unsubscribe(&self, broker: BrokerId, id: SubId) -> Result<(), LiveError> {
        self.sender(broker)?
            .send(Envelope {
                from: endpoint_of(broker),
                msg: LiveMsg::Broker(BrokerMsg::Unsubscribe(id)),
            })
            .map_err(|_| LiveError::Disconnected(broker))
    }

    /// A point-in-time copy of every broker's statistics, as last
    /// refreshed by the broker threads. Reads through the audited
    /// RwLock; counts lag live traffic by up to
    /// [`STATS_REFRESH_EVERY`] messages per broker.
    pub fn stats_snapshot(&self) -> BTreeMap<BrokerId, LiveBrokerStats> {
        self.stats.read().clone()
    }

    /// Stops every broker and returns their final statistics.
    ///
    /// Fails with [`LiveError::BrokerPanicked`] naming the first broker
    /// whose thread panicked instead of returning stats.
    pub fn shutdown(self) -> Result<BTreeMap<BrokerId, LiveBrokerStats>, LiveError> {
        #[cfg(feature = "concurrency-audit")]
        if let Some(w) = self.watchdog {
            w.stop();
        }
        for (b, tx) in &self.senders {
            let _ = tx.send(Envelope {
                from: endpoint_of(*b),
                msg: LiveMsg::Shutdown,
            });
        }
        let mut out = BTreeMap::new();
        for (b, h) in self.handles {
            let stats = h.join().map_err(|_| LiveError::BrokerPanicked(b))?;
            out.insert(b, stats);
        }
        Ok(out)
    }

    /// Number of live brokers.
    pub fn broker_count(&self) -> usize {
        self.senders.len()
    }
}

/// A handle for publishing into a live overlay.
pub struct LivePublisher {
    endpoint: EndpointId,
    tx: Sender<Envelope>,
    /// The advertisement id this publisher publishes under.
    pub adv_id: AdvId,
}

impl fmt::Debug for LivePublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LivePublisher")
            .field("endpoint", &self.endpoint)
            .field("adv_id", &self.adv_id)
            .finish_non_exhaustive()
    }
}

impl LivePublisher {
    /// Publishes one message. Delivery is best-effort: a message sent
    /// to a broker that has already shut down is silently dropped, like
    /// a datagram on a closed socket.
    pub fn publish(&self, publication: Publication) {
        let _ = self.tx.send(Envelope {
            from: self.endpoint,
            msg: LiveMsg::Broker(BrokerMsg::Publication(PubEnvelope::new(
                publication,
                SimTime::ZERO,
            ))),
        });
    }
}

fn endpoint_of(b: BrokerId) -> EndpointId {
    b.raw()
}

#[cfg(feature = "concurrency-audit")]
mod watchdog {
    //! Deadlock watchdog for the live deployer: a sampling thread that
    //! compares per-broker progress (messages in) against queued input.
    //! A broker with pending envelopes whose counters do not move
    //! between two consecutive samples is suspected stalled, and a
    //! report is filed through [`audit::report`].

    use super::{BrokerId, Envelope, LiveBrokerStats, Sender, StatsBoard};
    use crate::audit;
    use greenps_telemetry::EventSink;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::Duration;

    /// Sampling period of the watchdog thread.
    const SAMPLE_EVERY: Duration = Duration::from_millis(100);

    pub(super) struct Watchdog {
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl Watchdog {
        pub(super) fn start(
            senders: &BTreeMap<BrokerId, Sender<Envelope>>,
            board: StatsBoard,
            events: EventSink,
        ) -> std::io::Result<Self> {
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let senders: BTreeMap<BrokerId, Sender<Envelope>> =
                senders.iter().map(|(&b, tx)| (b, tx.clone())).collect();
            let handle = std::thread::Builder::new()
                .name("live-watchdog".to_string())
                .spawn(move || run(&senders, &board, &stop2, &events))?;
            Ok(Watchdog {
                stop,
                handle: Some(handle),
            })
        }

        pub(super) fn stop(mut self) {
            self.halt();
        }

        fn halt(&mut self) {
            self.stop.store(true, Ordering::Relaxed);
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }

    impl Drop for Watchdog {
        // Covers error paths in `LiveNet::start` where the net (and its
        // watchdog) is dropped before an explicit `stop`.
        fn drop(&mut self) {
            self.halt();
        }
    }

    fn run(
        senders: &BTreeMap<BrokerId, Sender<Envelope>>,
        board: &StatsBoard,
        stop: &AtomicBool,
        events: &EventSink,
    ) {
        let mut last: BTreeMap<BrokerId, LiveBrokerStats> = BTreeMap::new();
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(SAMPLE_EVERY);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let now = board.read().clone();
            for (&b, tx) in senders {
                let queued = tx.len();
                if queued == 0 {
                    continue;
                }
                let (prev, cur) = match (last.get(&b), now.get(&b)) {
                    (Some(p), Some(c)) => (*p, *c),
                    _ => continue,
                };
                if cur.msgs_in == prev.msgs_in {
                    audit::report(format!(
                        "watchdog: live broker {b} has {queued} queued envelope(s) \
                         but made no progress over {SAMPLE_EVERY:?} — possible deadlock"
                    ));
                    events.emit_with("watchdog.stall", || {
                        format!("{b}: {queued} queued, no progress over {SAMPLE_EVERY:?}")
                    });
                }
            }
            last = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_pubsub::filter::{stock_advertisement, stock_template};
    use greenps_pubsub::ids::MsgId;
    use std::time::Duration;

    #[test]
    fn live_chain_delivers() {
        let brokers: Vec<BrokerId> = (0..3).map(BrokerId::new).collect();
        let edges = vec![
            (BrokerId::new(0), BrokerId::new(1)),
            (BrokerId::new(1), BrokerId::new(2)),
        ];
        let mut net =
            LiveNet::start(&brokers, &edges, &ReconfigContext::new()).expect("start live net");
        assert_eq!(net.broker_count(), 3);
        // Give wiring a moment to land before advertising.
        std::thread::sleep(Duration::from_millis(20));
        let publisher = net
            .publisher(
                BrokerId::new(0),
                Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
            )
            .expect("attach publisher");
        std::thread::sleep(Duration::from_millis(20));
        let inbox = net
            .subscriber(
                BrokerId::new(2),
                Subscription::new(SubId::new(1), stock_template("YHOO")),
            )
            .expect("attach subscriber");
        std::thread::sleep(Duration::from_millis(50));
        for i in 0..10u64 {
            publisher.publish(
                Publication::builder(AdvId::new(1), MsgId::new(i))
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .attr("low", 18.0)
                    .build(),
            );
        }
        let mut got = 0;
        while inbox.recv_timeout(Duration::from_secs(2)).is_ok() {
            got += 1;
            if got == 10 {
                break;
            }
        }
        assert_eq!(got, 10);
        let snapshot = net.stats_snapshot();
        assert!(
            snapshot.contains_key(&BrokerId::new(0)),
            "snapshot covers all brokers"
        );
        let stats = net.shutdown().expect("clean shutdown");
        assert!(
            stats[&BrokerId::new(1)].msgs_out >= 10,
            "middle broker forwarded"
        );
        assert_eq!(stats[&BrokerId::new(2)].delivered, 10);
    }

    #[test]
    fn live_non_matching_subscription_silent() {
        let brokers: Vec<BrokerId> = (0..2).map(BrokerId::new).collect();
        let edges = vec![(BrokerId::new(0), BrokerId::new(1))];
        let mut net =
            LiveNet::start(&brokers, &edges, &ReconfigContext::new()).expect("start live net");
        std::thread::sleep(Duration::from_millis(20));
        let publisher = net
            .publisher(
                BrokerId::new(0),
                Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
            )
            .expect("attach publisher");
        std::thread::sleep(Duration::from_millis(20));
        let inbox = net
            .subscriber(
                BrokerId::new(1),
                Subscription::new(SubId::new(1), stock_template("GOOG")),
            )
            .expect("attach subscriber");
        std::thread::sleep(Duration::from_millis(50));
        publisher.publish(
            Publication::builder(AdvId::new(1), MsgId::new(0))
                .attr("class", "STOCK")
                .attr("symbol", "YHOO")
                .build(),
        );
        assert!(inbox.recv_timeout(Duration::from_millis(300)).is_err());
        net.shutdown().expect("clean shutdown");
    }

    #[test]
    fn unknown_broker_is_a_typed_error() {
        let brokers: Vec<BrokerId> = (0..2).map(BrokerId::new).collect();
        let mut net =
            LiveNet::start(&brokers, &[], &ReconfigContext::new()).expect("start live net");
        let missing = BrokerId::new(99);
        let err = net
            .publisher(
                missing,
                Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
            )
            .expect_err("publisher at unknown broker must fail");
        assert!(matches!(err, LiveError::UnknownBroker(b) if b == missing));
        let err = net
            .unsubscribe(missing, SubId::new(1))
            .expect_err("unknown broker");
        assert!(matches!(err, LiveError::UnknownBroker(_)));
        net.shutdown().expect("clean shutdown");
    }

    #[test]
    fn start_rejects_edges_to_unknown_brokers() {
        let brokers: Vec<BrokerId> = (0..2).map(BrokerId::new).collect();
        let edges = vec![(BrokerId::new(0), BrokerId::new(7))];
        let err = LiveNet::start(&brokers, &edges, &ReconfigContext::new())
            .expect_err("bad edge must fail");
        assert!(matches!(err, LiveError::UnknownBroker(b) if b == BrokerId::new(7)));
    }
}
