//! Live threaded deployment: the same broker overlay semantics running
//! on OS threads and crossbeam channels instead of the discrete-event
//! simulator — the moral equivalent of a PANDA deployment onto real
//! processes.
//!
//! Each broker is a thread owning advertisement-based routing tables;
//! links are channel pairs. The harness uses this runtime to demonstrate
//! that a `ReconfigurationPlan` is executable against live processes,
//! not only inside the simulator.

use greenps_pubsub::ids::{AdvId, BrokerId, SubId};
use greenps_pubsub::message::{Advertisement, Publication, Subscription};
use greenps_pubsub::routing::RoutingTables;
use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Global endpoint id: brokers and clients share one namespace.
type EndpointId = u64;

/// Messages flowing between live endpoints.
enum LiveMsg {
    AttachBroker(EndpointId, Sender<Envelope>),
    AttachClient(EndpointId, Sender<Publication>),
    Advertise(Advertisement),
    Subscribe(Subscription),
    Unsubscribe(SubId),
    Publication(Publication),
    Shutdown,
}

struct Envelope {
    from: EndpointId,
    msg: LiveMsg,
}

/// Statistics a live broker reports at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveBrokerStats {
    /// Messages received from peers/clients.
    pub msgs_in: u64,
    /// Messages sent to peers/clients.
    pub msgs_out: u64,
    /// Publications delivered to local clients.
    pub delivered: u64,
}

fn broker_main(my_id: EndpointId, rx: Receiver<Envelope>) -> LiveBrokerStats {
    let mut routing: RoutingTables<EndpointId> = RoutingTables::new();
    let mut peers: HashMap<EndpointId, Sender<Envelope>> = HashMap::new();
    let mut clients: HashMap<EndpointId, Sender<Publication>> = HashMap::new();
    let mut stats = LiveBrokerStats::default();
    while let Ok(Envelope { from, msg }) = rx.recv() {
        stats.msgs_in += 1;
        match msg {
            LiveMsg::AttachBroker(id, tx) => {
                stats.msgs_in -= 1; // control wiring, not traffic
                peers.insert(id, tx);
            }
            LiveMsg::AttachClient(id, tx) => {
                stats.msgs_in -= 1;
                clients.insert(id, tx);
            }
            LiveMsg::Advertise(adv) => {
                if routing.insert_advertisement(adv.clone(), from) {
                    for (&id, tx) in &peers {
                        if id != from {
                            stats.msgs_out += 1;
                            let _ = tx.send(Envelope {
                                from: my_id,
                                msg: LiveMsg::Advertise(adv.clone()),
                            });
                        }
                    }
                    for sub_id in routing.subscriptions_toward(&adv, &from) {
                        if let (Some(s), Some(tx)) =
                            (routing.subscription(sub_id), peers.get(&from))
                        {
                            stats.msgs_out += 1;
                            let _ = tx.send(Envelope {
                                from: my_id,
                                msg: LiveMsg::Subscribe(s.clone()),
                            });
                        }
                    }
                }
            }
            LiveMsg::Subscribe(sub) => {
                for hop in routing.insert_subscription(sub.clone(), from) {
                    if let Some(tx) = peers.get(&hop) {
                        stats.msgs_out += 1;
                        let _ = tx.send(Envelope {
                            from: my_id,
                            msg: LiveMsg::Subscribe(sub.clone()),
                        });
                    }
                }
            }
            LiveMsg::Unsubscribe(id) => {
                if routing.remove_subscription(id).is_some() {
                    for (&pid, tx) in &peers {
                        if pid != from {
                            stats.msgs_out += 1;
                            let _ = tx.send(Envelope {
                                from: my_id,
                                msg: LiveMsg::Unsubscribe(id),
                            });
                        }
                    }
                }
            }
            LiveMsg::Publication(p) => {
                for hop in routing.route_publication_mut(&p, Some(&from)) {
                    if let Some(tx) = peers.get(&hop) {
                        stats.msgs_out += 1;
                        let _ = tx.send(Envelope {
                            from: my_id,
                            msg: LiveMsg::Publication(p.clone()),
                        });
                    } else if let Some(tx) = clients.get(&hop) {
                        stats.msgs_out += 1;
                        stats.delivered += 1;
                        let _ = tx.send(p.clone());
                    }
                }
            }
            LiveMsg::Shutdown => break,
        }
    }
    stats
}

/// A live, threaded broker overlay.
pub struct LiveNet {
    handles: BTreeMap<BrokerId, JoinHandle<LiveBrokerStats>>,
    senders: BTreeMap<BrokerId, Sender<Envelope>>,
    next_endpoint: EndpointId,
}

impl LiveNet {
    /// Spawns one thread per broker and wires the overlay edges.
    ///
    /// # Panics
    /// Panics if an edge references an unknown broker.
    pub fn start(brokers: &[BrokerId], edges: &[(BrokerId, BrokerId)]) -> Self {
        let mut senders = BTreeMap::new();
        let mut receivers = BTreeMap::new();
        for &b in brokers {
            let (tx, rx) = unbounded::<Envelope>();
            senders.insert(b, tx);
            receivers.insert(b, rx);
        }
        let mut handles = BTreeMap::new();
        for &b in brokers {
            let rx = receivers.remove(&b).unwrap();
            let my_id = endpoint_of(b);
            let handle = std::thread::Builder::new()
                .name(format!("broker-{b}"))
                .spawn(move || broker_main(my_id, rx))
                .expect("spawn broker thread");
            handles.insert(b, handle);
        }
        let net = Self { handles, senders, next_endpoint: 1 << 32 };
        for &(a, b) in edges {
            net.wire(a, b);
        }
        net
    }

    fn wire(&self, a: BrokerId, b: BrokerId) {
        let ta = self.senders[&a].clone();
        let tb = self.senders[&b].clone();
        ta.send(Envelope {
            from: endpoint_of(b),
            msg: LiveMsg::AttachBroker(endpoint_of(b), tb.clone()),
        })
        .unwrap();
        tb.send(Envelope {
            from: endpoint_of(a),
            msg: LiveMsg::AttachBroker(endpoint_of(a), ta),
        })
        .unwrap();
    }

    fn fresh_endpoint(&mut self) -> EndpointId {
        let id = self.next_endpoint;
        self.next_endpoint += 1;
        id
    }

    /// Registers a publisher at a broker; returns a handle for
    /// publishing.
    ///
    /// # Panics
    /// Panics on an unknown broker.
    pub fn publisher(&mut self, broker: BrokerId, adv: Advertisement) -> LivePublisher {
        let endpoint = self.fresh_endpoint();
        let tx = self.senders[&broker].clone();
        tx.send(Envelope { from: endpoint, msg: LiveMsg::Advertise(adv.clone()) })
            .unwrap();
        LivePublisher { endpoint, tx, adv_id: adv.id }
    }

    /// Registers a subscriber at a broker; returns the delivery channel.
    ///
    /// # Panics
    /// Panics on an unknown broker.
    pub fn subscriber(
        &mut self,
        broker: BrokerId,
        subscription: Subscription,
    ) -> Receiver<Publication> {
        let endpoint = self.fresh_endpoint();
        let (dtx, drx) = unbounded();
        let tx = &self.senders[&broker];
        tx.send(Envelope { from: endpoint, msg: LiveMsg::AttachClient(endpoint, dtx) })
            .unwrap();
        tx.send(Envelope { from: endpoint, msg: LiveMsg::Subscribe(subscription) })
            .unwrap();
        drx
    }

    /// Retracts a subscription previously registered at `broker`.
    ///
    /// # Panics
    /// Panics on an unknown broker.
    pub fn unsubscribe(&self, broker: BrokerId, id: SubId) {
        self.senders[&broker]
            .send(Envelope { from: endpoint_of(broker), msg: LiveMsg::Unsubscribe(id) })
            .unwrap();
    }

    /// Stops every broker and returns their statistics.
    pub fn shutdown(self) -> BTreeMap<BrokerId, LiveBrokerStats> {
        for (b, tx) in &self.senders {
            let _ = tx.send(Envelope { from: endpoint_of(*b), msg: LiveMsg::Shutdown });
        }
        self.handles
            .into_iter()
            .map(|(b, h)| (b, h.join().expect("broker thread panicked")))
            .collect()
    }

    /// Number of live brokers.
    pub fn broker_count(&self) -> usize {
        self.senders.len()
    }
}

/// A handle for publishing into a live overlay.
pub struct LivePublisher {
    endpoint: EndpointId,
    tx: Sender<Envelope>,
    /// The advertisement id this publisher publishes under.
    pub adv_id: AdvId,
}

impl LivePublisher {
    /// Publishes one message.
    pub fn publish(&self, publication: Publication) {
        let _ = self.tx.send(Envelope {
            from: self.endpoint,
            msg: LiveMsg::Publication(publication),
        });
    }
}

fn endpoint_of(b: BrokerId) -> EndpointId {
    b.raw()
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_pubsub::filter::{stock_advertisement, stock_template};
    use greenps_pubsub::ids::MsgId;
    use std::time::Duration;

    #[test]
    fn live_chain_delivers() {
        let brokers: Vec<BrokerId> = (0..3).map(BrokerId::new).collect();
        let edges = vec![
            (BrokerId::new(0), BrokerId::new(1)),
            (BrokerId::new(1), BrokerId::new(2)),
        ];
        let mut net = LiveNet::start(&brokers, &edges);
        assert_eq!(net.broker_count(), 3);
        // Give wiring a moment to land before advertising.
        std::thread::sleep(Duration::from_millis(20));
        let publisher = net.publisher(
            BrokerId::new(0),
            Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
        );
        std::thread::sleep(Duration::from_millis(20));
        let inbox = net.subscriber(
            BrokerId::new(2),
            Subscription::new(SubId::new(1), stock_template("YHOO")),
        );
        std::thread::sleep(Duration::from_millis(50));
        for i in 0..10u64 {
            publisher.publish(
                Publication::builder(AdvId::new(1), MsgId::new(i))
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .attr("low", 18.0)
                    .build(),
            );
        }
        let mut got = 0;
        while inbox.recv_timeout(Duration::from_secs(2)).is_ok() {
            got += 1;
            if got == 10 {
                break;
            }
        }
        assert_eq!(got, 10);
        let stats = net.shutdown();
        assert!(stats[&BrokerId::new(1)].msgs_out >= 10, "middle broker forwarded");
        assert_eq!(stats[&BrokerId::new(2)].delivered, 10);
    }

    #[test]
    fn live_non_matching_subscription_silent() {
        let brokers: Vec<BrokerId> = (0..2).map(BrokerId::new).collect();
        let edges = vec![(BrokerId::new(0), BrokerId::new(1))];
        let mut net = LiveNet::start(&brokers, &edges);
        std::thread::sleep(Duration::from_millis(20));
        let publisher = net.publisher(
            BrokerId::new(0),
            Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
        );
        std::thread::sleep(Duration::from_millis(20));
        let inbox = net.subscriber(
            BrokerId::new(1),
            Subscription::new(SubId::new(1), stock_template("GOOG")),
        );
        std::thread::sleep(Duration::from_millis(50));
        publisher.publish(
            Publication::builder(AdvId::new(1), MsgId::new(0))
                .attr("class", "STOCK")
                .attr("symbol", "YHOO")
                .build(),
        );
        assert!(inbox.recv_timeout(Duration::from_millis(300)).is_err());
        net.shutdown();
    }
}
