//! The content-based broker process, with the CROC Back-end Component
//! (CBC) integrated — mirroring the PADRES broker of the paper.
//!
//! A broker:
//!
//! * floods advertisements, routes subscriptions toward matching
//!   advertisements, and forwards publications along matching
//!   subscriptions (advertisement-based routing, `greenps-pubsub`);
//! * models matching cost with a linear delay function of its stored
//!   subscription count, serializing publications through a single
//!   service queue;
//! * profiles local subscriptions with bit vectors and local publishers
//!   with rate/bandwidth counters (the CBC);
//! * answers BIR floods with aggregated BIA messages (Phase 1).
//!
//! All of that logic lives in the transport-independent
//! [`BrokerCore`](crate::logic::BrokerCore); this module is the simnet
//! face of it — a [`Process`] whose `Context` is adapted into the
//! core's [`BrokerSink`](crate::logic::BrokerSink), preserving the
//! discrete-event semantics bit for bit.

use crate::logic::{BrokerCore, BrokerSink};
use crate::messages::BrokerMsg;
use greenps_core::model::LinearFn;
use greenps_pubsub::ids::BrokerId;
use greenps_simnet::{Context, NodeId, Process, SimDuration, SimTime};
use std::any::Any;
use std::ops::{Deref, DerefMut};

/// Broker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerConfig {
    /// Broker identity.
    pub id: BrokerId,
    /// Connection URL advertised in the BIA.
    pub url: String,
    /// Linear matching-delay model — also the simulated service time.
    pub matching_delay: LinearFn,
    /// Total output bandwidth reported in the BIA (bytes/s); the
    /// harness should also set it as the simnet node output capacity.
    pub out_bandwidth: f64,
    /// Bit-vector capacity for CBC profiles (paper default 1,280).
    pub profile_bits: usize,
}

impl BrokerConfig {
    /// A broker with the given identity and capacity, default profile
    /// size.
    pub fn new(id: BrokerId, matching_delay: LinearFn, out_bandwidth: f64) -> Self {
        Self {
            id,
            url: format!("sim://{id}"),
            matching_delay,
            out_bandwidth,
            profile_bits: greenps_profile::DEFAULT_CAPACITY,
        }
    }
}

/// The broker process: [`BrokerCore`] driven by the simnet event loop.
pub struct Broker {
    core: BrokerCore<NodeId>,
}

impl Broker {
    /// Creates a broker process.
    pub fn new(config: BrokerConfig) -> Self {
        Self {
            core: BrokerCore::new(config),
        }
    }
}

impl Deref for Broker {
    type Target = BrokerCore<NodeId>;
    fn deref(&self) -> &BrokerCore<NodeId> {
        &self.core
    }
}

impl DerefMut for Broker {
    fn deref_mut(&mut self) -> &mut BrokerCore<NodeId> {
        &mut self.core
    }
}

/// Adapts the simnet [`Context`] to the core's sink: sends become
/// simulated sends, the clock is virtual time.
struct CtxSink<'a, 'b> {
    ctx: &'a mut Context<'b, BrokerMsg>,
}

impl BrokerSink<NodeId> for CtxSink<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn send(&mut self, to: NodeId, msg: BrokerMsg) {
        self.ctx.send(to, msg);
    }
    fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: BrokerMsg) {
        self.ctx.send_after(delay, to, msg);
    }
}

impl Process<BrokerMsg> for Broker {
    fn on_message(&mut self, ctx: &mut Context<'_, BrokerMsg>, from: NodeId, msg: BrokerMsg) {
        self.core.on_message(&mut CtxSink { ctx }, from, msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{CrocClient, PublisherClient, SubscriberClient};
    use crate::logic::LocalPublisher;
    use crate::messages::PubEnvelope;
    use greenps_profile::{PublisherProfile, SubscriptionProfile};
    use greenps_pubsub::filter::{stock_advertisement, stock_template};
    use greenps_pubsub::ids::{AdvId, ClientId, MsgId, SubId};
    use greenps_pubsub::message::{Publication, Subscription};
    use greenps_simnet::{LinkSpec, Network};

    fn quick_broker(id: u64) -> Broker {
        Broker::new(BrokerConfig::new(
            BrokerId::new(id),
            LinearFn::new(0.0001, 0.0),
            1e9,
        ))
    }

    /// Three brokers in a chain, publisher on one end, subscriber on the
    /// other: publication flows through, hop count = 3.
    #[test]
    fn chain_delivery_with_hops() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(quick_broker(0));
        let b1 = net.add_node(quick_broker(1));
        let b2 = net.add_node(quick_broker(2));
        for (a, b) in [(b0, b1), (b1, b2)] {
            net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
            net.node_as_mut::<Broker>(a).unwrap().add_broker_neighbor(b);
            net.node_as_mut::<Broker>(b).unwrap().add_broker_neighbor(a);
        }
        let publisher = net.add_node(PublisherClient::new(
            ClientId::new(1),
            AdvId::new(1),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(100),
            b0,
            Box::new(|adv, msg| {
                Publication::builder(adv, msg)
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .attr("low", 18.0)
                    .build()
            }),
        ));
        net.connect(
            publisher,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b2,
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        ));
        net.connect(
            subscriber,
            b2,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );

        net.run_for(SimDuration::from_secs(1));
        let sub = net.node_as::<SubscriberClient>(subscriber).unwrap();
        assert!(sub.deliveries() >= 9, "got {}", sub.deliveries());
        assert_eq!(sub.mean_hops(), Some(3.0));
        let delay = sub.mean_delay().unwrap();
        // ≥ 3 links × 1ms + client link... ≥ 3ms and < 10ms
        assert!(
            delay.as_secs_f64() > 0.003 && delay.as_secs_f64() < 0.01,
            "{delay}"
        );
        // No deliveries to the wrong place; broker b1 forwarded all.
        assert_eq!(net.node_as::<Broker>(b1).unwrap().delivered_count, 0);
        assert!(net.node_as::<Broker>(b2).unwrap().delivered_count >= 9);
    }

    /// A subscriber on a different stock receives nothing.
    #[test]
    fn non_matching_subscriber_gets_nothing() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(quick_broker(0));
        let publisher = net.add_node(PublisherClient::new(
            ClientId::new(1),
            AdvId::new(1),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(50),
            b0,
            Box::new(|adv, msg| {
                Publication::builder(adv, msg)
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .build()
            }),
        ));
        net.connect(
            publisher,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b0,
            vec![Subscription::new(SubId::new(1), stock_template("GOOG"))],
        ));
        net.connect(
            subscriber,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        net.run_for(SimDuration::from_secs(1));
        assert_eq!(
            net.node_as::<SubscriberClient>(subscriber)
                .unwrap()
                .deliveries(),
            0
        );
    }

    /// CBC profiles record exactly the delivered publications, and the
    /// BIR/BIA gather returns them.
    #[test]
    fn bir_gathers_profiles_over_a_tree() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(quick_broker(0));
        let b1 = net.add_node(quick_broker(1));
        let b2 = net.add_node(quick_broker(2));
        for (a, b) in [(b0, b1), (b0, b2)] {
            net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
            net.node_as_mut::<Broker>(a).unwrap().add_broker_neighbor(b);
            net.node_as_mut::<Broker>(b).unwrap().add_broker_neighbor(a);
        }
        let publisher = net.add_node(PublisherClient::new(
            ClientId::new(1),
            AdvId::new(7),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(100),
            b1,
            Box::new(|adv, msg| {
                Publication::builder(adv, msg)
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .build()
            }),
        ));
        net.connect(
            publisher,
            b1,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b2,
            vec![Subscription::new(SubId::new(9), stock_template("YHOO"))],
        ));
        net.connect(
            subscriber,
            b2,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );

        net.run_for(SimDuration::from_secs(2));

        // CROC attaches to b0 and gathers.
        let croc = net.add_node(CrocClient::new(b0));
        net.connect(
            croc,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        net.node_as_mut::<Broker>(b0).unwrap(); // b0 treats croc as client on hello
        net.run_for(SimDuration::from_millis(10));
        net.inject(croc, croc, BrokerMsg::Bir { request: 0 });
        net.run_for(SimDuration::from_secs(1));

        let croc_client = net.node_as::<CrocClient>(croc).unwrap();
        let infos = croc_client.result().expect("gather completed");
        assert_eq!(infos.len(), 3, "three brokers answered");
        let total_subs: usize = infos.iter().map(|i| i.subscriptions.len()).sum();
        assert_eq!(total_subs, 1);
        let entry = infos
            .iter()
            .flat_map(|i| i.subscriptions.iter())
            .next()
            .unwrap();
        assert_eq!(entry.id, SubId::new(9));
        assert!(
            entry.profile.count_ones() >= 15,
            "profile recorded deliveries"
        );
        // Publisher profile came from b1.
        let pubs: Vec<&PublisherProfile> = infos.iter().flat_map(|i| i.publishers.iter()).collect();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].adv_id, AdvId::new(7));
        assert!(
            pubs[0].rate > 5.0,
            "≈10 msg/s observed, got {}",
            pubs[0].rate
        );
    }

    /// Matching delay queues publications: with service time 10 ms and
    /// two simultaneous arrivals, the second departs 10 ms later.
    #[test]
    fn service_queue_serializes() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(Broker::new(BrokerConfig::new(
            BrokerId::new(0),
            LinearFn::new(0.01, 0.0),
            1e9,
        )));
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b0,
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        ));
        net.connect(subscriber, b0, LinkSpec::with_latency(SimDuration::ZERO));
        net.run_for(SimDuration::from_millis(1));

        let adv =
            greenps_pubsub::message::Advertisement::new(AdvId::new(1), stock_advertisement("YHOO"));
        net.call_node(subscriber, b0, BrokerMsg::Advertise(adv));
        let mk = |id: u64| {
            BrokerMsg::Publication(PubEnvelope::new(
                Publication::builder(AdvId::new(1), MsgId::new(id))
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .build(),
                SimTime::ZERO,
            ))
        };
        // Two publications arrive at (almost) the same instant (sent
        // "from" the broker itself so the local subscription's hop is
        // not excluded as the origin).
        net.inject(b0, b0, mk(1));
        net.inject(b0, b0, mk(2));
        net.run_to_quiescence();
        let sub = net.node_as::<SubscriberClient>(subscriber).unwrap();
        assert_eq!(sub.deliveries(), 2);
        // Second delivery delayed by an extra service time.
        let delays = sub.delays();
        assert!(delays[1].as_secs_f64() >= delays[0].as_secs_f64() + 0.009);
    }

    #[test]
    fn reset_profiles_clears_cbc() {
        let mut broker = quick_broker(1);
        broker.sub_profiles.insert(SubId::new(1), {
            let mut p = SubscriptionProfile::new();
            p.record(AdvId::new(1), MsgId::new(5));
            p
        });
        broker.local_publishers.insert(
            AdvId::new(1),
            LocalPublisher {
                first_seen: SimTime::ZERO,
                msgs: 3,
                bytes: 300,
                last_msg_id: MsgId::new(5),
            },
        );
        broker.reset_profiles();
        assert_eq!(broker.profile_of(SubId::new(1)).unwrap().count_ones(), 0);
        assert!(broker.local_publishers.is_empty());
    }
}
