//! The content-based broker process, with the CROC Back-end Component
//! (CBC) integrated — mirroring the PADRES broker of the paper.
//!
//! A broker:
//!
//! * floods advertisements, routes subscriptions toward matching
//!   advertisements, and forwards publications along matching
//!   subscriptions (advertisement-based routing, `greenps-pubsub`);
//! * models matching cost with a linear delay function of its stored
//!   subscription count, serializing publications through a single
//!   service queue;
//! * profiles local subscriptions with bit vectors and local publishers
//!   with rate/bandwidth counters (the CBC);
//! * answers BIR floods with aggregated BIA messages (Phase 1).

use crate::messages::{BrokerMsg, GatheredBroker};
use greenps_core::model::{BrokerSpec, LinearFn, SubscriptionEntry};
use greenps_profile::{PublisherProfile, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
use greenps_pubsub::routing::RoutingTables;
use greenps_simnet::{Context, NodeId, Process, SimDuration, SimTime};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// Per-publisher statistics kept by the CBC for locally attached
/// publishers.
#[derive(Debug, Clone)]
struct LocalPublisher {
    first_seen: SimTime,
    msgs: u64,
    bytes: u64,
    last_msg_id: MsgId,
}

/// Broker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerConfig {
    /// Broker identity.
    pub id: BrokerId,
    /// Connection URL advertised in the BIA.
    pub url: String,
    /// Linear matching-delay model — also the simulated service time.
    pub matching_delay: LinearFn,
    /// Total output bandwidth reported in the BIA (bytes/s); the
    /// harness should also set it as the simnet node output capacity.
    pub out_bandwidth: f64,
    /// Bit-vector capacity for CBC profiles (paper default 1,280).
    pub profile_bits: usize,
}

impl BrokerConfig {
    /// A broker with the given identity and capacity, default profile
    /// size.
    pub fn new(id: BrokerId, matching_delay: LinearFn, out_bandwidth: f64) -> Self {
        Self {
            id,
            url: format!("sim://{id}"),
            matching_delay,
            out_bandwidth,
            profile_bits: greenps_profile::DEFAULT_CAPACITY,
        }
    }
}

#[derive(Debug)]
struct PendingBir {
    parent: NodeId,
    waiting: BTreeSet<NodeId>,
    collected: Vec<GatheredBroker>,
}

/// The broker process.
pub struct Broker {
    config: BrokerConfig,
    routing: RoutingTables<NodeId>,
    broker_neighbors: BTreeSet<NodeId>,
    clients: BTreeSet<NodeId>,
    busy_until: SimTime,
    /// CBC: bit-vector profiles of local (client) subscriptions.
    sub_profiles: BTreeMap<SubId, SubscriptionProfile>,
    /// CBC: local publisher statistics keyed by advertisement.
    local_publishers: BTreeMap<AdvId, LocalPublisher>,
    pending_bir: BTreeMap<u64, PendingBir>,
    seen_bir: BTreeSet<u64>,
    /// Publications processed (matched) by this broker.
    pub matched_count: u64,
    /// Publications delivered to local clients.
    pub delivered_count: u64,
    /// Reusable next-hop buffer for [`Broker::handle_publication`]: the
    /// per-publication forwarding set is rebuilt in place instead of
    /// allocating a fresh `Vec` per message.
    hops_scratch: Vec<NodeId>,
}

impl Broker {
    /// Creates a broker process.
    pub fn new(config: BrokerConfig) -> Self {
        Self {
            config,
            routing: RoutingTables::new(),
            broker_neighbors: BTreeSet::new(),
            clients: BTreeSet::new(),
            busy_until: SimTime::ZERO,
            sub_profiles: BTreeMap::new(),
            local_publishers: BTreeMap::new(),
            pending_bir: BTreeMap::new(),
            seen_bir: BTreeSet::new(),
            matched_count: 0,
            delivered_count: 0,
            hops_scratch: Vec::new(),
        }
    }

    /// Broker identity.
    pub fn id(&self) -> BrokerId {
        self.config.id
    }

    /// Registers a neighboring broker node (call on both endpoints after
    /// connecting them in the network).
    pub fn add_broker_neighbor(&mut self, node: NodeId) {
        self.broker_neighbors.insert(node);
    }

    /// Number of stored subscriptions (routing-table entries).
    pub fn subscription_count(&self) -> usize {
        self.routing.subscription_count()
    }

    /// The CBC profile of a local subscription.
    pub fn profile_of(&self, sub: SubId) -> Option<&SubscriptionProfile> {
        self.sub_profiles.get(&sub)
    }

    /// Resets CBC profiling state (fresh re-profiling window).
    pub fn reset_profiles(&mut self) {
        for p in self.sub_profiles.values_mut() {
            *p = SubscriptionProfile::with_capacity(self.config.profile_bits);
        }
        self.local_publishers.clear();
    }

    /// Builds this broker's own BIA contribution.
    fn own_info(&self, now: SimTime) -> GatheredBroker {
        let subscriptions = self
            .sub_profiles
            .iter()
            .filter_map(|(&id, profile)| {
                self.routing
                    .subscription(id)
                    .map(|s| SubscriptionEntry::new(id, s.filter.clone(), profile.clone()))
            })
            .collect();
        let publishers = self
            .local_publishers
            .iter()
            .map(|(&adv, lp)| {
                let elapsed = now.since(lp.first_seen).as_secs_f64().max(1e-9);
                PublisherProfile::new(
                    adv,
                    lp.msgs as f64 / elapsed,
                    lp.bytes as f64 / elapsed,
                    lp.last_msg_id,
                )
            })
            .collect();
        GatheredBroker {
            spec: BrokerSpec::new(
                self.config.id,
                self.config.url.clone(),
                self.config.matching_delay,
                self.config.out_bandwidth,
            ),
            subscriptions,
            publishers,
        }
    }

    fn handle_publication(
        &mut self,
        ctx: &mut Context<'_, BrokerMsg>,
        from: NodeId,
        env: crate::messages::PubEnvelope,
    ) {
        // Single service queue: matching delay depends on table size.
        let service =
            SimDuration::from_secs_f64(self.config.matching_delay.delay(self.subscription_count()));
        let now = ctx.now();
        let start = now.max(self.busy_until);
        self.busy_until = start + service;
        let fwd_delay = self.busy_until.since(now);
        self.matched_count += 1;

        // CBC: update local publisher stats.
        if self.clients.contains(&from) {
            let lp = self
                .local_publishers
                .entry(env.publication.adv_id)
                .or_insert_with(|| LocalPublisher {
                    first_seen: now,
                    msgs: 0,
                    bytes: 0,
                    last_msg_id: MsgId::new(0),
                });
            lp.msgs += 1;
            lp.bytes += env.publication.wire_size() as u64;
            lp.last_msg_id = lp.last_msg_id.max(env.publication.msg_id);
        }

        // Match once; derive forwarding set and local deliveries. The
        // hop buffer is a scratch field so steady-state forwarding does
        // not allocate per publication.
        let matching = self.routing.matching_subscriptions_mut(&env.publication);
        let mut hops = std::mem::take(&mut self.hops_scratch);
        hops.clear();
        for &sub in &matching {
            let Some(&hop) = self.routing.subscription_hop(sub) else {
                continue;
            };
            if hop == from {
                continue;
            }
            if self.clients.contains(&hop) {
                // CBC: record the publication in the local profile.
                if let Some(profile) = self.sub_profiles.get_mut(&sub) {
                    profile.record(env.publication.adv_id, env.publication.msg_id);
                }
            }
            if !hops.contains(&hop) {
                hops.push(hop);
            }
        }
        for &hop in &hops {
            if self.clients.contains(&hop) {
                self.delivered_count += 1;
            }
            ctx.send_after(fwd_delay, hop, BrokerMsg::Publication(env.hopped()));
        }
        self.hops_scratch = hops;
    }

    /// Advertisement churn (control plane): install the advertisement
    /// and route existing subscriptions toward a late advertiser.
    fn handle_advertise(
        &mut self,
        ctx: &mut Context<'_, BrokerMsg>,
        from: NodeId,
        adv: greenps_pubsub::message::Advertisement,
    ) {
        if self.routing.insert_advertisement(adv.clone(), from) {
            for &n in &self.broker_neighbors {
                if n != from {
                    ctx.send(n, BrokerMsg::Advertise(adv.clone()));
                }
            }
            // Late advertisement: route existing subscriptions
            // toward it.
            let subs = self.routing.subscriptions_toward(&adv, &from);
            if self.broker_neighbors.contains(&from) {
                for sub_id in subs {
                    if let Some(s) = self.routing.subscription(sub_id) {
                        ctx.send(from, BrokerMsg::Subscribe(s.clone()));
                    }
                }
            }
        }
    }

    /// Subscription churn (control plane): install the subscription,
    /// start a CBC profile for local clients, and forward upstream.
    fn handle_subscribe(
        &mut self,
        ctx: &mut Context<'_, BrokerMsg>,
        from: NodeId,
        sub: greenps_pubsub::message::Subscription,
    ) {
        let is_local = self.clients.contains(&from);
        let forwards = self.routing.insert_subscription(sub.clone(), from);
        if is_local {
            self.sub_profiles.insert(
                sub.id,
                SubscriptionProfile::with_capacity(self.config.profile_bits),
            );
        }
        for hop in forwards {
            if self.broker_neighbors.contains(&hop) {
                ctx.send(hop, BrokerMsg::Subscribe(sub.clone()));
            }
        }
    }

    fn handle_bir(&mut self, ctx: &mut Context<'_, BrokerMsg>, from: NodeId, request: u64) {
        if !self.seen_bir.insert(request) {
            // Duplicate (possible only in non-tree overlays): answer
            // empty so the sender is not left waiting.
            ctx.send(
                from,
                BrokerMsg::Bia {
                    request,
                    infos: Vec::new(),
                },
            );
            return;
        }
        let targets: Vec<NodeId> = self
            .broker_neighbors
            .iter()
            .copied()
            .filter(|&n| n != from)
            .collect();
        if targets.is_empty() {
            let infos = vec![self.own_info(ctx.now())];
            ctx.send(from, BrokerMsg::Bia { request, infos });
            return;
        }
        for &t in &targets {
            ctx.send(t, BrokerMsg::Bir { request });
        }
        self.pending_bir.insert(
            request,
            PendingBir {
                parent: from,
                waiting: targets.into_iter().collect(),
                collected: Vec::new(),
            },
        );
    }

    fn handle_bia(
        &mut self,
        ctx: &mut Context<'_, BrokerMsg>,
        from: NodeId,
        request: u64,
        infos: Vec<GatheredBroker>,
    ) {
        let Some(pending) = self.pending_bir.get_mut(&request) else {
            return;
        };
        pending.waiting.remove(&from);
        pending.collected.extend(infos);
        if !pending.waiting.is_empty() {
            return;
        }
        let Some(pending) = self.pending_bir.remove(&request) else {
            return;
        };
        let mut infos = pending.collected;
        infos.push(self.own_info(ctx.now()));
        ctx.send(pending.parent, BrokerMsg::Bia { request, infos });
    }
}

impl Process<BrokerMsg> for Broker {
    fn on_message(&mut self, ctx: &mut Context<'_, BrokerMsg>, from: NodeId, msg: BrokerMsg) {
        match msg {
            BrokerMsg::ClientHello { .. } => {
                self.clients.insert(from);
            }
            BrokerMsg::Advertise(adv) => self.handle_advertise(ctx, from, adv),
            BrokerMsg::Unadvertise(id) => {
                if self.routing.remove_advertisement(id) {
                    for &n in &self.broker_neighbors {
                        if n != from {
                            ctx.send(n, BrokerMsg::Unadvertise(id));
                        }
                    }
                }
            }
            BrokerMsg::Subscribe(sub) => self.handle_subscribe(ctx, from, sub),
            BrokerMsg::Unsubscribe(id) => {
                if self.routing.remove_subscription(id).is_some() {
                    self.sub_profiles.remove(&id);
                    for &n in &self.broker_neighbors {
                        if n != from {
                            ctx.send(n, BrokerMsg::Unsubscribe(id));
                        }
                    }
                }
            }
            BrokerMsg::Publication(env) => self.handle_publication(ctx, from, env),
            BrokerMsg::Bir { request } => self.handle_bir(ctx, from, request),
            BrokerMsg::Bia { request, infos } => self.handle_bia(ctx, from, request, infos),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{CrocClient, PublisherClient, SubscriberClient};
    use crate::messages::PubEnvelope;
    use greenps_pubsub::filter::{stock_advertisement, stock_template};
    use greenps_pubsub::ids::ClientId;
    use greenps_pubsub::message::{Publication, Subscription};
    use greenps_simnet::{LinkSpec, Network};

    fn quick_broker(id: u64) -> Broker {
        Broker::new(BrokerConfig::new(
            BrokerId::new(id),
            LinearFn::new(0.0001, 0.0),
            1e9,
        ))
    }

    /// Three brokers in a chain, publisher on one end, subscriber on the
    /// other: publication flows through, hop count = 3.
    #[test]
    fn chain_delivery_with_hops() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(quick_broker(0));
        let b1 = net.add_node(quick_broker(1));
        let b2 = net.add_node(quick_broker(2));
        for (a, b) in [(b0, b1), (b1, b2)] {
            net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
            net.node_as_mut::<Broker>(a).unwrap().add_broker_neighbor(b);
            net.node_as_mut::<Broker>(b).unwrap().add_broker_neighbor(a);
        }
        let publisher = net.add_node(PublisherClient::new(
            ClientId::new(1),
            AdvId::new(1),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(100),
            b0,
            Box::new(|adv, msg| {
                Publication::builder(adv, msg)
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .attr("low", 18.0)
                    .build()
            }),
        ));
        net.connect(
            publisher,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b2,
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        ));
        net.connect(
            subscriber,
            b2,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );

        net.run_for(SimDuration::from_secs(1));
        let sub = net.node_as::<SubscriberClient>(subscriber).unwrap();
        assert!(sub.deliveries() >= 9, "got {}", sub.deliveries());
        assert_eq!(sub.mean_hops(), Some(3.0));
        let delay = sub.mean_delay().unwrap();
        // ≥ 3 links × 1ms + client link... ≥ 3ms and < 10ms
        assert!(
            delay.as_secs_f64() > 0.003 && delay.as_secs_f64() < 0.01,
            "{delay}"
        );
        // No deliveries to the wrong place; broker b1 forwarded all.
        assert_eq!(net.node_as::<Broker>(b1).unwrap().delivered_count, 0);
        assert!(net.node_as::<Broker>(b2).unwrap().delivered_count >= 9);
    }

    /// A subscriber on a different stock receives nothing.
    #[test]
    fn non_matching_subscriber_gets_nothing() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(quick_broker(0));
        let publisher = net.add_node(PublisherClient::new(
            ClientId::new(1),
            AdvId::new(1),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(50),
            b0,
            Box::new(|adv, msg| {
                Publication::builder(adv, msg)
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .build()
            }),
        ));
        net.connect(
            publisher,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b0,
            vec![Subscription::new(SubId::new(1), stock_template("GOOG"))],
        ));
        net.connect(
            subscriber,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        net.run_for(SimDuration::from_secs(1));
        assert_eq!(
            net.node_as::<SubscriberClient>(subscriber)
                .unwrap()
                .deliveries(),
            0
        );
    }

    /// CBC profiles record exactly the delivered publications, and the
    /// BIR/BIA gather returns them.
    #[test]
    fn bir_gathers_profiles_over_a_tree() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(quick_broker(0));
        let b1 = net.add_node(quick_broker(1));
        let b2 = net.add_node(quick_broker(2));
        for (a, b) in [(b0, b1), (b0, b2)] {
            net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
            net.node_as_mut::<Broker>(a).unwrap().add_broker_neighbor(b);
            net.node_as_mut::<Broker>(b).unwrap().add_broker_neighbor(a);
        }
        let publisher = net.add_node(PublisherClient::new(
            ClientId::new(1),
            AdvId::new(7),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(100),
            b1,
            Box::new(|adv, msg| {
                Publication::builder(adv, msg)
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .build()
            }),
        ));
        net.connect(
            publisher,
            b1,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b2,
            vec![Subscription::new(SubId::new(9), stock_template("YHOO"))],
        ));
        net.connect(
            subscriber,
            b2,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );

        net.run_for(SimDuration::from_secs(2));

        // CROC attaches to b0 and gathers.
        let croc = net.add_node(CrocClient::new(b0));
        net.connect(
            croc,
            b0,
            LinkSpec::with_latency(SimDuration::from_millis(1)),
        );
        net.node_as_mut::<Broker>(b0).unwrap(); // b0 treats croc as client on hello
        net.run_for(SimDuration::from_millis(10));
        net.inject(croc, croc, BrokerMsg::Bir { request: 0 });
        net.run_for(SimDuration::from_secs(1));

        let croc_client = net.node_as::<CrocClient>(croc).unwrap();
        let infos = croc_client.result().expect("gather completed");
        assert_eq!(infos.len(), 3, "three brokers answered");
        let total_subs: usize = infos.iter().map(|i| i.subscriptions.len()).sum();
        assert_eq!(total_subs, 1);
        let entry = infos
            .iter()
            .flat_map(|i| i.subscriptions.iter())
            .next()
            .unwrap();
        assert_eq!(entry.id, SubId::new(9));
        assert!(
            entry.profile.count_ones() >= 15,
            "profile recorded deliveries"
        );
        // Publisher profile came from b1.
        let pubs: Vec<&PublisherProfile> = infos.iter().flat_map(|i| i.publishers.iter()).collect();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].adv_id, AdvId::new(7));
        assert!(
            pubs[0].rate > 5.0,
            "≈10 msg/s observed, got {}",
            pubs[0].rate
        );
    }

    /// Matching delay queues publications: with service time 10 ms and
    /// two simultaneous arrivals, the second departs 10 ms later.
    #[test]
    fn service_queue_serializes() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(Broker::new(BrokerConfig::new(
            BrokerId::new(0),
            LinearFn::new(0.01, 0.0),
            1e9,
        )));
        let subscriber = net.add_node(SubscriberClient::new(
            ClientId::new(2),
            b0,
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        ));
        net.connect(subscriber, b0, LinkSpec::with_latency(SimDuration::ZERO));
        net.run_for(SimDuration::from_millis(1));

        let adv =
            greenps_pubsub::message::Advertisement::new(AdvId::new(1), stock_advertisement("YHOO"));
        net.call_node(subscriber, b0, BrokerMsg::Advertise(adv));
        let mk = |id: u64| {
            BrokerMsg::Publication(PubEnvelope::new(
                Publication::builder(AdvId::new(1), MsgId::new(id))
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .build(),
                SimTime::ZERO,
            ))
        };
        // Two publications arrive at (almost) the same instant (sent
        // "from" the broker itself so the local subscription's hop is
        // not excluded as the origin).
        net.inject(b0, b0, mk(1));
        net.inject(b0, b0, mk(2));
        net.run_to_quiescence();
        let sub = net.node_as::<SubscriberClient>(subscriber).unwrap();
        assert_eq!(sub.deliveries(), 2);
        // Second delivery delayed by an extra service time.
        let delays = sub.delays();
        assert!(delays[1].as_secs_f64() >= delays[0].as_secs_f64() + 0.009);
    }

    #[test]
    fn reset_profiles_clears_cbc() {
        let mut broker = quick_broker(1);
        broker.sub_profiles.insert(SubId::new(1), {
            let mut p = SubscriptionProfile::new();
            p.record(AdvId::new(1), MsgId::new(5));
            p
        });
        broker.local_publishers.insert(
            AdvId::new(1),
            LocalPublisher {
                first_seen: SimTime::ZERO,
                msgs: 3,
                bytes: 300,
                last_msg_id: MsgId::new(5),
            },
        );
        broker.reset_profiles();
        assert_eq!(broker.profile_of(SubId::new(1)).unwrap().count_ones(), 0);
        assert!(broker.local_publishers.is_empty());
    }
}
