//! Publish/subscribe client processes: publishers, subscribers, and the
//! CROC coordinator client.
//!
//! These are the **sim-transport** clients — cooperative
//! `greenps_simnet::Process` implementations scheduled by the
//! deterministic event loop (the backend behind
//! `greenps_net::SimTransport`). Their real-socket counterparts live in
//! [`crate::netdeploy`], which drives the same [`BrokerMsg`] vocabulary
//! over `greenps_net::TcpTransport` endpoints; both sides speak the
//! transport seam described in DESIGN.md §13.

use crate::messages::{BrokerMsg, GatheredBroker, PubEnvelope};
use greenps_pubsub::ids::{AdvId, ClientId, MsgId};
use greenps_pubsub::message::{Advertisement, Publication, Subscription};
use greenps_pubsub::Filter;
use greenps_simnet::{Context, NodeId, Process, SimDuration};
use std::any::Any;

/// Produces the next publication for a publisher: called with the
/// publisher's advertisement id and the next message id.
pub type PublicationGen = Box<dyn FnMut(AdvId, MsgId) -> Publication + Send>;

/// A publisher client: advertises on start, then publishes at a fixed
/// period.
pub struct PublisherClient {
    client: ClientId,
    adv_id: AdvId,
    advertisement: Filter,
    period: SimDuration,
    broker: NodeId,
    generate: PublicationGen,
    next_msg: MsgId,
    published: u64,
}

impl PublisherClient {
    /// Creates a publisher publishing every `period` to `broker`.
    pub fn new(
        client: ClientId,
        adv_id: AdvId,
        advertisement: Filter,
        period: SimDuration,
        broker: NodeId,
        generate: PublicationGen,
    ) -> Self {
        Self {
            client,
            adv_id,
            advertisement,
            period,
            broker,
            generate,
            next_msg: MsgId::new(0),
            published: 0,
        }
    }

    /// Publications emitted so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// The publisher's advertisement id.
    pub fn adv_id(&self) -> AdvId {
        self.adv_id
    }
}

impl Process<BrokerMsg> for PublisherClient {
    fn on_start(&mut self, ctx: &mut Context<'_, BrokerMsg>) {
        ctx.send(
            self.broker,
            BrokerMsg::ClientHello {
                client: self.client,
            },
        );
        ctx.send(
            self.broker,
            BrokerMsg::Advertise(Advertisement::new(self.adv_id, self.advertisement.clone())),
        );
        ctx.set_timer(self.period, 0);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, BrokerMsg>, _from: NodeId, _msg: BrokerMsg) {
        // Publishers sink nothing.
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BrokerMsg>, _key: u64) {
        let publication = (self.generate)(self.adv_id, self.next_msg);
        self.next_msg = self.next_msg.next();
        self.published += 1;
        ctx.send(
            self.broker,
            BrokerMsg::Publication(PubEnvelope::new(publication, ctx.now())),
        );
        ctx.set_timer(self.period, 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A subscriber client: subscribes on start and records delivery
/// statistics (count, hops, end-to-end delay).
pub struct SubscriberClient {
    client: ClientId,
    broker: NodeId,
    subscriptions: Vec<Subscription>,
    deliveries: u64,
    hops_sum: u64,
    delay_sum_us: u64,
    delays: Vec<SimDuration>,
}

impl SubscriberClient {
    /// Creates a subscriber with a set of subscriptions.
    pub fn new(client: ClientId, broker: NodeId, subscriptions: Vec<Subscription>) -> Self {
        Self {
            client,
            broker,
            subscriptions,
            deliveries: 0,
            hops_sum: 0,
            delay_sum_us: 0,
            delays: Vec::new(),
        }
    }

    /// Publications received.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Mean broker hop count over deliveries.
    pub fn mean_hops(&self) -> Option<f64> {
        (self.deliveries > 0).then(|| self.hops_sum as f64 / self.deliveries as f64)
    }

    /// Mean end-to-end delivery delay.
    pub fn mean_delay(&self) -> Option<SimDuration> {
        (self.deliveries > 0).then(|| SimDuration::from_micros(self.delay_sum_us / self.deliveries))
    }

    /// Every observed delivery delay, in arrival order.
    pub fn delays(&self) -> &[SimDuration] {
        &self.delays
    }

    /// The broker node this subscriber is attached to.
    pub fn broker_node(&self) -> NodeId {
        self.broker
    }

    /// Resets delivery statistics (start of a measurement window).
    pub fn reset_stats(&mut self) {
        self.deliveries = 0;
        self.hops_sum = 0;
        self.delay_sum_us = 0;
        self.delays.clear();
    }

    /// The subscriptions this client holds.
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.subscriptions
    }
}

impl Process<BrokerMsg> for SubscriberClient {
    fn on_start(&mut self, ctx: &mut Context<'_, BrokerMsg>) {
        ctx.send(
            self.broker,
            BrokerMsg::ClientHello {
                client: self.client,
            },
        );
        for s in &self.subscriptions {
            ctx.send(self.broker, BrokerMsg::Subscribe(s.clone()));
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BrokerMsg>, _from: NodeId, msg: BrokerMsg) {
        if let BrokerMsg::Publication(env) = msg {
            self.deliveries += 1;
            self.hops_sum += u64::from(env.hops);
            let delay = ctx.now().since(env.published_at);
            self.delay_sum_us += delay.as_micros();
            self.delays.push(delay);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The CROC coordinator client: triggers a BIR flood and collects the
/// aggregated BIA (Phase 1).
///
/// Trigger a gather by injecting `BrokerMsg::Bir { request }` addressed
/// to the CROC node itself; the answer is available from
/// [`CrocClient::result`] once the flood completes.
pub struct CrocClient {
    broker: NodeId,
    current_request: Option<u64>,
    result: Option<Vec<GatheredBroker>>,
}

impl CrocClient {
    /// Creates a CROC client attached to `broker`.
    pub fn new(broker: NodeId) -> Self {
        Self {
            broker,
            current_request: None,
            result: None,
        }
    }

    /// The gathered broker information, once complete.
    pub fn result(&self) -> Option<&Vec<GatheredBroker>> {
        self.result.as_ref()
    }

    /// Takes the gathered result, clearing it.
    pub fn take_result(&mut self) -> Option<Vec<GatheredBroker>> {
        self.result.take()
    }
}

impl Process<BrokerMsg> for CrocClient {
    fn on_start(&mut self, ctx: &mut Context<'_, BrokerMsg>) {
        ctx.send(
            self.broker,
            BrokerMsg::ClientHello {
                client: ClientId::new(u64::MAX),
            },
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BrokerMsg>, from: NodeId, msg: BrokerMsg) {
        match msg {
            // Self-injected trigger.
            BrokerMsg::Bir { request } if from == ctx.node_id() => {
                self.current_request = Some(request);
                self.result = None;
                ctx.send(self.broker, BrokerMsg::Bir { request });
            }
            BrokerMsg::Bia { request, infos } if Some(request) == self.current_request => {
                self.result = Some(infos);
                self.current_request = None;
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{Broker, BrokerConfig};
    use greenps_core::model::LinearFn;
    use greenps_pubsub::filter::{stock_advertisement, stock_template};
    use greenps_pubsub::ids::{BrokerId, SubId};
    use greenps_simnet::{LinkSpec, Network};

    #[test]
    fn publisher_emits_at_rate() {
        let mut net: Network<BrokerMsg> = Network::new();
        let b0 = net.add_node(Broker::new(BrokerConfig::new(
            BrokerId::new(0),
            LinearFn::new(0.0001, 0.0),
            1e9,
        )));
        let p = net.add_node(PublisherClient::new(
            ClientId::new(1),
            AdvId::new(1),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(100),
            b0,
            Box::new(|adv, msg| Publication::builder(adv, msg).attr("x", 1i64).build()),
        ));
        net.connect(p, b0, LinkSpec::with_latency(SimDuration::from_millis(1)));
        net.run_for(SimDuration::from_secs(1));
        let publisher = net.node_as::<PublisherClient>(p).unwrap();
        assert_eq!(publisher.published(), 10);
        assert_eq!(publisher.adv_id(), AdvId::new(1));
    }

    #[test]
    fn subscriber_stats_reset() {
        let mut s = SubscriberClient::new(
            ClientId::new(1),
            NodeId(0),
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        );
        assert_eq!(s.subscriptions().len(), 1);
        s.deliveries = 5;
        s.hops_sum = 10;
        s.reset_stats();
        assert_eq!(s.deliveries(), 0);
        assert_eq!(s.mean_hops(), None);
        assert_eq!(s.mean_delay(), None);
    }

    #[test]
    fn croc_take_result_clears() {
        let mut c = CrocClient::new(NodeId(0));
        c.result = Some(vec![]);
        assert!(c.take_result().is_some());
        assert!(c.result().is_none());
    }
}
