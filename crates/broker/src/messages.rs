//! Messages exchanged between simulated brokers, clients and CROC.

use greenps_core::model::{BrokerSpec, SubscriptionEntry};
use greenps_profile::PublisherProfile;
use greenps_pubsub::ids::{AdvId, ClientId, SubId};
use greenps_pubsub::message::{Advertisement, Publication, Subscription};
use greenps_simnet::{Payload, SimTime};

/// A publication in flight, carrying the delivery-metric envelope.
#[derive(Debug, Clone)]
pub struct PubEnvelope {
    /// The publication itself.
    pub publication: Publication,
    /// Broker hops traversed so far.
    pub hops: u32,
    /// Simulated time the publisher emitted it.
    pub published_at: SimTime,
}

impl PubEnvelope {
    /// Wraps a fresh publication.
    pub fn new(publication: Publication, published_at: SimTime) -> Self {
        Self {
            publication,
            hops: 0,
            published_at,
        }
    }

    /// The envelope after one more broker hop.
    #[must_use]
    pub fn hopped(&self) -> Self {
        Self {
            publication: self.publication.clone(),
            hops: self.hops + 1,
            published_at: self.published_at,
        }
    }
}

/// Everything one broker reports in a BIA (paper §III-A).
#[derive(Debug, Clone)]
pub struct GatheredBroker {
    /// URL, matching-delay function, total output bandwidth.
    pub spec: BrokerSpec,
    /// Local subscriptions with bit-vector profiles.
    pub subscriptions: Vec<SubscriptionEntry>,
    /// Local publisher profiles.
    pub publishers: Vec<PublisherProfile>,
}

/// The message type routed through the simulated network.
#[derive(Debug, Clone)]
pub enum BrokerMsg {
    /// A client (publisher or subscriber) attaching to a broker.
    ClientHello {
        /// Client identity.
        client: ClientId,
    },
    /// Advertisement flooding.
    Advertise(Advertisement),
    /// Advertisement retraction.
    Unadvertise(AdvId),
    /// Subscription propagation.
    Subscribe(Subscription),
    /// Subscription retraction.
    Unsubscribe(SubId),
    /// Publication dissemination.
    Publication(PubEnvelope),
    /// Broker Information Request — floods the overlay (Phase 1).
    Bir {
        /// Request id so concurrent gathers do not interfere.
        request: u64,
    },
    /// Broker Information Answer — aggregated bottom-up.
    Bia {
        /// The request this answers.
        request: u64,
        /// This subtree's broker information.
        infos: Vec<GatheredBroker>,
    },
}

impl Payload for BrokerMsg {
    fn wire_size(&self) -> usize {
        match self {
            BrokerMsg::ClientHello { .. } => 16,
            BrokerMsg::Advertise(a) => 16 + a.filter.wire_size(),
            BrokerMsg::Unadvertise(_) | BrokerMsg::Unsubscribe(_) => 16,
            BrokerMsg::Subscribe(s) => 16 + s.filter.wire_size(),
            BrokerMsg::Publication(e) => 16 + e.publication.wire_size(),
            BrokerMsg::Bir { .. } => 16,
            BrokerMsg::Bia { infos, .. } => {
                16 + infos
                    .iter()
                    .map(|i| 64 + i.subscriptions.len() * 192 + i.publishers.len() * 32)
                    .sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_pubsub::filter::stock_template;
    use greenps_pubsub::ids::MsgId;

    #[test]
    fn envelope_hop_counting() {
        let p = Publication::builder(AdvId::new(1), MsgId::new(1))
            .attr("class", "STOCK")
            .build();
        let e = PubEnvelope::new(p, SimTime::from_micros(5));
        assert_eq!(e.hops, 0);
        let e2 = e.hopped().hopped();
        assert_eq!(e2.hops, 2);
        assert_eq!(e2.published_at, SimTime::from_micros(5));
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let sub = BrokerMsg::Subscribe(Subscription::new(SubId::new(1), stock_template("YHOO")));
        assert!(sub.wire_size() > BrokerMsg::Bir { request: 1 }.wire_size());
        let bia = BrokerMsg::Bia {
            request: 1,
            infos: vec![],
        };
        assert_eq!(bia.wire_size(), 16);
    }
}
