//! Runtime concurrency audit (DESIGN.md §9).
//!
//! [`TrackedMutex`] and [`TrackedRwLock`] wrap the parking_lot
//! primitives and record, per thread, the order in which locks are
//! acquired. Two properties are checked continuously:
//!
//! - **Lock-order inversions.** Acquiring lock B while holding lock A
//!   adds the edge A→B to a global order graph. If the reverse edge
//!   B→A was ever recorded, the pair can deadlock under the right
//!   interleaving and a report is filed — at witness time, without
//!   needing the deadlock to actually strike.
//! - **Long holds.** A guard held longer than [`HOLD_WARN`] is reported
//!   on release; long holds starve the live brokers' message loops.
//!
//! Reports accumulate in a process-global buffer drained with
//! [`take_reports`]. The wrappers are always compiled so unit tests can
//! exercise them; the `concurrency-audit` cargo feature additionally
//! arms the deadlock watchdog thread in the live deployer
//! (`live::LiveNet`), which files stall reports through
//! [`report`] when broker threads stop making progress.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Guards held longer than this are reported on release.
pub const HOLD_WARN: Duration = Duration::from_millis(100);

static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

/// Directed acquired-while-holding edges between lock ids.
static ORDER_EDGES: Mutex<BTreeSet<(usize, usize)>> = Mutex::new(BTreeSet::new());

/// Accumulated audit reports (inversions, long holds, watchdog stalls).
static REPORTS: Mutex<Vec<String>> = Mutex::new(Vec::new());

thread_local! {
    /// Locks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<(usize, &'static str)>> = const { RefCell::new(Vec::new()) };
}

fn fresh_id() -> usize {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Files an audit report. Public so the live watchdog (and tests) can
/// add reports alongside the lock wrappers' own.
pub fn report(message: String) {
    REPORTS.lock().push(message);
}

/// Drains and returns all accumulated reports.
pub fn take_reports() -> Vec<String> {
    std::mem::take(&mut *REPORTS.lock())
}

/// Copies the accumulated reports without draining them. Useful when
/// several observers (tests, the watchdog) inspect reports
/// concurrently and must not steal each other's entries.
pub fn reports_snapshot() -> Vec<String> {
    REPORTS.lock().clone()
}

/// Number of accumulated reports without draining them.
pub fn report_count() -> usize {
    REPORTS.lock().len()
}

/// Records `id` being acquired by this thread and checks ordering
/// against every lock already held. Called *before* blocking on the
/// lock so an actual deadlock still leaves the report behind.
fn note_acquire(id: usize, name: &'static str) {
    HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return;
        }
        let mut edges = ORDER_EDGES.lock();
        for &(held_id, held_name) in held.iter() {
            if held_id == id {
                continue;
            }
            if edges.contains(&(id, held_id)) {
                report(format!(
                    "lock-order inversion: `{held_name}` -> `{name}` on thread {:?}, but the reverse order was also observed",
                    std::thread::current().name().unwrap_or("<unnamed>"),
                ));
            }
            edges.insert((held_id, id));
        }
    });
}

fn push_held(id: usize, name: &'static str) {
    HELD.with(|held| held.borrow_mut().push((id, name)));
}

fn pop_held(id: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(h, _)| h == id) {
            held.remove(pos);
        }
    });
}

fn note_release(id: usize, name: &'static str, acquired: Instant) {
    pop_held(id);
    let held_for = acquired.elapsed();
    if held_for > HOLD_WARN {
        report(format!(
            "long hold: `{name}` held for {held_for:?} (budget {HOLD_WARN:?})"
        ));
    }
}

/// A parking_lot mutex that participates in the concurrency audit.
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    id: usize,
    name: &'static str,
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex; `name` labels it in reports.
    pub fn new(name: &'static str, value: T) -> Self {
        TrackedMutex {
            inner: Mutex::new(value),
            id: fresh_id(),
            name,
        }
    }

    /// Acquires the lock, recording acquisition order and hold time.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        note_acquire(self.id, self.name);
        let guard = self.inner.lock();
        push_held(self.id, self.name);
        TrackedMutexGuard {
            guard,
            id: self.id,
            name: self.name,
            acquired: Instant::now(),
        }
    }

    /// The label this lock reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`TrackedMutex::lock`].
pub struct TrackedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    id: usize,
    name: &'static str,
    acquired: Instant,
}

impl<T> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.id, self.name, self.acquired);
    }
}

/// A parking_lot RwLock that participates in the concurrency audit.
///
/// Read and write acquisitions are treated identically for ordering:
/// an inversion through a read lock still deadlocks once a writer
/// queues between the two readers.
pub struct TrackedRwLock<T> {
    inner: RwLock<T>,
    id: usize,
    name: &'static str,
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked RwLock; `name` labels it in reports.
    pub fn new(name: &'static str, value: T) -> Self {
        TrackedRwLock {
            inner: RwLock::new(value),
            id: fresh_id(),
            name,
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        note_acquire(self.id, self.name);
        let guard = self.inner.read();
        push_held(self.id, self.name);
        TrackedReadGuard {
            guard,
            id: self.id,
            name: self.name,
            acquired: Instant::now(),
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        note_acquire(self.id, self.name);
        let guard = self.inner.write();
        push_held(self.id, self.name);
        TrackedWriteGuard {
            guard,
            id: self.id,
            name: self.name,
            acquired: Instant::now(),
        }
    }

    /// The label this lock reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Shared guard returned by [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    id: usize,
    name: &'static str,
    acquired: Instant,
}

impl<T> Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.id, self.name, self.acquired);
    }
}

/// Exclusive guard returned by [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    id: usize,
    name: &'static str,
    acquired: Instant,
}

impl<T> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.id, self.name, self.acquired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_order_inversion_is_detected() {
        let a = Arc::new(TrackedMutex::new("audit-test-a", 0u32));
        let b = Arc::new(TrackedMutex::new("audit-test-b", 0u32));

        // Establish order a -> b on one thread...
        {
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            })
            .join()
            .expect("orderly thread");
        }
        // ...then take b -> a on another: a real inversion, caught
        // without any actual contention.
        {
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            })
            .join()
            .expect("inverting thread");
        }

        let reports = reports_snapshot();
        assert!(
            reports
                .iter()
                .any(|r| r.contains("inversion") && r.contains("audit-test-a")),
            "expected an inversion report, got {reports:?}"
        );
    }

    #[test]
    fn long_hold_is_reported() {
        let m = TrackedMutex::new("audit-test-slow", ());
        {
            let _g = m.lock();
            std::thread::sleep(HOLD_WARN + Duration::from_millis(20));
        }
        let reports = reports_snapshot();
        assert!(
            reports
                .iter()
                .any(|r| r.contains("long hold") && r.contains("audit-test-slow")),
            "expected a long-hold report, got {reports:?}"
        );
    }

    #[test]
    fn consistent_order_stays_silent() {
        let a = TrackedMutex::new("audit-test-c", ());
        let b = TrackedRwLock::new("audit-test-d", ());
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.write();
        }
        let reports = reports_snapshot();
        assert!(
            !reports.iter().any(|r| r.contains("audit-test-c")),
            "consistent ordering must not report: {reports:?}"
        );
    }
}
