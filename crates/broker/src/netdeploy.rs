//! Transport-generic deployment: the broker overlay running over any
//! [`greenps_net::Transport`] backend (DESIGN.md §13).
//!
//! Where [`crate::deploy`] wires brokers directly into the simnet
//! event loop, this harness speaks only the [`Endpoint`] contract:
//! the same scenario runs bit-for-bit over [`greenps_net::SimTransport`]
//! (deterministic, single-threaded) and over
//! [`greenps_net::TcpTransport`] (real loopback sockets, one accept
//! loop plus one reader thread per connection). The equivalence test in
//! `tests/transport_equivalence.rs` holds the two backends to the same
//! delivery multiset.
//!
//! The driver is cooperative: one sweep polls every endpoint in a
//! fixed order, feeding broker messages to each broker's
//! [`BrokerCore`] through a [`BrokerSink`] that sends over the
//! endpoint. Service delays (`send_after`) are collapsed to immediate
//! sends — on a real transport the queueing happens in the kernel and
//! the reader threads, not in a simulated service queue. The run polls
//! a [`CancelToken`] between sweeps so a cancelled reconfiguration
//! tears the overlay down within one sweep plus the transport's
//! internal poll interval.

use crate::broker::BrokerConfig;
use crate::logic::{BrokerCore, BrokerSink};
use crate::messages::{BrokerMsg, PubEnvelope};
use greenps_core::pipeline::CancelToken;
use greenps_net::{Endpoint, EndpointAddr, NetError, NetEvent, NodeName, Transport};
use greenps_pubsub::filter::{stock_advertisement, stock_template};
use greenps_pubsub::ids::{AdvId, BrokerId, ClientId, MsgId, SubId};
use greenps_pubsub::message::{Advertisement, Publication, Subscription};
use greenps_simnet::SimTime;
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Client endpoint names start here; broker names are their raw ids.
const CLIENT_BASE: NodeName = 1 << 32;

/// How many consecutive event-free sweeps mean "the overlay is idle".
const IDLE_SWEEPS: u32 = 8;

/// Per-endpoint poll wait during a drain sweep. Zero would busy-spin
/// on threaded transports; the sim backend ignores it entirely.
const SWEEP_WAIT: Duration = Duration::from_millis(2);

/// Errors surfaced by the transport deployment harness.
#[derive(Debug)]
pub enum NetDeployError {
    /// The scenario referenced an unknown broker or used a broker id
    /// that collides with the client name range.
    BadScenario(String),
    /// A transport operation failed while building the overlay.
    Net(NetError),
    /// The run was cancelled through its [`CancelToken`].
    Cancelled,
}

impl fmt::Display for NetDeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetDeployError::BadScenario(why) => write!(f, "bad scenario: {why}"),
            NetDeployError::Net(e) => write!(f, "transport error: {e}"),
            NetDeployError::Cancelled => write!(f, "deployment cancelled"),
        }
    }
}

impl std::error::Error for NetDeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetDeployError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for NetDeployError {
    fn from(e: NetError) -> Self {
        NetDeployError::Net(e)
    }
}

/// A publisher in a [`NetScenario`]: attaches at `broker`, advertises
/// once, then publishes its pre-generated publications in rounds.
#[derive(Debug, Clone)]
pub struct NetPublisher {
    /// Client identity sent in the hello.
    pub client: ClientId,
    /// Home broker.
    pub broker: BrokerId,
    /// The advertisement registered before publishing.
    pub advertisement: Advertisement,
    /// Publications, published one per round in order.
    pub publications: Vec<Publication>,
}

/// A subscriber in a [`NetScenario`]: attaches at `broker` and issues
/// one subscription.
#[derive(Debug, Clone)]
pub struct NetSubscriber {
    /// Client identity sent in the hello.
    pub client: ClientId,
    /// Home broker.
    pub broker: BrokerId,
    /// The subscription registered at the home broker.
    pub subscription: Subscription,
}

/// A declarative, fully pre-generated workload: because every
/// publication is materialized up front, the same scenario value can
/// be replayed over different transports and compared delivery-for-
/// delivery.
#[derive(Debug, Clone)]
pub struct NetScenario {
    /// Broker configurations; ids must stay below the client range.
    pub brokers: Vec<BrokerConfig>,
    /// Broker-to-broker overlay edges.
    pub edges: Vec<(BrokerId, BrokerId)>,
    /// Publishers with pre-generated publication streams.
    pub publishers: Vec<NetPublisher>,
    /// Subscribers.
    pub subscribers: Vec<NetSubscriber>,
}

impl NetScenario {
    /// A chain of `brokers` brokers with one stock publisher at the
    /// head, one matching subscriber at every broker, and
    /// `publications` messages — the stock quote workload used by the
    /// transport benchmarks and the sim/tcp equivalence test.
    pub fn stock_chain(brokers: usize, publications: u64) -> Self {
        use greenps_core::model::LinearFn;
        let configs: Vec<BrokerConfig> = (0..brokers as u64)
            .map(|i| BrokerConfig::new(BrokerId::new(i), LinearFn::new(0.0, 0.0), 1e9))
            .collect();
        let edges = (1..brokers as u64)
            .map(|i| (BrokerId::new(i - 1), BrokerId::new(i)))
            .collect();
        let pubs = (0..publications)
            .map(|m| {
                Publication::builder(AdvId::new(1), MsgId::new(m))
                    .attr("class", "STOCK")
                    .attr("symbol", "YHOO")
                    .attr("low", 18.0 + (m % 7) as f64)
                    .build()
            })
            .collect();
        let subscribers = (0..brokers as u64)
            .map(|i| NetSubscriber {
                client: ClientId::new(100 + i),
                broker: BrokerId::new(i),
                subscription: Subscription::new(SubId::new(10 + i), stock_template("YHOO")),
            })
            .collect();
        NetScenario {
            brokers: configs,
            edges,
            publishers: vec![NetPublisher {
                client: ClientId::new(1),
                broker: BrokerId::new(0),
                advertisement: Advertisement::new(AdvId::new(1), stock_advertisement("YHOO")),
                publications: pubs,
            }],
            subscribers,
        }
    }
}

/// Per-broker counters in a [`NetDeployReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetBrokerStats {
    /// Publications matched (processed) by the broker.
    pub matched: u64,
    /// Publications delivered to locally attached clients.
    pub delivered: u64,
}

/// What a transport deployment run produced.
#[derive(Debug, Clone)]
pub struct NetDeployReport {
    /// Publications injected by all publishers.
    pub published: u64,
    /// Per subscriber: the sorted multiset of delivered
    /// `(advertisement, message)` id pairs. Comparing this field
    /// across transports is the backend-equivalence criterion.
    pub deliveries: BTreeMap<ClientId, Vec<(u64, u64)>>,
    /// Per-broker matched/delivered counters from the cores.
    pub broker_stats: BTreeMap<BrokerId, NetBrokerStats>,
    /// Per home broker: delivery latency samples in microseconds,
    /// publisher stamp to subscriber receipt on the driver's clock.
    pub latency_us_by_broker: BTreeMap<BrokerId, Vec<u64>>,
    /// Mean broker hops over all deliveries.
    pub mean_hops: Option<f64>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Sends that failed because a session was lost mid-run.
    pub send_errors: u64,
}

impl NetDeployReport {
    /// Total publications delivered to subscribers.
    pub fn total_delivered(&self) -> u64 {
        self.deliveries.values().map(|v| v.len() as u64).sum()
    }

    /// Delivered messages per wall-clock second.
    pub fn delivered_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_delivered() as f64 / secs
        }
    }
}

struct BrokerNode<E> {
    id: BrokerId,
    ep: E,
    core: BrokerCore<NodeName>,
    send_errors: u64,
}

struct SubscriberNode<E> {
    client: ClientId,
    broker: BrokerId,
    ep: E,
    delivered: Vec<(u64, u64)>,
    latency_us: Vec<u64>,
    hops_sum: u64,
    /// Upper bound on deliveries (total scenario publications), so the
    /// sweep loop can size the accumulators up front.
    expected: usize,
}

struct PublisherNode<E> {
    broker_name: NodeName,
    ep: E,
    publications: Vec<Publication>,
    next: usize,
}

/// Sink mapping [`BrokerCore`] output onto a transport endpoint.
///
/// `send_after` sends immediately: service-queue modelling belongs to
/// the simulator; on a live transport the only delays are real ones.
struct NetSink<'a, E> {
    ep: &'a mut E,
    now: SimTime,
    send_errors: &'a mut u64,
}

impl<E: Endpoint<BrokerMsg>> BrokerSink<NodeName> for NetSink<'_, E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn send(&mut self, to: NodeName, msg: BrokerMsg) {
        if self.ep.send(to, &msg).is_err() {
            *self.send_errors += 1;
        }
    }

    fn send_after(&mut self, _delay: greenps_simnet::SimDuration, to: NodeName, msg: BrokerMsg) {
        self.send(to, msg);
    }
}

/// A broker overlay deployed over an arbitrary transport backend.
pub struct NetDeployment<E> {
    brokers: Vec<BrokerNode<E>>,
    subscribers: Vec<SubscriberNode<E>>,
    publishers: Vec<PublisherNode<E>>,
    start: Instant,
    published: u64,
}

impl<E: Endpoint<BrokerMsg>> NetDeployment<E> {
    /// Opens endpoints for every broker and client of `scenario` on
    /// `transport` and wires the overlay: each edge is dialed from
    /// both ends (each side treats its own successful `connect` as the
    /// session signal), clients dial their home broker and say hello.
    pub fn build<T>(transport: &mut T, scenario: &NetScenario) -> Result<Self, NetDeployError>
    where
        T: Transport<BrokerMsg, Endpoint = E>,
    {
        let mut brokers = Vec::with_capacity(scenario.brokers.len());
        let mut addrs: BTreeMap<BrokerId, EndpointAddr> = BTreeMap::new();
        for cfg in &scenario.brokers {
            let name = cfg.id.raw();
            if name >= CLIENT_BASE {
                return Err(NetDeployError::BadScenario(format!(
                    "broker id {} collides with the client name range",
                    cfg.id
                )));
            }
            let ep = transport.open(name)?;
            addrs.insert(cfg.id, ep.addr());
            brokers.push(BrokerNode {
                id: cfg.id,
                ep,
                core: BrokerCore::new(cfg.clone()),
                send_errors: 0,
            });
        }
        let addr_of = |id: BrokerId| {
            addrs
                .get(&id)
                .cloned()
                .ok_or_else(|| NetDeployError::BadScenario(format!("unknown broker {id}")))
        };
        fn node_of<E>(
            brokers: &mut [BrokerNode<E>],
            id: BrokerId,
        ) -> Result<&mut BrokerNode<E>, NetDeployError> {
            brokers
                .iter_mut()
                .find(|b| b.id == id)
                .ok_or_else(|| NetDeployError::BadScenario(format!("unknown broker {id}")))
        }
        for &(a, b) in &scenario.edges {
            let addr_a = addr_of(a)?;
            let addr_b = addr_of(b)?;
            let node = node_of(&mut brokers, a)?;
            let peer_b = node.ep.connect(&addr_b)?;
            node.core.add_broker_neighbor(peer_b);
            let node = node_of(&mut brokers, b)?;
            let peer_a = node.ep.connect(&addr_a)?;
            node.core.add_broker_neighbor(peer_a);
        }
        let mut next_client = CLIENT_BASE;
        let mut fresh = || {
            let name = next_client;
            next_client += 1;
            name
        };
        let mut subscribers = Vec::with_capacity(scenario.subscribers.len());
        for sub in &scenario.subscribers {
            let addr = addr_of(sub.broker)?;
            let mut ep = transport.open(fresh())?;
            let broker_name = ep.connect(&addr)?;
            ep.send(broker_name, &BrokerMsg::ClientHello { client: sub.client })?;
            ep.send(broker_name, &BrokerMsg::Subscribe(sub.subscription.clone()))?;
            subscribers.push(SubscriberNode {
                client: sub.client,
                broker: sub.broker,
                ep,
                delivered: Vec::new(),
                latency_us: Vec::new(),
                hops_sum: 0,
                expected: scenario
                    .publishers
                    .iter()
                    .map(|p| p.publications.len())
                    .sum(),
            });
        }
        let mut publishers = Vec::with_capacity(scenario.publishers.len());
        for publisher in &scenario.publishers {
            let addr = addr_of(publisher.broker)?;
            let mut ep = transport.open(fresh())?;
            let broker_name = ep.connect(&addr)?;
            ep.send(
                broker_name,
                &BrokerMsg::ClientHello {
                    client: publisher.client,
                },
            )?;
            ep.send(
                broker_name,
                &BrokerMsg::Advertise(publisher.advertisement.clone()),
            )?;
            publishers.push(PublisherNode {
                broker_name,
                ep,
                publications: publisher.publications.clone(),
                next: 0,
            });
        }
        Ok(Self {
            brokers,
            subscribers,
            publishers,
            start: Instant::now(),
            published: 0,
        })
    }

    /// Driver-clock "now": microseconds since the deployment was built.
    fn now(&self) -> SimTime {
        let us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        SimTime::from_micros(us)
    }

    /// Polls every endpoint once, dispatching what arrives. Returns
    /// the number of events processed.
    fn sweep(&mut self, wait: Duration) -> usize {
        let now = {
            let us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
            SimTime::from_micros(us)
        };
        let mut processed = 0;
        for node in &mut self.brokers {
            while let Some(ev) = node
                .ep
                .poll(if processed == 0 { wait } else { Duration::ZERO })
            {
                processed += 1;
                match ev {
                    // Accepted sessions and closes only adjust the
                    // endpoint's internal session table.
                    NetEvent::Session { .. } | NetEvent::Closed { .. } => {}
                    NetEvent::Msg { from, msg } => {
                        let mut sink = NetSink {
                            ep: &mut node.ep,
                            now,
                            send_errors: &mut node.send_errors,
                        };
                        node.core.on_message(&mut sink, from, msg);
                    }
                }
            }
        }
        for sub in &mut self.subscribers {
            sub.delivered
                .reserve(sub.expected.saturating_sub(sub.delivered.len()));
            sub.latency_us
                .reserve(sub.expected.saturating_sub(sub.latency_us.len()));
            while let Some(ev) = sub.ep.poll(Duration::ZERO) {
                processed += 1;
                if let NetEvent::Msg {
                    msg: BrokerMsg::Publication(env),
                    ..
                } = ev
                {
                    sub.delivered
                        .push((env.publication.adv_id.raw(), env.publication.msg_id.raw()));
                    sub.latency_us
                        .push(now.as_micros().saturating_sub(env.published_at.as_micros()));
                    sub.hops_sum += u64::from(env.hops);
                }
            }
        }
        for publisher in &mut self.publishers {
            while publisher.ep.poll(Duration::ZERO).is_some() {
                processed += 1;
            }
        }
        processed
    }

    /// Sweeps until `IDLE_SWEEPS` consecutive sweeps observe nothing,
    /// honoring cancellation between sweeps.
    fn drain(&mut self, cancel: &CancelToken) -> Result<(), NetDeployError> {
        let mut idle = 0;
        while idle < IDLE_SWEEPS {
            if cancel.is_cancelled_hot() {
                return Err(NetDeployError::Cancelled);
            }
            if self.sweep(SWEEP_WAIT) == 0 {
                idle += 1;
            } else {
                idle = 0;
            }
        }
        Ok(())
    }

    /// Runs the scenario to completion: settles the control plane,
    /// publishes every publication in rounds (one per publisher per
    /// sweep), drains the overlay and tears it down.
    ///
    /// Fails with [`NetDeployError::Cancelled`] as soon as `cancel`
    /// trips; endpoints are shut down before returning either way.
    pub fn run(mut self, cancel: &CancelToken) -> Result<NetDeployReport, NetDeployError> {
        let outcome = self.run_inner(cancel);
        self.shutdown();
        let report = outcome?;
        Ok(report)
    }

    fn run_inner(&mut self, cancel: &CancelToken) -> Result<NetDeployReport, NetDeployError> {
        // Control plane: hellos, subscriptions and advertisements are
        // already in flight from `build`; let them propagate fully so
        // routing state is identical on every backend before traffic.
        self.drain(cancel)?;
        loop {
            if cancel.is_cancelled_hot() {
                return Err(NetDeployError::Cancelled);
            }
            let mut sent_any = false;
            let now = self.now();
            for publisher in &mut self.publishers {
                let Some(p) = publisher.publications.get(publisher.next) else {
                    continue;
                };
                let env = PubEnvelope::new(p.clone(), now);
                if publisher
                    .ep
                    .send(publisher.broker_name, &BrokerMsg::Publication(env))
                    .is_ok()
                {
                    self.published += 1;
                }
                publisher.next += 1;
                sent_any = true;
            }
            if !sent_any {
                break;
            }
            self.sweep(Duration::ZERO);
        }
        self.drain(cancel)?;
        Ok(self.report())
    }

    fn report(&self) -> NetDeployReport {
        let deliveries: BTreeMap<ClientId, Vec<(u64, u64)>> = self
            .subscribers
            .iter()
            .map(|sub| {
                let mut got = sub.delivered.clone();
                got.sort_unstable();
                (sub.client, got)
            })
            .collect();
        let mut latency_us_by_broker: BTreeMap<BrokerId, Vec<u64>> = BTreeMap::new();
        let mut hops_sum = 0u64;
        let mut delivered = 0u64;
        for sub in &self.subscribers {
            delivered += sub.delivered.len() as u64;
            hops_sum += sub.hops_sum;
            latency_us_by_broker
                .entry(sub.broker)
                .or_default()
                .extend_from_slice(&sub.latency_us);
        }
        let broker_stats = self
            .brokers
            .iter()
            .map(|b| {
                (
                    b.id,
                    NetBrokerStats {
                        matched: b.core.matched_count,
                        delivered: b.core.delivered_count,
                    },
                )
            })
            .collect();
        NetDeployReport {
            published: self.published,
            deliveries,
            broker_stats,
            latency_us_by_broker,
            mean_hops: if delivered == 0 {
                None
            } else {
                Some(hops_sum as f64 / delivered as f64)
            },
            elapsed: self.start.elapsed(),
            send_errors: self.brokers.iter().map(|b| b.send_errors).sum(),
        }
    }

    fn shutdown(&mut self) {
        for publisher in &mut self.publishers {
            publisher.ep.shutdown();
        }
        for sub in &mut self.subscribers {
            sub.ep.shutdown();
        }
        for broker in &mut self.brokers {
            broker.ep.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_net::SimTransport;

    #[test]
    fn stock_chain_delivers_over_sim_transport() {
        let scenario = NetScenario::stock_chain(3, 20);
        let mut transport: SimTransport<BrokerMsg> = SimTransport::new();
        let deployment = NetDeployment::build(&mut transport, &scenario).expect("build");
        let report = deployment.run(&CancelToken::new()).expect("run");
        assert_eq!(report.published, 20);
        // Every broker hosts one matching subscriber.
        assert_eq!(report.total_delivered(), 60);
        for (client, got) in &report.deliveries {
            assert_eq!(got.len(), 20, "subscriber {client} saw all publications");
        }
        assert_eq!(report.broker_stats[&BrokerId::new(2)].delivered, 20);
        assert!(report.send_errors == 0);
    }

    #[test]
    fn cancellation_stops_the_run() {
        let scenario = NetScenario::stock_chain(2, 5);
        let mut transport: SimTransport<BrokerMsg> = SimTransport::new();
        let deployment = NetDeployment::build(&mut transport, &scenario).expect("build");
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(matches!(
            deployment.run(&cancel),
            Err(NetDeployError::Cancelled)
        ));
    }

    #[test]
    fn bad_broker_id_is_rejected() {
        let mut scenario = NetScenario::stock_chain(1, 1);
        scenario.brokers[0].id = BrokerId::new(1 << 33);
        let mut transport: SimTransport<BrokerMsg> = SimTransport::new();
        assert!(matches!(
            NetDeployment::build(&mut transport, &scenario),
            Err(NetDeployError::BadScenario(_))
        ));
    }
}
