//! Byte-stable wire codec for [`BrokerMsg`] (DESIGN.md §13.4).
//!
//! Implements `greenps_net::Wire` for the broker message vocabulary so
//! the TCP transport can carry real frames. Nested vocabulary types
//! (values, filters, profiles) are foreign to this crate, so they are
//! encoded through free `put_*`/`read_*` helper pairs rather than
//! trait impls — which also keeps the encode-side call graph fully
//! resolvable for the hot-path-alloc lint: the publish frame-encode
//! path allocates nothing beyond the caller's reusable scratch buffer.
//!
//! The encoding is byte-stable: every container iterates in a
//! deterministic order (`Vec` insertion order, `BTreeMap` key order),
//! so `encode(decode(encode(x))) == encode(x)` byte for byte. The
//! round-trip property is pinned by proptests in
//! `tests/wire_roundtrip.rs`.

use crate::messages::{BrokerMsg, GatheredBroker, PubEnvelope};
use greenps_core::model::{BrokerSpec, LinearFn, SubscriptionEntry};
use greenps_net::wire::{
    put_bool, put_f64, put_i64, put_seq_len, put_str, put_u32, put_u64, put_u8, Wire, WireError,
    WireReader,
};
use greenps_profile::{PublisherProfile, ShiftingBitVector, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, BrokerId, ClientId, MsgId, SubId};
use greenps_pubsub::message::{Advertisement, Publication, Subscription};
use greenps_pubsub::predicate::{Op, Predicate};
use greenps_pubsub::value::Value;
use greenps_simnet::SimTime;

// --- values and predicates -------------------------------------------

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            put_u8(out, 0);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 1);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            put_u8(out, 2);
            put_str(out, s);
        }
        Value::Bool(b) => {
            put_u8(out, 3);
            put_bool(out, *b);
        }
    }
}

fn read_value(r: &mut WireReader<'_>) -> Result<Value, WireError> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::Float(r.f64()?)),
        2 => Ok(Value::str(r.str()?)),
        3 => Ok(Value::Bool(r.bool()?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_op(out: &mut Vec<u8>, op: Op) {
    let tag = match op {
        Op::Eq => 0,
        Op::Neq => 1,
        Op::Lt => 2,
        Op::Le => 3,
        Op::Gt => 4,
        Op::Ge => 5,
        Op::Prefix => 6,
        Op::Suffix => 7,
        Op::Contains => 8,
        Op::Present => 9,
    };
    put_u8(out, tag);
}

fn read_op(r: &mut WireReader<'_>) -> Result<Op, WireError> {
    match r.u8()? {
        0 => Ok(Op::Eq),
        1 => Ok(Op::Neq),
        2 => Ok(Op::Lt),
        3 => Ok(Op::Le),
        4 => Ok(Op::Gt),
        5 => Ok(Op::Ge),
        6 => Ok(Op::Prefix),
        7 => Ok(Op::Suffix),
        8 => Ok(Op::Contains),
        9 => Ok(Op::Present),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    put_str(out, &p.attr);
    put_op(out, p.op);
    put_value(out, &p.value);
}

fn read_predicate(r: &mut WireReader<'_>) -> Result<Predicate, WireError> {
    let attr = r.str()?;
    let op = read_op(r)?;
    let value = read_value(r)?;
    Ok(Predicate::new(attr, op, value))
}

fn put_filter(out: &mut Vec<u8>, f: &greenps_pubsub::filter::Filter) {
    let preds = f.predicates();
    put_seq_len(out, preds.len());
    for p in preds {
        put_predicate(out, p);
    }
}

fn read_filter(r: &mut WireReader<'_>) -> Result<greenps_pubsub::filter::Filter, WireError> {
    let n = r.seq_len()?;
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        preds.push(read_predicate(r)?);
    }
    Ok(greenps_pubsub::filter::Filter::from_predicates(preds))
}

// --- publications ----------------------------------------------------

fn put_publication(out: &mut Vec<u8>, p: &Publication) {
    put_u64(out, p.adv_id.raw());
    put_u64(out, p.msg_id.raw());
    put_seq_len(out, p.len());
    for (attr, value) in p.iter() {
        put_str(out, attr);
        put_value(out, value);
    }
}

fn read_publication(r: &mut WireReader<'_>) -> Result<Publication, WireError> {
    let adv = AdvId::new(r.u64()?);
    let msg = MsgId::new(r.u64()?);
    let n = r.seq_len()?;
    let mut b = Publication::builder(adv, msg);
    for _ in 0..n {
        let attr = r.str()?;
        let value = read_value(r)?;
        b = b.attr(attr, value);
    }
    Ok(b.build())
}

fn put_envelope(out: &mut Vec<u8>, e: &PubEnvelope) {
    put_publication(out, &e.publication);
    put_u32(out, e.hops);
    put_u64(out, e.published_at.as_micros());
}

fn read_envelope(r: &mut WireReader<'_>) -> Result<PubEnvelope, WireError> {
    let publication = read_publication(r)?;
    let hops = r.u32()?;
    let published_at = SimTime::from_micros(r.u64()?);
    Ok(PubEnvelope {
        publication,
        hops,
        published_at,
    })
}

// --- profiles --------------------------------------------------------

fn put_bitvec(out: &mut Vec<u8>, v: &ShiftingBitVector) {
    put_u64(out, v.capacity() as u64);
    put_u64(out, v.first_id());
    put_seq_len(out, v.count_ones());
    for id in v.iter_ids() {
        put_u64(out, id);
    }
}

fn read_bitvec(r: &mut WireReader<'_>) -> Result<ShiftingBitVector, WireError> {
    let cap64 = r.u64()?;
    let capacity = usize::try_from(cap64).map_err(|_| WireError::BadLength(cap64))?;
    if capacity == 0 {
        return Err(WireError::BadValue);
    }
    let first_id = r.u64()?;
    // The window end must not overflow: `window_end()` computes
    // `first_id + capacity` internally.
    let end = first_id.checked_add(cap64).ok_or(WireError::BadValue)?;
    let n = r.seq_len()?;
    let mut v = ShiftingBitVector::starting_at(capacity, first_id);
    for _ in 0..n {
        let id = r.u64()?;
        if id < first_id || id >= end {
            return Err(WireError::BadValue);
        }
        v.record(id);
    }
    Ok(v)
}

fn put_profile(out: &mut Vec<u8>, p: &SubscriptionProfile) {
    put_u64(out, p.capacity() as u64);
    put_seq_len(out, p.publisher_count());
    for (adv, vector) in p.iter() {
        put_u64(out, adv.raw());
        put_bitvec(out, vector);
    }
}

fn read_profile(r: &mut WireReader<'_>) -> Result<SubscriptionProfile, WireError> {
    let cap64 = r.u64()?;
    let capacity = usize::try_from(cap64).map_err(|_| WireError::BadLength(cap64))?;
    if capacity == 0 {
        return Err(WireError::BadValue);
    }
    let n = r.seq_len()?;
    let mut p = SubscriptionProfile::with_capacity(capacity);
    for _ in 0..n {
        let adv = AdvId::new(r.u64()?);
        let vector = read_bitvec(r)?;
        p.insert_vector(adv, vector);
    }
    Ok(p)
}

fn put_publisher_profile(out: &mut Vec<u8>, p: &PublisherProfile) {
    put_u64(out, p.adv_id.raw());
    put_f64(out, p.rate);
    put_f64(out, p.bandwidth);
    put_u64(out, p.last_msg_id.raw());
}

fn read_publisher_profile(r: &mut WireReader<'_>) -> Result<PublisherProfile, WireError> {
    let adv = AdvId::new(r.u64()?);
    let rate = r.f64()?;
    let bandwidth = r.f64()?;
    let last = MsgId::new(r.u64()?);
    Ok(PublisherProfile::new(adv, rate, bandwidth, last))
}

// --- broker information ----------------------------------------------

fn put_spec(out: &mut Vec<u8>, s: &BrokerSpec) {
    put_u64(out, s.id.raw());
    put_str(out, &s.url);
    put_f64(out, s.matching_delay.base);
    put_f64(out, s.matching_delay.per_sub);
    put_f64(out, s.out_bandwidth);
}

fn read_spec(r: &mut WireReader<'_>) -> Result<BrokerSpec, WireError> {
    let id = BrokerId::new(r.u64()?);
    let url = r.str()?;
    let base = r.f64()?;
    let per_sub = r.f64()?;
    let out_bandwidth = r.f64()?;
    Ok(BrokerSpec::new(
        id,
        url,
        LinearFn::new(base, per_sub),
        out_bandwidth,
    ))
}

fn put_sub_entry(out: &mut Vec<u8>, e: &SubscriptionEntry) {
    put_u64(out, e.id.raw());
    put_filter(out, &e.filter);
    put_profile(out, &e.profile);
}

fn read_sub_entry(r: &mut WireReader<'_>) -> Result<SubscriptionEntry, WireError> {
    let id = SubId::new(r.u64()?);
    let filter = read_filter(r)?;
    let profile = read_profile(r)?;
    Ok(SubscriptionEntry::new(id, filter, profile))
}

fn put_gathered(out: &mut Vec<u8>, g: &GatheredBroker) {
    put_spec(out, &g.spec);
    put_seq_len(out, g.subscriptions.len());
    for s in &g.subscriptions {
        put_sub_entry(out, s);
    }
    put_seq_len(out, g.publishers.len());
    for p in &g.publishers {
        put_publisher_profile(out, p);
    }
}

fn read_gathered(r: &mut WireReader<'_>) -> Result<GatheredBroker, WireError> {
    let spec = read_spec(r)?;
    let n_subs = r.seq_len()?;
    let mut subscriptions = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        subscriptions.push(read_sub_entry(r)?);
    }
    let n_pubs = r.seq_len()?;
    let mut publishers = Vec::with_capacity(n_pubs);
    for _ in 0..n_pubs {
        publishers.push(read_publisher_profile(r)?);
    }
    Ok(GatheredBroker {
        spec,
        subscriptions,
        publishers,
    })
}

// --- the message envelope --------------------------------------------

const TAG_CLIENT_HELLO: u8 = 0;
const TAG_ADVERTISE: u8 = 1;
const TAG_UNADVERTISE: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_UNSUBSCRIBE: u8 = 4;
const TAG_PUBLICATION: u8 = 5;
const TAG_BIR: u8 = 6;
const TAG_BIA: u8 = 7;

impl Wire for BrokerMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BrokerMsg::ClientHello { client } => {
                put_u8(out, TAG_CLIENT_HELLO);
                put_u64(out, client.raw());
            }
            BrokerMsg::Advertise(a) => {
                put_u8(out, TAG_ADVERTISE);
                put_u64(out, a.id.raw());
                put_filter(out, &a.filter);
            }
            BrokerMsg::Unadvertise(id) => {
                put_u8(out, TAG_UNADVERTISE);
                put_u64(out, id.raw());
            }
            BrokerMsg::Subscribe(s) => {
                put_u8(out, TAG_SUBSCRIBE);
                put_u64(out, s.id.raw());
                put_filter(out, &s.filter);
            }
            BrokerMsg::Unsubscribe(id) => {
                put_u8(out, TAG_UNSUBSCRIBE);
                put_u64(out, id.raw());
            }
            BrokerMsg::Publication(e) => {
                put_u8(out, TAG_PUBLICATION);
                put_envelope(out, e);
            }
            BrokerMsg::Bir { request } => {
                put_u8(out, TAG_BIR);
                put_u64(out, *request);
            }
            BrokerMsg::Bia { request, infos } => {
                put_u8(out, TAG_BIA);
                put_u64(out, *request);
                put_seq_len(out, infos.len());
                for g in infos {
                    put_gathered(out, g);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_CLIENT_HELLO => Ok(BrokerMsg::ClientHello {
                client: ClientId::new(r.u64()?),
            }),
            TAG_ADVERTISE => {
                let id = AdvId::new(r.u64()?);
                let filter = read_filter(r)?;
                Ok(BrokerMsg::Advertise(Advertisement::new(id, filter)))
            }
            TAG_UNADVERTISE => Ok(BrokerMsg::Unadvertise(AdvId::new(r.u64()?))),
            TAG_SUBSCRIBE => {
                let id = SubId::new(r.u64()?);
                let filter = read_filter(r)?;
                Ok(BrokerMsg::Subscribe(Subscription::new(id, filter)))
            }
            TAG_UNSUBSCRIBE => Ok(BrokerMsg::Unsubscribe(SubId::new(r.u64()?))),
            TAG_PUBLICATION => Ok(BrokerMsg::Publication(read_envelope(r)?)),
            TAG_BIR => Ok(BrokerMsg::Bir { request: r.u64()? }),
            TAG_BIA => {
                let request = r.u64()?;
                let n = r.seq_len()?;
                let mut infos = Vec::with_capacity(n);
                for _ in 0..n {
                    infos.push(read_gathered(r)?);
                }
                Ok(BrokerMsg::Bia { request, infos })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_net::wire::decode_exact;
    use greenps_pubsub::filter::stock_template;

    fn round_trip(msg: &BrokerMsg) -> (Vec<u8>, BrokerMsg) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let back: BrokerMsg = decode_exact(&buf).expect("decode");
        (buf, back)
    }

    fn re_encode(msg: &BrokerMsg) -> Vec<u8> {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        buf
    }

    #[test]
    fn publication_round_trips_byte_stably() {
        let p = Publication::builder(AdvId::new(3), MsgId::new(99))
            .attr("class", "STOCK")
            .attr("close", 18.37)
            .attr("volume", 40_000i64)
            .attr("closeEqualsLow", true)
            .build();
        let msg = BrokerMsg::Publication(PubEnvelope::new(p, SimTime::from_micros(77)));
        let (bytes, back) = round_trip(&msg);
        assert_eq!(re_encode(&back), bytes);
    }

    #[test]
    fn bia_with_profiles_round_trips() {
        let mut profile = SubscriptionProfile::with_capacity(64);
        let mut v = ShiftingBitVector::starting_at(64, 10);
        v.record(12);
        v.record(63);
        profile.insert_vector(AdvId::new(7), v);
        let info = GatheredBroker {
            spec: BrokerSpec::new(BrokerId::new(2), "b2.local", LinearFn::new(0.5, 0.01), 1e6),
            subscriptions: vec![SubscriptionEntry::new(
                SubId::new(5),
                stock_template("YHOO"),
                profile,
            )],
            publishers: vec![PublisherProfile::new(
                AdvId::new(7),
                10.0,
                320.0,
                MsgId::new(63),
            )],
        };
        let msg = BrokerMsg::Bia {
            request: 42,
            infos: vec![info],
        };
        let (bytes, back) = round_trip(&msg);
        assert_eq!(re_encode(&back), bytes);
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut buf = Vec::new();
        BrokerMsg::Bir { request: 9 }.encode(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(matches!(
            decode_exact::<BrokerMsg>(&buf),
            Err(WireError::Truncated)
        ));
        assert!(matches!(
            decode_exact::<BrokerMsg>(&[200]),
            Err(WireError::BadTag(200))
        ));
    }

    #[test]
    fn zero_capacity_bitvec_is_rejected_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0); // capacity
        put_u64(&mut buf, 0); // first_id
        put_seq_len(&mut buf, 0);
        let mut r = WireReader::new(&buf);
        assert!(matches!(read_bitvec(&mut r), Err(WireError::BadValue)));
    }
}
