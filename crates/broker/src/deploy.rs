//! PANDA-style deployment: build a broker network from a topology
//! specification, attach clients, gather Phase-1 information, and
//! measure a running deployment.
//!
//! The paper deploys with PANDA from a text topology file; here a
//! [`TopologySpec`] plays that role against the discrete-event network.

use crate::broker::{Broker, BrokerConfig};
use crate::client::{CrocClient, PublicationGen, PublisherClient, SubscriberClient};
use crate::messages::{BrokerMsg, GatheredBroker};
use greenps_core::model::AllocationInput;
use greenps_profile::PublisherTable;
use greenps_pubsub::ids::{AdvId, BrokerId, ClientId};
use greenps_pubsub::message::Subscription;
use greenps_pubsub::Filter;
use greenps_simnet::{LinkSpec, Network, NodeId, SimDuration};
use greenps_telemetry::{Registry, Span};
use std::collections::BTreeMap;

/// Deployment construction errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployError {
    /// A topology edge or attach call referenced a broker id that is
    /// not part of the deployment.
    UnknownBroker(BrokerId),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::UnknownBroker(id) => write!(f, "unknown broker id {id:?}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Phase-1 gather failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherError {
    /// The deployment has no brokers to gather from.
    NoBrokers,
    /// The aggregated BIA did not arrive within the gather timeout.
    Timeout {
        /// How long the gather waited before giving up.
        waited: SimDuration,
    },
}

impl std::fmt::Display for GatherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatherError::NoBrokers => write!(f, "phase 1 gather: deployment has no brokers"),
            GatherError::Timeout { waited } => write!(
                f,
                "phase 1 gather: aggregated BIA did not arrive within {} ms",
                waited.as_micros() / 1_000
            ),
        }
    }
}

impl std::error::Error for GatherError {}

/// A deployable broker topology.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// Broker configurations.
    pub brokers: Vec<BrokerConfig>,
    /// Broker-to-broker overlay links.
    pub edges: Vec<(BrokerId, BrokerId)>,
    /// Link parameters for every overlay and client link.
    pub link: LinkSpec,
}

/// A running deployment: the network plus id→node indexes.
pub struct Deployment {
    /// The simulated network.
    pub net: Network<BrokerMsg>,
    /// Broker id → node.
    pub brokers: BTreeMap<BrokerId, NodeId>,
    /// Publisher advertisement → node.
    pub publishers: BTreeMap<AdvId, NodeId>,
    /// Subscriber client id → node.
    pub subscribers: BTreeMap<ClientId, NodeId>,
    link: LinkSpec,
    croc: Option<NodeId>,
    next_request: u64,
    telemetry: Registry,
}

impl RunMetrics {
    /// Renormalizes the pool average to `pool_size` brokers (idle,
    /// deallocated brokers count as zero-rate members of the pool).
    pub fn rescale_to_pool(&mut self, pool_size: usize) {
        if pool_size > 0 {
            let total: f64 = self.broker_msg_rates.iter().map(|(_, r)| r).sum();
            self.avg_broker_msg_rate = total / pool_size as f64;
        }
    }
}

impl Deployment {
    /// Instantiates every broker and overlay link of a topology.
    ///
    /// Fails with [`DeployError::UnknownBroker`] when an edge references
    /// a broker id absent from `spec.brokers`.
    pub fn build(spec: &TopologySpec) -> Result<Self, DeployError> {
        let mut net: Network<BrokerMsg> = Network::new();
        let mut brokers = BTreeMap::new();
        for cfg in &spec.brokers {
            let id = cfg.id;
            let node =
                net.add_node_with_capacity(Broker::new(cfg.clone()), Some(cfg.out_bandwidth));
            brokers.insert(id, node);
        }
        for &(a, b) in &spec.edges {
            let na = *brokers.get(&a).ok_or(DeployError::UnknownBroker(a))?;
            let nb = *brokers.get(&b).ok_or(DeployError::UnknownBroker(b))?;
            net.connect(na, nb, spec.link);
            if let Some(broker) = net.node_as_mut::<Broker>(na) {
                broker.add_broker_neighbor(nb);
            }
            if let Some(broker) = net.node_as_mut::<Broker>(nb) {
                broker.add_broker_neighbor(na);
            }
        }
        Ok(Self {
            net,
            brokers,
            publishers: BTreeMap::new(),
            subscribers: BTreeMap::new(),
            link: spec.link,
            croc: None,
            next_request: 0,
            telemetry: Registry::disabled(),
        })
    }

    /// Attaches telemetry: Phase-1 gathers are timed under the
    /// `phase1.gathering` span, measurement windows feed per-broker
    /// in/out gauges and `broker.b<id>.delivery_delay_us` histograms,
    /// and the underlying simulator reports its queue/drop instruments
    /// (see [`Network::set_telemetry`]).
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = registry.clone();
        self.net.set_telemetry(registry);
    }

    /// Attaches a publisher client to a broker.
    ///
    /// Fails with [`DeployError::UnknownBroker`] on an unknown broker id.
    pub fn attach_publisher(
        &mut self,
        client: ClientId,
        adv: AdvId,
        advertisement: Filter,
        period: SimDuration,
        broker: BrokerId,
        generate: PublicationGen,
    ) -> Result<NodeId, DeployError> {
        let broker_node = *self
            .brokers
            .get(&broker)
            .ok_or(DeployError::UnknownBroker(broker))?;
        let node = self.net.add_node(PublisherClient::new(
            client,
            adv,
            advertisement,
            period,
            broker_node,
            generate,
        ));
        self.net.connect(node, broker_node, self.link);
        self.publishers.insert(adv, node);
        Ok(node)
    }

    /// Attaches a subscriber client to a broker.
    ///
    /// Fails with [`DeployError::UnknownBroker`] on an unknown broker id.
    pub fn attach_subscriber(
        &mut self,
        client: ClientId,
        broker: BrokerId,
        subscriptions: Vec<Subscription>,
    ) -> Result<NodeId, DeployError> {
        let broker_node = *self
            .brokers
            .get(&broker)
            .ok_or(DeployError::UnknownBroker(broker))?;
        let node = self
            .net
            .add_node(SubscriberClient::new(client, broker_node, subscriptions));
        self.net.connect(node, broker_node, self.link);
        self.subscribers.insert(client, node);
        Ok(node)
    }

    /// Runs the deployment for a span of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        self.net.run_for(span);
    }

    /// Executes Phase 1: attaches CROC (once), floods a BIR and runs
    /// until the aggregated BIA arrives.
    ///
    /// # Errors
    /// [`GatherError::NoBrokers`] when the deployment is empty;
    /// [`GatherError::Timeout`] when the aggregated BIA does not arrive
    /// within `timeout`.
    pub fn gather(&mut self, timeout: SimDuration) -> Result<Vec<GatheredBroker>, GatherError> {
        let _span = Span::enter(&self.telemetry, "phase1.gathering");
        self.telemetry.counter("phase1.bir_rounds").inc();
        let croc = match self.croc {
            Some(c) => c,
            None => {
                let first = *self.brokers.values().next().ok_or(GatherError::NoBrokers)?;
                let node = self.net.add_node(CrocClient::new(first));
                self.net.connect(node, first, self.link);
                self.net.run_for(SimDuration::from_millis(1));
                self.croc = Some(node);
                node
            }
        };
        let request = self.next_request;
        self.next_request += 1;
        self.net.inject(croc, croc, BrokerMsg::Bir { request });
        let deadline_steps = 1 + timeout.as_micros() / 10_000;
        for _ in 0..deadline_steps {
            self.net.run_for(SimDuration::from_micros(10_000));
            if self
                .net
                .node_as::<CrocClient>(croc)
                .is_some_and(|c| c.result().is_some())
            {
                break;
            }
        }
        self.net
            .node_as_mut::<CrocClient>(croc)
            .and_then(CrocClient::take_result)
            .ok_or(GatherError::Timeout { waited: timeout })
    }

    /// Converts gathered BIAs into the Phase-2 input.
    pub fn allocation_input(infos: Vec<GatheredBroker>) -> AllocationInput {
        let mut input = AllocationInput::new();
        let mut publishers = PublisherTable::new();
        input.brokers.reserve(infos.len());
        for info in infos {
            input.brokers.push(info.spec);
            input.subscriptions.extend(info.subscriptions);
            for p in info.publishers {
                publishers.insert(p);
            }
        }
        input.publishers = publishers;
        input
    }

    /// Resets traffic counters and subscriber statistics, runs for
    /// `window`, and reports deployment-wide metrics.
    pub fn measure(&mut self, window: SimDuration) -> RunMetrics {
        let _span = Span::enter(&self.telemetry, "measure.window");
        self.net.reset_counters();
        let subscriber_nodes: Vec<NodeId> = self.subscribers.values().copied().collect();
        for &n in &subscriber_nodes {
            if let Some(s) = self.net.node_as_mut::<SubscriberClient>(n) {
                s.reset_stats();
            }
        }
        self.net.run_for(window);

        let mut metrics = RunMetrics {
            window,
            ..RunMetrics::default()
        };
        for (&id, &node) in &self.brokers {
            let c = self.net.counters(node);
            let rate = c.msg_rate(window);
            metrics.total_msgs += c.total_msgs();
            metrics.broker_msg_rates.push((id, rate));
        }
        if !metrics.broker_msg_rates.is_empty() {
            metrics.avg_active_broker_msg_rate =
                metrics.broker_msg_rates.iter().map(|(_, r)| r).sum::<f64>()
                    / metrics.broker_msg_rates.len() as f64;
            metrics.avg_broker_msg_rate = metrics.avg_active_broker_msg_rate;
        }
        let mut hops_sum = 0.0;
        let mut delay_sum = 0.0;
        for &n in &subscriber_nodes {
            if let Some(s) = self.net.node_as::<SubscriberClient>(n) {
                metrics.deliveries += s.deliveries();
                if let (Some(h), Some(d)) = (s.mean_hops(), s.mean_delay()) {
                    hops_sum += h * s.deliveries() as f64;
                    delay_sum += d.as_secs_f64() * s.deliveries() as f64;
                }
            }
        }
        if metrics.deliveries > 0 {
            metrics.mean_hops = hops_sum / metrics.deliveries as f64;
            metrics.mean_delay_s = delay_sum / metrics.deliveries as f64;
        }
        self.report_window(window, &subscriber_nodes);
        metrics
    }

    /// Mirrors one measurement window into the attached registry:
    /// per-broker in/out counts and message rate as gauges, and every
    /// subscriber delivery delay into its broker's
    /// `broker.b<id>.delivery_delay_us` histogram.
    fn report_window(&self, window: SimDuration, subscriber_nodes: &[NodeId]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for (&id, &node) in &self.brokers {
            let c = self.net.counters(node);
            let tag = format!("broker.b{}", id.raw());
            self.telemetry
                .gauge(&format!("{tag}.msgs_in"))
                .set(c.msgs_in);
            self.telemetry
                .gauge(&format!("{tag}.msgs_out"))
                .set(c.msgs_out);
            self.telemetry
                .gauge(&format!("{tag}.msg_rate"))
                .set_f64(c.msg_rate(window));
        }
        let broker_of: BTreeMap<NodeId, BrokerId> =
            self.brokers.iter().map(|(&b, &n)| (n, b)).collect();
        for &n in subscriber_nodes {
            let Some(s) = self.net.node_as::<SubscriberClient>(n) else {
                continue;
            };
            let Some(&b) = broker_of.get(&s.broker_node()) else {
                continue;
            };
            let hist = self
                .telemetry
                .histogram(&format!("broker.b{}.delivery_delay_us", b.raw()));
            for &d in s.delays() {
                hist.record(d.as_micros());
            }
        }
    }

    /// Number of brokers in the deployment.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }
}

/// Metrics of one measurement window.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Window length.
    pub window: SimDuration,
    /// Per-broker message rate (in+out msg/s).
    pub broker_msg_rates: Vec<(BrokerId, f64)>,
    /// Average broker message rate over the *pool* the scenario started
    /// with — deallocated brokers contribute zero. This is the paper's
    /// headline metric; the harness rescales it once the pool size is
    /// known (deployments only see allocated brokers).
    pub avg_broker_msg_rate: f64,
    /// Average message rate over the brokers actually deployed.
    pub avg_active_broker_msg_rate: f64,
    /// Total broker messages in the window.
    pub total_msgs: u64,
    /// Publications delivered to subscribers.
    pub deliveries: u64,
    /// Mean broker hop count per delivery.
    pub mean_hops: f64,
    /// Mean end-to-end delivery delay in seconds.
    pub mean_delay_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_core::model::LinearFn;
    use greenps_pubsub::filter::{stock_advertisement, stock_template};
    use greenps_pubsub::ids::{MsgId, SubId};
    use greenps_pubsub::message::Publication;

    fn spec(n: u64) -> TopologySpec {
        TopologySpec {
            brokers: (0..n)
                .map(|i| BrokerConfig::new(BrokerId::new(i), LinearFn::new(0.0001, 0.0), 1e9))
                .collect(),
            edges: (1..n)
                .map(|i| (BrokerId::new((i - 1) / 2), BrokerId::new(i)))
                .collect(),
            link: LinkSpec::with_latency(SimDuration::from_millis(1)),
        }
    }

    fn stock_gen() -> PublicationGen {
        Box::new(|adv, msg: MsgId| {
            Publication::builder(adv, msg)
                .attr("class", "STOCK")
                .attr("symbol", "YHOO")
                .attr("low", 18.0 + (msg.raw() % 5) as f64)
                .build()
        })
    }

    #[test]
    fn fan_out_two_tree_builds() {
        let d = Deployment::build(&spec(7)).expect("valid topology");
        assert_eq!(d.broker_count(), 7);
        assert_eq!(d.net.link_count(), 6);
    }

    #[test]
    fn bad_edge_and_attach_are_errors() {
        let mut bad = spec(3);
        bad.edges.push((BrokerId::new(0), BrokerId::new(9)));
        assert_eq!(
            Deployment::build(&bad).err(),
            Some(DeployError::UnknownBroker(BrokerId::new(9)))
        );
        let mut d = Deployment::build(&spec(3)).expect("valid topology");
        assert_eq!(
            d.attach_subscriber(ClientId::new(1), BrokerId::new(7), Vec::new()),
            Err(DeployError::UnknownBroker(BrokerId::new(7)))
        );
    }

    #[test]
    fn end_to_end_measurement() {
        let mut d = Deployment::build(&spec(7)).expect("valid topology");
        d.attach_publisher(
            ClientId::new(1),
            AdvId::new(1),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(100),
            BrokerId::new(3), // a leaf
            stock_gen(),
        )
        .expect("known broker");
        d.attach_subscriber(
            ClientId::new(2),
            BrokerId::new(6), // the far leaf
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        )
        .expect("known broker");
        d.run_for(SimDuration::from_secs(1)); // warm-up
        let m = d.measure(SimDuration::from_secs(10));
        assert!(m.deliveries >= 95, "deliveries {}", m.deliveries);
        // Path traverses brokers 3,1,0,2,6 — five broker hops.
        assert!((m.mean_hops - 5.0).abs() < 1e-9, "hops {}", m.mean_hops);
        assert!(m.avg_broker_msg_rate > 0.0);
        assert!(m.mean_delay_s > 0.004, "delay {}", m.mean_delay_s);
    }

    #[test]
    fn gather_returns_all_brokers() {
        let mut d = Deployment::build(&spec(7)).expect("valid topology");
        d.attach_publisher(
            ClientId::new(1),
            AdvId::new(1),
            stock_advertisement("YHOO"),
            SimDuration::from_millis(200),
            BrokerId::new(4),
            stock_gen(),
        )
        .expect("known broker");
        d.attach_subscriber(
            ClientId::new(2),
            BrokerId::new(5),
            vec![Subscription::new(SubId::new(1), stock_template("YHOO"))],
        )
        .expect("known broker");
        d.run_for(SimDuration::from_secs(2));
        let infos = d.gather(SimDuration::from_secs(5)).expect("gather");
        assert_eq!(infos.len(), 7);
        let input = Deployment::allocation_input(infos);
        assert_eq!(input.brokers.len(), 7);
        assert_eq!(input.subscriptions.len(), 1);
        assert_eq!(input.publishers.len(), 1);
        assert!(input.publishers.total_rate() > 3.0);
        // Gather again (new request id) still works.
        let infos2 = d.gather(SimDuration::from_secs(5)).expect("regather");
        assert_eq!(infos2.len(), 7);
    }
}
