//! The backend-agnostic transport contract.
//!
//! A [`Transport`] opens [`Endpoint`]s — one per overlay node — and an
//! endpoint exchanges typed messages with peers over *sessions*. The
//! contract is deliberately small: address a peer, connect, send a
//! framed message, poll for events, shut down. Everything above this
//! trait (broker logic, deployment, the workload runner) is agnostic to
//! whether messages cross the deterministic simnet or a real socket.
//!
//! ## Sessions and epochs
//!
//! Each `(node, epoch)` pair names one *session incarnation*. The
//! epoch increases every time a node's endpoint is reopened, and every
//! event a backend surfaces is fenced against the newest epoch seen
//! for that peer: events carrying an older epoch are dropped, so a
//! reconnecting broker can never observe a ghost of its previous
//! session (DESIGN.md §13.3). The simnet backend never reconnects, so
//! it pins every session at epoch 0.

use crate::wire::WireError;
use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

/// A node's stable name in the overlay, independent of backend.
///
/// Brokers use their `BrokerId` raw value; client endpoints use names
/// offset far above the broker range (see `greenps-broker`'s net
/// deployment).
pub type NodeName = u64;

/// Where a peer endpoint can be reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointAddr {
    /// A node inside a shared in-process simnet hub.
    Sim(NodeName),
    /// A TCP socket address (loopback in the transport-report harness).
    Tcp(SocketAddr),
}

impl fmt::Display for EndpointAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointAddr::Sim(n) => write!(f, "sim:{n}"),
            EndpointAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// An event surfaced by [`Endpoint::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent<M> {
    /// A session with `peer` became live (either side connected). The
    /// epoch identifies the incarnation; a later `Session` for the same
    /// peer with a larger epoch supersedes this one.
    Session {
        /// The peer's node name.
        peer: NodeName,
        /// The peer's session epoch.
        epoch: u32,
    },
    /// A message arrived from `from` on its current session.
    Msg {
        /// The sending peer's node name.
        from: NodeName,
        /// The decoded message.
        msg: M,
    },
    /// The current session with `peer` closed (EOF, error or shutdown).
    Closed {
        /// The peer whose session ended.
        peer: NodeName,
    },
}

/// Why a transport operation failed.
#[derive(Debug)]
pub enum NetError {
    /// The backend could not bind or open the endpoint.
    Open(String),
    /// Connecting to a peer address failed.
    Connect(String),
    /// No live session exists for the named peer.
    UnknownPeer(NodeName),
    /// A send on an established session failed; the session is closed.
    SessionLost(NodeName),
    /// Encoding or decoding a message failed.
    Codec(WireError),
    /// The address kind does not match this backend (e.g. a `Tcp`
    /// address handed to the sim backend).
    WrongAddrKind,
    /// The endpoint has been shut down.
    Shutdown,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Open(e) => write!(f, "endpoint open failed: {e}"),
            NetError::Connect(e) => write!(f, "connect failed: {e}"),
            NetError::UnknownPeer(p) => write!(f, "no session with peer {p}"),
            NetError::SessionLost(p) => write!(f, "session with peer {p} lost"),
            NetError::Codec(e) => write!(f, "wire codec failure: {e}"),
            NetError::WrongAddrKind => f.write_str("address kind does not match backend"),
            NetError::Shutdown => f.write_str("endpoint is shut down"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Codec(e)
    }
}

/// One node's attachment to the transport.
///
/// All methods take `&mut self`: an endpoint is owned by exactly one
/// driver (a broker thread or the cooperative deployment loop), which
/// keeps the send path lock-free on every backend.
pub trait Endpoint<M> {
    /// This endpoint's node name.
    fn node(&self) -> NodeName;

    /// The address peers can use to connect here.
    fn addr(&self) -> EndpointAddr;

    /// Dials a peer and establishes a session. Returns the peer's node
    /// name as announced in its handshake. Idempotent: connecting to an
    /// already-connected peer re-handshakes and the newer session wins.
    fn connect(&mut self, addr: &EndpointAddr) -> Result<NodeName, NetError>;

    /// Sends one message on the peer's current session.
    fn send(&mut self, peer: NodeName, msg: &M) -> Result<(), NetError>;

    /// Waits up to `wait` for the next event. Returns `None` when the
    /// wait elapses with nothing to deliver (or, on the sim backend,
    /// when the network is quiescent).
    fn poll(&mut self, wait: Duration) -> Option<NetEvent<M>>;

    /// Closes every session and releases backend resources. Further
    /// sends fail with [`NetError::Shutdown`].
    fn shutdown(&mut self);
}

/// A factory for endpoints sharing one backend substrate.
pub trait Transport<M> {
    /// The endpoint type this backend produces.
    type Endpoint: Endpoint<M>;

    /// Opens an endpoint for `node`. Reopening a name that was already
    /// opened produces a fresh session epoch that supersedes the old
    /// one at every peer.
    fn open(&mut self, node: NodeName) -> Result<Self::Endpoint, NetError>;
}
