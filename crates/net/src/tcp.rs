//! The threaded TCP backend: real sockets, framed messages,
//! epoch-fenced sessions.
//!
//! Each [`TcpEndpoint`] binds an ephemeral loopback listener and runs
//! one accept thread plus one reader thread per live connection. All
//! inbound activity funnels through a channel of raw events that
//! [`TcpEndpoint::poll`] integrates on the driver thread — the endpoint
//! itself is single-owner (`&mut self` everywhere), so the send path
//! holds no lock: it encodes into an owned scratch buffer and issues a
//! single `write_all` per frame.
//!
//! ## Epoch fencing
//!
//! [`TcpTransport::open`] stamps every endpoint incarnation of a node
//! name with a strictly increasing epoch, exchanged in the connection
//! hello. `poll` keeps, per peer, only the *newest* epoch it has seen:
//! a `Session` with a larger epoch supersedes the old connection, and
//! `Msg`/`Closed` events from an older epoch are silently fenced
//! (counted in `transport.stale_events_fenced`). A broker that
//! reconnects therefore never sees ghosts of its previous session.
//!
//! ## Cancellation
//!
//! The accept and reader loops poll a shared stop flag at least every
//! [`POLL_INTERVAL`]; the deployment layer wires the pipeline's
//! `CancelToken` to [`TcpEndpoint::stop_handle`] so a cancelled run
//! tears the socket threads down promptly.

use crate::frame::{self, FrameError, Hello};
use crate::transport::{Endpoint, EndpointAddr, NetError, NetEvent, NodeName, Transport};
use crate::wire::{decode_exact, Wire};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use greenps_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked socket loops wake to poll the stop flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Raw events produced by the accept/reader threads, integrated (and
/// epoch-fenced) on the driver thread inside `poll`.
enum RawEvent<M> {
    Session {
        peer: NodeName,
        epoch: u32,
        stream: TcpStream,
    },
    Msg {
        peer: NodeName,
        epoch: u32,
        msg: M,
    },
    Closed {
        peer: NodeName,
        epoch: u32,
    },
}

/// Telemetry handles shared with the socket threads.
#[derive(Clone)]
struct ReaderCounters {
    frames_received: Counter,
    bytes_received: Counter,
    decode_errors: Counter,
}

/// An established session's write half, owned by the endpoint.
struct Conn {
    stream: TcpStream,
    epoch: u32,
}

/// A `Read` adapter that converts read timeouts into stop-flag polls,
/// so framed reads block in bounded slices and observe cancellation.
struct PollRead<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for PollRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // `Read` is implemented for `&TcpStream`, so no clone is needed.
        let mut raw: &TcpStream = self.stream;
        loop {
            match raw.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.stop.load(Ordering::Relaxed) {
                        return Err(io::ErrorKind::ConnectionAborted.into());
                    }
                }
                other => return other,
            }
        }
    }
}

/// The TCP backend factory. Tracks one strictly increasing epoch per
/// node name so reopened endpoints supersede their predecessors.
pub struct TcpTransport {
    registry: Registry,
    epochs: HashMap<NodeName, u32>,
}

impl TcpTransport {
    /// A transport with telemetry disabled.
    pub fn new() -> Self {
        Self {
            registry: Registry::disabled(),
            epochs: HashMap::new(),
        }
    }

    /// A transport feeding `transport.*` instruments in `registry`.
    pub fn with_telemetry(registry: &Registry) -> Self {
        Self {
            registry: registry.clone(),
            epochs: HashMap::new(),
        }
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire + Send + 'static> Transport<M> for TcpTransport {
    type Endpoint = TcpEndpoint<M>;

    fn open(&mut self, node: NodeName) -> Result<TcpEndpoint<M>, NetError> {
        let epoch = self
            .epochs
            .entry(node)
            .and_modify(|e| *e = e.saturating_add(1))
            .or_insert(1);
        TcpEndpoint::bind(node, *epoch, &self.registry)
    }
}

/// One node's TCP attachment: a loopback listener, an accept thread,
/// per-connection reader threads, and an owned map of write halves.
pub struct TcpEndpoint<M> {
    node: NodeName,
    epoch: u32,
    local: SocketAddr,
    conns: HashMap<NodeName, Conn>,
    events_rx: Receiver<RawEvent<M>>,
    events_tx: Sender<RawEvent<M>>,
    stop: Arc<AtomicBool>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    reader_counters: ReaderCounters,
    frames_sent: Counter,
    bytes_sent: Counter,
    sessions_opened: Counter,
    sessions_closed: Counter,
    stale_fenced: Counter,
    scratch: Vec<u8>,
    down: bool,
}

impl<M: Wire + Send + 'static> TcpEndpoint<M> {
    fn bind(node: NodeName, epoch: u32, registry: &Registry) -> Result<Self, NetError> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| NetError::Open(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::Open(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Open(e.to_string()))?;
        let (events_tx, events_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let reader_counters = ReaderCounters {
            frames_received: registry.counter("transport.frames_received"),
            bytes_received: registry.counter("transport.bytes_received"),
            decode_errors: registry.counter("transport.decode_errors"),
        };
        let endpoint = Self {
            node,
            epoch,
            local,
            conns: HashMap::new(),
            events_rx,
            events_tx: events_tx.clone(),
            stop: Arc::clone(&stop),
            threads: Arc::clone(&threads),
            reader_counters: reader_counters.clone(),
            frames_sent: registry.counter("transport.frames_sent"),
            bytes_sent: registry.counter("transport.bytes_sent"),
            sessions_opened: registry.counter("transport.sessions_opened"),
            sessions_closed: registry.counter("transport.sessions_closed"),
            stale_fenced: registry.counter("transport.stale_events_fenced"),
            scratch: Vec::with_capacity(1024),
            down: false,
        };
        let accept_threads = Arc::clone(&threads);
        let accept_stop = Arc::clone(&stop);
        let my = Hello { node, epoch };
        let handle = std::thread::spawn(move || {
            accept_loop(
                listener,
                my,
                events_tx,
                accept_stop,
                accept_threads,
                reader_counters,
            );
        });
        threads.lock().push(handle);
        Ok(endpoint)
    }

    /// The stop flag socket loops poll; the deployment layer bridges a
    /// pipeline `CancelToken` onto this to make cancellation reach the
    /// accept/recv loops.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Integrates one raw event against the per-peer epoch fence.
    fn integrate(&mut self, raw: RawEvent<M>) -> Option<NetEvent<M>> {
        match raw {
            RawEvent::Session {
                peer,
                epoch,
                stream,
            } => {
                let newer = self.conns.get(&peer).is_none_or(|c| epoch > c.epoch);
                if !newer {
                    // A redundant or stale handshake: the existing
                    // session stands; the extra socket closes on drop.
                    self.stale_fenced.inc();
                    return None;
                }
                self.conns.insert(peer, Conn { stream, epoch });
                self.sessions_opened.inc();
                Some(NetEvent::Session { peer, epoch })
            }
            RawEvent::Msg { peer, epoch, msg } => {
                let live = self.conns.get(&peer).is_some_and(|c| c.epoch == epoch);
                if !live {
                    self.stale_fenced.inc();
                    return None;
                }
                Some(NetEvent::Msg { from: peer, msg })
            }
            RawEvent::Closed { peer, epoch } => {
                let live = self.conns.get(&peer).is_some_and(|c| c.epoch == epoch);
                if !live {
                    self.stale_fenced.inc();
                    return None;
                }
                self.conns.remove(&peer);
                self.sessions_closed.inc();
                Some(NetEvent::Closed { peer })
            }
        }
    }
}

impl<M: Wire + Send + 'static> Endpoint<M> for TcpEndpoint<M> {
    fn node(&self) -> NodeName {
        self.node
    }

    fn addr(&self) -> EndpointAddr {
        EndpointAddr::Tcp(self.local)
    }

    fn connect(&mut self, addr: &EndpointAddr) -> Result<NodeName, NetError> {
        if self.down {
            return Err(NetError::Shutdown);
        }
        let EndpointAddr::Tcp(sa) = addr else {
            return Err(NetError::WrongAddrKind);
        };
        let stream = TcpStream::connect(sa).map_err(|e| NetError::Connect(e.to_string()))?;
        let my = Hello {
            node: self.node,
            epoch: self.epoch,
        };
        let hello =
            handshake(&stream, my, &self.stop).map_err(|e| NetError::Connect(e.to_string()))?;
        let write_half = stream
            .try_clone()
            .map_err(|e| NetError::Connect(e.to_string()))?;
        let tx = self.events_tx.clone();
        let stop = Arc::clone(&self.stop);
        let counters = self.reader_counters.clone();
        let peer = hello.node;
        let peer_epoch = hello.epoch;
        let handle = std::thread::spawn(move || {
            reader_loop(stream, peer, peer_epoch, tx, stop, counters);
        });
        self.threads.lock().push(handle);
        // The dialed session is live immediately — the connect() return
        // is its Session notification; `poll` will fence the mirror
        // handshake the peer's accept side may race in.
        self.conns.insert(
            peer,
            Conn {
                stream: write_half,
                epoch: peer_epoch,
            },
        );
        self.sessions_opened.inc();
        Ok(peer)
    }

    fn send(&mut self, peer: NodeName, msg: &M) -> Result<(), NetError> {
        if self.down {
            return Err(NetError::Shutdown);
        }
        let Some(conn) = self.conns.get_mut(&peer) else {
            return Err(NetError::UnknownPeer(peer));
        };
        frame::begin_frame(&mut self.scratch);
        msg.encode(&mut self.scratch);
        match frame::write_frame(&mut conn.stream, &mut self.scratch) {
            Ok(()) => {
                self.frames_sent.inc();
                self.bytes_sent.add(self.scratch.len() as u64);
                Ok(())
            }
            Err(_) => {
                self.conns.remove(&peer);
                self.sessions_closed.inc();
                Err(NetError::SessionLost(peer))
            }
        }
    }

    fn poll(&mut self, wait: Duration) -> Option<NetEvent<M>> {
        if self.down {
            return None;
        }
        let deadline = Instant::now() + wait;
        loop {
            let raw = if wait.is_zero() {
                match self.events_rx.try_recv() {
                    Ok(raw) => raw,
                    Err(TryRecvError::Empty | TryRecvError::Disconnected) => return None,
                }
            } else {
                let left = deadline.saturating_duration_since(Instant::now());
                match self.events_rx.recv_timeout(left) {
                    Ok(raw) => raw,
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                        return None;
                    }
                }
            };
            if let Some(ev) = self.integrate(raw) {
                return Some(ev);
            }
            if !wait.is_zero() && Instant::now() >= deadline {
                return None;
            }
        }
    }

    fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.stop.store(true, Ordering::Relaxed);
        // Dropping the write halves closes the sockets, which unblocks
        // peers' readers with EOF.
        self.conns.clear();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<M> Drop for TcpEndpoint<M> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Threads spawned by this endpoint hold only channel senders and
        // socket clones; with the stop flag up they exit within one
        // POLL_INTERVAL, so dropping without an explicit shutdown() does
        // not leak spinning threads. Joining here would deadlock a
        // same-thread drop during panic unwinding, so we only signal.
    }
}

/// Performs the symmetric write-then-read hello exchange.
fn handshake(stream: &TcpStream, my: Hello, stop: &AtomicBool) -> Result<Hello, FrameError> {
    stream.set_nodelay(true).map_err(FrameError::Io)?;
    stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .map_err(FrameError::Io)?;
    let mut write_half = stream;
    frame::write_hello(&mut write_half, my)?;
    let mut reader = PollRead { stream, stop };
    frame::read_hello(&mut reader)
}

/// Accepts connections until the stop flag rises, spawning one reader
/// thread per handshaken peer.
fn accept_loop<M: Wire + Send + 'static>(
    listener: TcpListener,
    my: Hello,
    tx: Sender<RawEvent<M>>,
    stop: Arc<AtomicBool>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: ReaderCounters,
) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let stop = Arc::clone(&stop);
                let counters = counters.clone();
                let handle = std::thread::spawn(move || {
                    let hello = match handshake(&stream, my, &stop) {
                        Ok(h) => h,
                        Err(_) => return, // malformed dialer: drop it
                    };
                    let write_half = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    let peer = hello.node;
                    let epoch = hello.epoch;
                    let _ = tx.send(RawEvent::Session {
                        peer,
                        epoch,
                        stream: write_half,
                    });
                    reader_loop(stream, peer, epoch, tx, stop, counters);
                });
                threads.lock().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure; retry after a beat.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Reads frames off one connection until EOF, error or stop.
fn reader_loop<M: Wire + Send + 'static>(
    stream: TcpStream,
    peer: NodeName,
    epoch: u32,
    tx: Sender<RawEvent<M>>,
    stop: Arc<AtomicBool>,
    counters: ReaderCounters,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut reader = PollRead {
        stream: &stream,
        stop: &stop,
    };
    loop {
        match frame::read_frame(&mut reader, &mut buf) {
            Ok(true) => match decode_exact::<M>(&buf) {
                Ok(msg) => {
                    counters.frames_received.inc();
                    counters.bytes_received.add(buf.len() as u64);
                    if tx.send(RawEvent::Msg { peer, epoch, msg }).is_err() {
                        return; // endpoint dropped
                    }
                }
                Err(_) => {
                    // A peer speaking garbage is indistinguishable from
                    // corruption: close the session.
                    counters.decode_errors.inc();
                    let _ = tx.send(RawEvent::Closed { peer, epoch });
                    return;
                }
            },
            Ok(false) | Err(_) => {
                let _ = tx.send(RawEvent::Closed { peer, epoch });
                return;
            }
        }
    }
}
