//! # greenps-net
//!
//! The transport seam between the broker overlay and whatever carries
//! its bytes (DESIGN.md §13). One small contract — [`Transport`] opens
//! [`Endpoint`]s; endpoints connect, send framed messages and poll
//! [`NetEvent`]s — with two backends:
//!
//! - [`SimTransport`]: a veneer over the deterministic
//!   `greenps-simnet` discrete-event loop, cooperative and
//!   single-threaded, for tests and reproducible experiments;
//! - [`TcpTransport`]: a std-only threaded backend over `std::net`
//!   loopback sockets with length-prefixed frames, a hand-rolled
//!   byte-stable [`Wire`] codec, and epoch-fenced sessions so a
//!   reconnecting node never observes ghosts of its previous session.
//!
//! ## Example
//!
//! ```
//! use greenps_net::{decode_exact, Endpoint, NetEvent, SimTransport, Transport, Wire, WireReader};
//! use greenps_simnet::Payload;
//! use std::time::Duration;
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Tick(u64);
//! impl Payload for Tick {
//!     fn wire_size(&self) -> usize { 8 }
//! }
//!
//! let mut transport: SimTransport<Tick> = SimTransport::new();
//! let mut a = transport.open(1).unwrap();
//! let mut b = transport.open(2).unwrap();
//! a.connect(&b.addr()).unwrap();
//! a.send(2, &Tick(41)).unwrap();
//! match b.poll(Duration::ZERO) {
//!     Some(NetEvent::Msg { from, msg }) => assert_eq!((from, msg), (1, Tick(41))),
//!     other => panic!("expected a message, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod frame;
pub mod sim;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use frame::{FrameError, Hello, MAX_FRAME_LEN};
pub use sim::{SimEndpoint, SimTransport};
pub use tcp::{TcpEndpoint, TcpTransport};
pub use transport::{Endpoint, EndpointAddr, NetError, NetEvent, NodeName, Transport};
pub use wire::{decode_exact, Wire, WireError, WireReader};
