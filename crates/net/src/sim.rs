//! The deterministic simnet backend.
//!
//! [`SimTransport`] clones share one in-process hub: a
//! `greenps_simnet::Network` plus the name⇄node maps. Every endpoint
//! adds a mailbox process to the network; `send` injects the message
//! into the simulated event queue and `poll` advances virtual time
//! (`Network::step`) until something lands in this endpoint's mailbox
//! or the network is quiescent.
//!
//! The backend is strictly cooperative and single-threaded (`Rc`
//! sharing, no `Send`), mirroring how the rest of the repo drives the
//! simulator. Sessions never reconnect here, so every session is
//! pinned at epoch 0 and the epoch fence is trivially satisfied — the
//! bit-identical discrete-event semantics the existing tests rely on
//! are untouched because the hub is just a thin veneer over
//! `Network::inject`/`Network::step`.

use crate::transport::{Endpoint, EndpointAddr, NetError, NetEvent, NodeName, Transport};
use greenps_simnet::{Context, Network, NodeId, Payload, Process};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::time::Duration;

/// The hub shared by every endpoint of one simulated deployment.
struct SimShared<M> {
    net: Network<M>,
    by_name: HashMap<NodeName, NodeId>,
    by_id: HashMap<usize, NodeName>,
}

/// A mailbox process: parks every delivery for its endpoint to drain.
struct Mailbox<M> {
    inbox: Rc<RefCell<VecDeque<(NodeId, M)>>>,
}

impl<M: Payload + 'static> Process<M> for Mailbox<M> {
    fn on_message(&mut self, _ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        self.inbox.borrow_mut().push_back((from, msg));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The simnet transport factory. Clones share the same hub, so a test
/// can open several endpoints against one simulated network.
pub struct SimTransport<M> {
    shared: Rc<RefCell<SimShared<M>>>,
}

impl<M> Clone for SimTransport<M> {
    fn clone(&self) -> Self {
        Self {
            shared: Rc::clone(&self.shared),
        }
    }
}

impl<M: Payload + 'static> Default for SimTransport<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Payload + 'static> SimTransport<M> {
    /// An empty hub at virtual time zero.
    pub fn new() -> Self {
        Self {
            shared: Rc::new(RefCell::new(SimShared {
                net: Network::new(),
                by_name: HashMap::new(),
                by_id: HashMap::new(),
            })),
        }
    }
}

impl<M: Payload + Clone + 'static> Transport<M> for SimTransport<M> {
    type Endpoint = SimEndpoint<M>;

    fn open(&mut self, node: NodeName) -> Result<SimEndpoint<M>, NetError> {
        let mut shared = self.shared.borrow_mut();
        if shared.by_name.contains_key(&node) {
            return Err(NetError::Open(format!("sim node {node} already open")));
        }
        let inbox: Rc<RefCell<VecDeque<(NodeId, M)>>> = Rc::new(RefCell::new(VecDeque::new()));
        let id = shared.net.add_node(Mailbox {
            inbox: Rc::clone(&inbox),
        });
        shared.by_name.insert(node, id);
        shared.by_id.insert(id.0, node);
        drop(shared);
        Ok(SimEndpoint {
            shared: Rc::clone(&self.shared),
            name: node,
            id,
            inbox,
            pending: VecDeque::new(),
            down: false,
        })
    }
}

/// One node's attachment to the shared simulated network.
pub struct SimEndpoint<M> {
    shared: Rc<RefCell<SimShared<M>>>,
    name: NodeName,
    id: NodeId,
    inbox: Rc<RefCell<VecDeque<(NodeId, M)>>>,
    pending: VecDeque<NetEvent<M>>,
    down: bool,
}

impl<M: Payload + Clone + 'static> Endpoint<M> for SimEndpoint<M> {
    fn node(&self) -> NodeName {
        self.name
    }

    fn addr(&self) -> EndpointAddr {
        EndpointAddr::Sim(self.name)
    }

    fn connect(&mut self, addr: &EndpointAddr) -> Result<NodeName, NetError> {
        if self.down {
            return Err(NetError::Shutdown);
        }
        let EndpointAddr::Sim(name) = addr else {
            return Err(NetError::WrongAddrKind);
        };
        if !self.shared.borrow().by_name.contains_key(name) {
            return Err(NetError::Connect(format!("no sim node named {name}")));
        }
        // Only the dialing side observes the Session event on this
        // backend; deployments connect each edge from both ends.
        self.pending.push_back(NetEvent::Session {
            peer: *name,
            epoch: 0,
        });
        Ok(*name)
    }

    fn send(&mut self, peer: NodeName, msg: &M) -> Result<(), NetError> {
        if self.down {
            return Err(NetError::Shutdown);
        }
        let mut shared = self.shared.borrow_mut();
        let Some(&to) = shared.by_name.get(&peer) else {
            return Err(NetError::UnknownPeer(peer));
        };
        let from = self.id;
        shared.net.inject(from, to, msg.clone());
        Ok(())
    }

    fn poll(&mut self, _wait: Duration) -> Option<NetEvent<M>> {
        if self.down {
            return None;
        }
        if let Some(ev) = self.pending.pop_front() {
            return Some(ev);
        }
        loop {
            let popped = self.inbox.borrow_mut().pop_front();
            if let Some((from, msg)) = popped {
                let name = self.shared.borrow().by_id.get(&from.0).copied();
                match name {
                    Some(n) => return Some(NetEvent::Msg { from: n, msg }),
                    // Sender withdrew between delivery and drain; the
                    // message has no live session to belong to.
                    None => continue,
                }
            }
            // Virtual time only advances while someone polls: step the
            // discrete-event loop until this mailbox fills or the whole
            // network is idle.
            let stepped = self.shared.borrow_mut().net.step();
            if !stepped {
                return None;
            }
        }
    }

    fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        let mut shared = self.shared.borrow_mut();
        shared.net.kill_node(self.id);
        shared.by_name.remove(&self.name);
        shared.by_id.remove(&self.id.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Note(u64);
    impl Payload for Note {
        fn wire_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn sim_endpoints_exchange_messages() {
        let mut t: SimTransport<Note> = SimTransport::new();
        let mut a = t.open(1).unwrap();
        let mut b = t.open(2).unwrap();
        assert_eq!(a.connect(&b.addr()).unwrap(), 2);
        assert!(matches!(
            a.poll(Duration::ZERO),
            Some(NetEvent::Session { peer: 2, epoch: 0 })
        ));
        a.send(2, &Note(7)).unwrap();
        b.send(1, &Note(9)).unwrap();
        assert_eq!(
            b.poll(Duration::ZERO),
            Some(NetEvent::Msg {
                from: 1,
                msg: Note(7)
            })
        );
        assert_eq!(
            a.poll(Duration::ZERO),
            Some(NetEvent::Msg {
                from: 2,
                msg: Note(9)
            })
        );
        assert_eq!(a.poll(Duration::ZERO), None);
    }

    #[test]
    fn duplicate_names_and_unknown_peers_are_errors() {
        let mut t: SimTransport<Note> = SimTransport::new();
        let mut a = t.open(1).unwrap();
        assert!(matches!(t.open(1), Err(NetError::Open(_))));
        assert!(matches!(a.send(9, &Note(0)), Err(NetError::UnknownPeer(9))));
        assert!(matches!(
            a.connect(&EndpointAddr::Sim(9)),
            Err(NetError::Connect(_))
        ));
    }

    #[test]
    fn shutdown_fences_the_node() {
        let mut t: SimTransport<Note> = SimTransport::new();
        let mut a = t.open(1).unwrap();
        let mut b = t.open(2).unwrap();
        b.shutdown();
        assert!(matches!(a.send(2, &Note(1)), Err(NetError::UnknownPeer(2))));
        assert_eq!(b.poll(Duration::ZERO), None);
        assert!(matches!(b.send(1, &Note(1)), Err(NetError::Shutdown)));
    }
}
