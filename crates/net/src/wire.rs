//! Byte-stable wire codec primitives.
//!
//! [`Wire`] is the serialization contract of the transport layer: a
//! hand-rolled, little-endian, length-prefixed encoding with no
//! external dependencies. Every encoder writes into a caller-supplied
//! buffer (so steady-state send paths can reuse one scratch
//! allocation), and every decoder reads through a bounds-checked
//! [`WireReader`] — malformed input surfaces as a typed [`WireError`],
//! never a panic.
//!
//! The encoding is *byte-stable*: `decode(encode(x))` re-encodes to the
//! identical byte string. Floats are carried as raw IEEE-754 bits
//! (`f64::to_bits`), so even NaN payloads round-trip exactly; the wire
//! round-trip proptests in `greenps-broker` pin this property for the
//! full broker message vocabulary.

use std::fmt;

/// Decoding failure: the input does not parse as the expected shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A length prefix exceeded the remaining input or a sanity bound.
    BadLength(u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field value violated a domain invariant (e.g. a zero
    /// bit-vector capacity).
    BadValue,
    /// Decoding finished with unconsumed bytes left in the buffer.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("wire input truncated"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::BadLength(n) => write!(f, "implausible wire length {n}"),
            WireError::BadUtf8 => f.write_str("wire string is not UTF-8"),
            WireError::BadValue => f.write_str("wire value violates a domain invariant"),
            WireError::TrailingBytes => f.write_str("trailing bytes after wire value"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked cursor over an input buffer.
///
/// All reads advance the cursor; a read past the end returns
/// [`WireError::Truncated`] and leaves the cursor unchanged.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a buffer for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(WireError::Truncated)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b: [u8; 4] = self.take(4)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b: [u8; 8] = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        let b: [u8; 8] = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(i64::from_le_bytes(b))
    }

    /// Reads an `f64` carried as raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` encoded as a `0`/`1` byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a `u32`-length-prefixed collection count, validated
    /// against the bytes actually remaining (each element needs at
    /// least one byte, so a count beyond `remaining` is corrupt).
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()?;
        let n_usize = usize::try_from(n).map_err(|_| WireError::BadLength(u64::from(n)))?;
        if n_usize > self.remaining() {
            return Err(WireError::BadLength(u64::from(n)));
        }
        Ok(n_usize)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string slice.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as raw IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `bool` as a `0`/`1` byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a collection count as a `u32` prefix. Counts above
/// `u32::MAX` saturate — the greenps message vocabulary never comes
/// within orders of magnitude of that bound.
pub fn put_seq_len(out: &mut Vec<u8>, n: usize) {
    put_u32(out, u32::try_from(n).unwrap_or(u32::MAX));
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_seq_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// A value with a byte-stable wire encoding.
///
/// `encode` appends to a caller-owned buffer so hot send paths can
/// reuse one scratch `Vec` across messages; `decode` must consume
/// exactly the bytes `encode` produced.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value from the cursor.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Decodes a complete buffer, requiring every byte to be consumed.
pub fn decode_exact<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 40_000);
        put_u64(&mut buf, u64::MAX - 3);
        put_i64(&mut buf, -12);
        put_f64(&mut buf, f64::NAN);
        put_bool(&mut buf, true);
        put_str(&mut buf, "YHOO");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 40_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -12);
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "YHOO");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        assert_eq!(r.remaining(), 2, "failed read consumes nothing");
    }

    #[test]
    fn implausible_sequence_lengths_are_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000);
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.seq_len(), Err(WireError::BadLength(_))));
    }

    #[test]
    fn bad_bool_byte_is_a_tag_error() {
        let mut r = WireReader::new(&[9]);
        assert_eq!(r.bool(), Err(WireError::BadTag(9)));
    }

    #[test]
    fn nan_bits_are_preserved_exactly() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut buf = Vec::new();
        put_f64(&mut buf, weird);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }
}
