//! Length-prefixed framing and the connection handshake.
//!
//! Every TCP connection starts with a fixed 17-byte hello in each
//! direction:
//!
//! ```text
//! [ magic "GPN1" | 4 bytes ][ node name | u64 LE ][ epoch | u32 LE ][ flags | u8 ]
//! ```
//!
//! after which the stream carries data frames:
//!
//! ```text
//! [ payload length | u32 LE ][ payload bytes ]
//! ```
//!
//! The `(node, epoch)` pair in the hello is what makes sessions
//! *epoch-aware*: a node that restarts reopens its endpoint with a
//! larger epoch, and receivers fence out every event still in flight
//! from the older session (DESIGN.md §13.3). Frames larger than
//! [`MAX_FRAME_LEN`] are rejected before any buffer grows, so a
//! corrupt or hostile length prefix cannot balloon memory.

use std::io::{self, Read, Write};

/// Protocol magic: "GPN1" — greenps net, wire format 1.
pub const MAGIC: [u8; 4] = *b"GPN1";

/// Hard ceiling on one frame's payload. The largest legitimate frame
/// is a full-overlay BIA aggregate, far below this bound.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Size of the fixed hello exchanged on connect, in bytes.
pub const HELLO_LEN: usize = 17;

/// Why a handshake or frame read failed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer's hello did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad hello magic {m:?}"),
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds cap"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// The identity a peer announces in its hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The peer's node name (broker id or client endpoint name).
    pub node: u64,
    /// The peer's session epoch; larger supersedes smaller.
    pub epoch: u32,
}

/// Writes the fixed-size hello.
pub fn write_hello(w: &mut impl Write, hello: Hello) -> Result<(), FrameError> {
    let mut buf = Vec::with_capacity(HELLO_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&hello.node.to_le_bytes());
    buf.extend_from_slice(&hello.epoch.to_le_bytes());
    buf.push(0); // flags byte, zero in wire format 1
    w.write_all(&buf)?;
    Ok(())
}

/// Reads and validates the peer's hello.
pub fn read_hello(r: &mut impl Read) -> Result<Hello, FrameError> {
    let mut buf = [0u8; HELLO_LEN];
    r.read_exact(&mut buf)?;
    let mut wr = crate::wire::WireReader::new(&buf);
    // `buf` is exactly HELLO_LEN bytes, so these reads cannot fail; the
    // mapping keeps the decode panic-free all the same.
    let short = || FrameError::Io(io::ErrorKind::InvalidData.into());
    let magic_bytes = wr.take(4).map_err(|_| short())?;
    if magic_bytes != MAGIC {
        let mut magic = [0u8; 4];
        for (slot, b) in magic.iter_mut().zip(magic_bytes) {
            *slot = *b;
        }
        return Err(FrameError::BadMagic(magic));
    }
    let node = wr.u64().map_err(|_| short())?;
    let epoch = wr.u32().map_err(|_| short())?;
    Ok(Hello { node, epoch })
}

/// Writes one `[u32 length][payload]` frame from an already-encoded
/// scratch buffer. The scratch buffer must start with four reserved
/// bytes (see [`begin_frame`]) which this call patches with the
/// payload length — the whole frame then goes out in a single
/// `write_all`, and the steady-state send path performs no allocation.
pub fn write_frame(w: &mut impl Write, scratch: &mut [u8]) -> Result<(), FrameError> {
    let payload = scratch.len().saturating_sub(4);
    if payload > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(
            u32::try_from(payload).unwrap_or(u32::MAX),
        ));
    }
    let len = u32::try_from(payload).unwrap_or(u32::MAX);
    if let Some(prefix) = scratch.get_mut(..4) {
        prefix.copy_from_slice(&len.to_le_bytes());
    }
    w.write_all(scratch)?;
    Ok(())
}

/// Resets a scratch buffer for frame encoding: clears it and reserves
/// the four length-prefix bytes that [`write_frame`] patches.
pub fn begin_frame(scratch: &mut Vec<u8>) {
    scratch.clear();
    scratch.extend_from_slice(&[0, 0, 0, 0]);
}

/// Reads one frame payload into `buf` (cleared and resized in place).
/// Returns `Ok(false)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, FrameError> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_bytes)? {
        return Ok(false);
    }
    let len = u32::from_le_bytes(len_bytes);
    let n = usize::try_from(len).unwrap_or(usize::MAX);
    if n > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    buf.clear();
    buf.resize(n, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Like `read_exact`, but a clean EOF before the first byte returns
/// `Ok(false)` instead of an error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        let slot = buf.get_mut(filled..).unwrap_or(&mut []);
        match r.read(slot) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into())),
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let mut buf = Vec::new();
        let h = Hello { node: 42, epoch: 7 };
        write_hello(&mut buf, h).unwrap();
        assert_eq!(buf.len(), HELLO_LEN);
        let got = read_hello(&mut buf.as_slice()).unwrap();
        assert_eq!(got, h);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_hello(&mut buf, Hello { node: 1, epoch: 1 }).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_hello(&mut buf.as_slice()),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for payload in [&b"hello"[..], b"", b"greenps"] {
            begin_frame(&mut scratch);
            scratch.extend_from_slice(payload);
            write_frame(&mut wire, &mut scratch).unwrap();
        }
        let mut r = wire.as_slice();
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"greenps");
        assert!(!read_frame(&mut r, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let wire = u32::MAX.to_le_bytes();
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), &mut buf),
            Err(FrameError::Oversized(_))
        ));
        assert!(buf.is_empty());
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        begin_frame(&mut scratch);
        scratch.extend_from_slice(b"abcdef");
        write_frame(&mut wire, &mut scratch).unwrap();
        wire.truncate(wire.len() - 2);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), &mut buf),
            Err(FrameError::Io(_))
        ));
    }
}
