//! Token-level lexer shared by every lint (DESIGN.md §9).
//!
//! The PR-1 engine scanned regex-masked lines, which cannot tell a
//! `HashMap` mentioned in a doc string from one iterated in code. This
//! lexer produces a real token stream — identifiers, punctuation,
//! string/char literals, lifetimes, numbers and (doc) comments — with
//! byte-accurate spans, handling the constructs that defeat line
//! regexes:
//!
//! - raw strings `r"…"` / `r#"…"#` (any hash depth) and byte strings
//!   `b"…"` / `br#"…"#`;
//! - raw identifiers `r#type` (NOT strings);
//! - nested block comments `/* /* */ */` and doc comments;
//! - `'a` lifetimes vs `'a'` char literals (including escapes and
//!   multi-byte chars like `'é'`).
//!
//! Lints pattern-match over [`code`] tokens (comments stripped), so a
//! `".unwrap()"` inside a string or comment can never fire, and
//! adjacency checks (`v[` vs `v [`) use the spans.

use std::fmt;

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (leading quote included).
    Lifetime,
    /// Char literal `'x'`, `'\n'`, `b'x'`.
    Char,
    /// String literal `"…"` or byte string `b"…"`.
    Str,
    /// Raw string literal `r"…"`, `r#"…"#`, `br#"…"#`.
    RawStr,
    /// Numeric literal (integer or float, any base).
    Num,
    /// `// …` comment (doc comments `///`/`//!` included).
    LineComment,
    /// `/* … */` comment, nesting handled (doc `/** … */` included).
    BlockComment,
    /// A single punctuation byte (`.`, `{`, `!`, …).
    Punct,
}

/// One token with its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// The token's text (`src[start..end]`).
    pub text: &'a str,
}

impl Token<'_> {
    /// True for `///`, `//!`, `/**` and `/*!` comments.
    pub fn is_doc(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
            && (self.text.starts_with("///")
                || self.text.starts_with("//!")
                || self.text.starts_with("/**")
                || self.text.starts_with("/*!"))
    }

    /// True for any comment token.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True when this is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// The literal body of a `Str` token (quotes stripped, escapes NOT
    /// processed) or of a `RawStr` token (prefix/hashes/quotes
    /// stripped). `None` for other kinds.
    pub fn str_body(&self) -> Option<&str> {
        match self.kind {
            TokenKind::Str => {
                let t = self.text.strip_prefix('b').unwrap_or(self.text);
                t.strip_prefix('"')?.strip_suffix('"')
            }
            TokenKind::RawStr => {
                let t = self.text.strip_prefix('b').unwrap_or(self.text);
                let t = t.strip_prefix('r')?;
                let hashes = t.bytes().take_while(|&b| b == b'#').count();
                let t = &t[hashes..];
                let t = t.strip_prefix('"')?;
                let t = t.strip_suffix(&"#".repeat(hashes)).unwrap_or(t);
                t.strip_suffix('"')
            }
            _ => None,
        }
    }
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}({})", self.kind, self.text)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a full token stream (comments included, whitespace
/// dropped). Never fails: unterminated literals extend to EOF and any
/// byte the grammar does not recognize becomes a [`TokenKind::Punct`].
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let (kind, end) = match b {
            b if b.is_ascii_whitespace() => {
                i += 1;
                continue;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
                (TokenKind::LineComment, end)
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                (TokenKind::BlockComment, block_comment_end(bytes, i))
            }
            b'r' | b'b' => match string_prefix(bytes, i) {
                Some((kind, end)) => (kind, end),
                None => (TokenKind::Ident, ident_end(bytes, i)),
            },
            b'"' => (TokenKind::Str, string_end(bytes, i + 1)),
            b'\'' => quote_token(src, bytes, i),
            b if is_ident_start(b) => (TokenKind::Ident, ident_end(bytes, i)),
            b if b.is_ascii_digit() => (TokenKind::Num, number_end(bytes, i)),
            _ => {
                // One punctuation byte — or one UTF-8 char, so we never
                // split a multi-byte sequence.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                (TokenKind::Punct, i + ch_len)
            }
        };
        out.push(Token {
            kind,
            start,
            end,
            text: &src[start..end],
        });
        i = end;
    }
    out
}

/// The non-comment tokens of a stream (the view lints scan).
pub fn code<'a, 'b>(tokens: &'b [Token<'a>]) -> Vec<&'b Token<'a>> {
    tokens.iter().filter(|t| !t.is_comment()).collect()
}

fn ident_end(bytes: &[u8], i: usize) -> usize {
    // Raw identifier `r#type`: exactly one hash then an ident start.
    let mut j = i;
    if bytes[i] == b'r'
        && bytes.get(i + 1) == Some(&b'#')
        && bytes.get(i + 2).copied().is_some_and(is_ident_start)
    {
        j = i + 2;
    }
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    j.max(i + 1)
}

fn number_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < bytes.len() {
        if is_ident_byte(bytes[j]) {
            j += 1;
        } else if bytes[j] == b'.'
            && bytes
                .get(j + 1)
                .copied()
                .is_some_and(|b| b.is_ascii_digit())
            && j > i
        {
            // `1.5` continues the number; `1..n` and `1.max()` do not.
            j += 1;
        } else {
            break;
        }
    }
    j
}

fn block_comment_end(bytes: &[u8], i: usize) -> usize {
    let mut depth = 1usize;
    let mut j = i + 2;
    while j < bytes.len() && depth > 0 {
        if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
            depth += 1;
            j += 2;
        } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
            depth -= 1;
            j += 2;
        } else {
            j += 1;
        }
    }
    j
}

/// Recognizes `r"…"`, `r#…#"…"#…#`, `b"…"`, `br#"…"#` and `b'…'`
/// starting at `i`; `None` when the `r`/`b` begins a plain identifier.
fn string_prefix(bytes: &[u8], i: usize) -> Option<(TokenKind, usize)> {
    let (raw, mut j) = match bytes[i] {
        b'b' if bytes.get(i + 1) == Some(&b'r') => (true, i + 2),
        b'b' if bytes.get(i + 1) == Some(&b'"') => {
            return Some((TokenKind::Str, string_end(bytes, i + 2)));
        }
        b'b' if bytes.get(i + 1) == Some(&b'\'') => {
            let end = char_end(bytes, i + 1)?;
            return Some((TokenKind::Char, end));
        }
        b'r' => (true, i + 1),
        _ => return None,
    };
    if !raw {
        return None;
    }
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None; // raw identifier or plain ident starting with r/b
    }
    Some((TokenKind::RawStr, raw_string_end(bytes, j + 1, hashes)))
}

fn raw_string_end(bytes: &[u8], mut j: usize, hashes: usize) -> usize {
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    bytes.len()
}

fn string_end(bytes: &[u8], mut j: usize) -> usize {
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Char literal ending at the closing quote, starting from the opening
/// quote at `i`. `None` when the quote does not open a char literal.
fn char_end(bytes: &[u8], i: usize) -> Option<usize> {
    let j = i + 1;
    match bytes.get(j)? {
        b'\\' => {
            let mut k = j + 2;
            while k < bytes.len() && bytes[k] != b'\'' {
                k += 1;
            }
            Some((k + 1).min(bytes.len()))
        }
        _ => {
            // One char (possibly multi-byte) then a closing quote.
            let ch_len = core::str::from_utf8(&bytes[j..])
                .ok()
                .and_then(|s| s.chars().next())
                .map_or(1, char::len_utf8);
            (bytes.get(j + ch_len) == Some(&b'\'')).then_some(j + ch_len + 1)
        }
    }
}

/// Disambiguates `'` at `i`: char literal, lifetime, or stray quote.
fn quote_token(src: &str, bytes: &[u8], i: usize) -> (TokenKind, usize) {
    if let Some(end) = char_end(bytes, i) {
        // `'a'` parses as a char only when the closer is really there;
        // `'a` followed by anything else is a lifetime.
        let next = bytes.get(i + 1).copied();
        let is_ident_char = next.is_some_and(is_ident_byte);
        if !is_ident_char || bytes.get(end - 1) == Some(&b'\'') {
            return (TokenKind::Char, end);
        }
    }
    let next = bytes.get(i + 1).copied();
    if next.is_some_and(is_ident_start) {
        return (TokenKind::Lifetime, ident_end(bytes, i + 1));
    }
    let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
    (TokenKind::Punct, i + ch_len)
}

/// Replaces comments and string/char-literal bodies with spaces,
/// newlines preserved: the masked text has the same byte length and
/// line structure as the input. Built on [`tokenize`], so raw strings,
/// nested comments and lifetimes are handled exactly.
pub fn mask(src: &str) -> String {
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    for t in tokenize(src) {
        let blank = matches!(
            t.kind,
            TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::Char
                | TokenKind::LineComment
                | TokenKind::BlockComment
        );
        if blank {
            for b in &mut out[t.start..t.end] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte ranges of `#[cfg(test)]` item bodies, computed on the token
/// stream: from the attribute's `#` to the matching close brace of the
/// item that follows it.
pub fn test_regions(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let code: Vec<&Token<'_>> = code(tokens);
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let attr = code[i].is_punct('#')
            && code[i + 1].is_punct('[')
            && code[i + 2].is_ident("cfg")
            && code[i + 3].is_punct('(')
            && code[i + 4].is_ident("test")
            && code[i + 5].is_punct(')')
            && code[i + 6].is_punct(']');
        if !attr {
            i += 1;
            continue;
        }
        // Find the item's opening brace, then match it.
        let mut j = i + 7;
        while j < code.len() && !code[j].is_punct('{') {
            j += 1;
        }
        if j == code.len() {
            break;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < code.len() {
            if code[k].is_punct('{') {
                depth += 1;
            } else if code[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let end = if k < code.len() {
            code[k].end
        } else {
            code[code.len() - 1].end
        };
        regions.push((code[i].start, end));
        // Continue after the region.
        while i < code.len() && code[i].start < end {
            i += 1;
        }
    }
    regions
}

/// True when `offset` falls inside any of `regions`.
pub fn in_regions(offset: usize, regions: &[(usize, usize)]) -> bool {
    regions.iter().any(|&(s, e)| offset >= s && offset < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"let s = r#"a "quote" [0] .unwrap()"#; let t = r"plain";"####;
        let toks = kinds(src);
        let raws: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::RawStr)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(raws.len(), 2, "{toks:?}");
        assert!(raws[0].contains("unwrap"));
        // No unwrap/index tokens leaked out of the literal.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && *t == "["));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let c = b'\n'; let d = br#"raw"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("b\"")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t.starts_with("b'")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.starts_with("br#")));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("fn r#type(r#fn: u8) {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#type"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#fn"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still outer */ x.expect(\"m\")";
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert!(toks[0].text.ends_with("*/"));
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["x", "expect"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; let u = 'é'; let s: &'static str = x; }";
        let toks = kinds(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'", "'é'"]);
    }

    #[test]
    fn string_embedded_lint_text_stays_inside_literals() {
        // The regex engine's classic false-positive class: panicky text
        // and collection names inside plain strings.
        let src = r#"let msg = "call .unwrap() on a HashMap[0] then panic!";"#;
        let toks = tokenize(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["let", "msg"]);
    }

    #[test]
    fn doc_comments_detected() {
        let src = "/// outer doc\n//! inner doc\n/** block doc */\n// plain\nfn f() {}";
        let toks = tokenize(src);
        let docs: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_comment())
            .map(Token::is_doc)
            .collect();
        assert_eq!(docs, vec![true, true, true, false]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("let a = 1.5e3; let r = 0..10; let m = 1.max(2); let h = 0xFF_u32;");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(nums, vec!["1.5e3", "0", "10", "1", "2", "0xFF_u32"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "max"));
    }

    #[test]
    fn str_body_strips_delimiters() {
        let toks = tokenize(r###"let a = "plain"; let b = r#"raw"#; let c = b"bytes";"###);
        let bodies: Vec<&str> = toks.iter().filter_map(Token::str_body).collect();
        assert_eq!(bodies, vec!["plain", "raw", "bytes"]);
    }

    #[test]
    fn mask_preserves_length_and_newlines() {
        let src = "let a = \"unwrap()\"; // .unwrap()\nlet b = x.unwrap();";
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches(".unwrap").count(), 1);
        assert!(m.contains("let b = x.unwrap();"));
    }

    #[test]
    fn test_regions_cover_cfg_test_items() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn tail() {}";
        let toks = tokenize(src);
        let regions = test_regions(&toks);
        assert_eq!(regions.len(), 1);
        let lib_pos = src.find("x.unwrap").expect("lib code");
        let test_pos = src.find("y.unwrap").expect("test code");
        let tail_pos = src.find("fn tail").expect("tail");
        assert!(!in_regions(lib_pos, &regions));
        assert!(in_regions(test_pos, &regions));
        assert!(!in_regions(tail_pos, &regions));
    }

    #[test]
    fn unterminated_literals_reach_eof_without_panicking() {
        for src in ["let s = \"open", "let s = r#\"open", "/* open", "let c = '"] {
            let toks = tokenize(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
        }
    }
}
