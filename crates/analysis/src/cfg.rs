//! Intraprocedural control-flow graphs and forward dataflow
//! (DESIGN.md §9.3).
//!
//! Built from the same code-token stream the item [`crate::parser`]
//! consumes, [`Cfg::build`] recovers basic blocks for one function
//! body: `loop`/`while`/`for` loops (with back edges and recorded
//! [`LoopInfo`] spans), `if`/`else if`/`else` chains, `match` arms,
//! labeled `break`/`continue`, and the early-exit edges of `return`
//! and the `?` operator. It is a token-level over-approximation, not a
//! full parser: unknown constructs degrade to straight-line code, and
//! statements after a jump stay attributed to the jumping block, so
//! every real execution path is covered by some CFG path (extra paths
//! are possible, missing paths are not). That bias is deliberate —
//! the lints built on top ([`crate::cancel_responsive`],
//! [`crate::guard_scope`]) are *may*-analyses where a spurious path
//! costs precision, never soundness.
//!
//! [`forward_fixpoint`] runs a caller-supplied transfer/join over the
//! blocks to a fixpoint with a worklist, with a hard iteration bound
//! so pathological inputs terminate even under a non-monotone (buggy)
//! transfer function.

use crate::lexer::{Token, TokenKind};
use crate::line_of;

/// What kind of loop a [`LoopInfo`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }`.
    Loop,
    /// `while cond { … }` (including `while let`).
    While,
    /// `for pat in iter { … }`.
    For,
}

/// One loop discovered while building the CFG.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop flavor.
    pub kind: LoopKind,
    /// Block index of the loop head (condition re-evaluation point).
    pub head: usize,
    /// Byte offset of the loop keyword in the source file.
    pub start: usize,
    /// Byte span of the loop body braces in the source file.
    pub body: (usize, usize),
    /// 1-based line of the loop keyword.
    pub line: usize,
}

/// One basic block: straight-line token ranges plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Token-index ranges (into the caller's code-token slice) this
    /// block covers, in flow order. A join block may cover none.
    pub ranges: Vec<(usize, usize)>,
    /// Successor block indices, de-duplicated, in insertion order.
    pub succs: Vec<usize>,
}

/// Control-flow graph of one function body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks; index 0 is the entry, [`Cfg::exit`] the exit.
    pub blocks: Vec<Block>,
    /// Index of the synthetic exit block (no tokens, no successors).
    pub exit: usize,
    /// Loops in source order (outer before inner).
    pub loops: Vec<LoopInfo>,
}

/// Loop context while building: where `break`/`continue` jump.
struct LoopCtx {
    label: Option<String>,
    break_to: usize,
    continue_to: usize,
}

struct Builder<'a, 'b> {
    toks: &'b [&'b Token<'a>],
    src: &'a str,
    blocks: Vec<Block>,
    loops: Vec<LoopInfo>,
    exit: usize,
}

impl Cfg {
    /// Builds the CFG for the body braces at byte span `body` (as
    /// recorded by [`crate::parser::FnItem::body`]). `toks` must be
    /// the *code* token slice of the whole file (comments stripped,
    /// see [`crate::lexer::code`]); block ranges index into it.
    pub fn build(toks: &[&Token<'_>], body: (usize, usize), src: &str) -> Cfg {
        let lo = toks.partition_point(|t| t.start <= body.0);
        let hi = toks.partition_point(|t| t.end < body.1);
        let mut b = Builder {
            toks,
            src,
            blocks: vec![Block::default(), Block::default()],
            loops: Vec::new(),
            exit: 1,
        };
        let mut stack = Vec::new();
        let last = b.seq(lo, hi, 0, &mut stack);
        b.edge(last, 1);
        Cfg {
            blocks: b.blocks,
            exit: 1,
            loops: b.loops,
        }
    }

    /// All token indices of block `block`, flattened in flow order.
    pub fn block_tokens(&self, block: usize) -> impl Iterator<Item = usize> + '_ {
        self.blocks[block]
            .ranges
            .iter()
            .flat_map(|&(lo, hi)| lo..hi)
    }
}

impl<'a> Builder<'a, '_> {
    fn at(&self, i: usize) -> Option<&Token<'a>> {
        self.toks.get(i).copied()
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_ident(kw))
    }

    fn is_p(&self, i: usize, c: char) -> bool {
        self.at(i).is_some_and(|t| t.is_punct(c))
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        let succs = &mut self.blocks[from].succs;
        if !succs.contains(&to) {
            succs.push(to);
        }
    }

    fn push_range(&mut self, block: usize, lo: usize, hi: usize) {
        if lo < hi {
            self.blocks[block].ranges.push((lo, hi));
        }
    }

    /// Index just past the `(`/`[`/`{` group opened at `open`.
    fn skip_group(&self, open: usize) -> usize {
        let (o, c) = match self.at(open) {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut j = open;
        while let Some(t) = self.at(j) {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// First `{` at paren/bracket depth 0 in `[from, hi)` — the body
    /// opener of an `if`/`while`/`for`/`match` header (Rust forbids
    /// bare struct literals in that position, so the first such brace
    /// is the body).
    fn find_block_open(&self, from: usize, hi: usize) -> Option<usize> {
        let mut j = from;
        while j < hi {
            let t = self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                j = self.skip_group(j);
                continue;
            }
            if t.is_punct('{') {
                return Some(j);
            }
            j += 1;
        }
        None
    }

    /// Builds blocks for tokens `[lo, hi)` starting in block `cur`;
    /// returns the block live at the end of the range.
    fn seq(&mut self, lo: usize, hi: usize, mut cur: usize, stack: &mut Vec<LoopCtx>) -> usize {
        let mut run = lo;
        let mut j = lo;
        let mut label: Option<String> = None;
        while j < hi {
            let t = self.toks[j];
            // A loop label: `'outer: loop { … }`.
            if t.kind == TokenKind::Lifetime && self.is_p(j + 1, ':') {
                label = Some(t.text.to_string());
                j += 2;
                continue;
            }
            // Nested `fn` items are separate CFGs; skip them whole.
            if t.is_ident("fn")
                && self.at(j + 1).is_some_and(|n| n.kind == TokenKind::Ident)
                && !(j > 0 && self.toks[j - 1].is_punct('.'))
            {
                self.push_range(cur, run, j);
                let mut k = j + 2;
                while k < hi && !self.is_p(k, '{') && !self.is_p(k, ';') {
                    k = if self.is_p(k, '(') || self.is_p(k, '[') {
                        self.skip_group(k)
                    } else {
                        k + 1
                    };
                }
                j = if self.is_p(k, '{') {
                    self.skip_group(k)
                } else {
                    k + 1
                };
                run = j;
                continue;
            }
            if t.is_ident("loop") && self.is_p(j + 1, '{') {
                self.push_range(cur, run, j);
                let body_end = self.skip_group(j + 1);
                let head = self.new_block();
                let after = self.new_block();
                self.edge(cur, head);
                self.loops.push(LoopInfo {
                    kind: LoopKind::Loop,
                    head,
                    start: t.start,
                    body: (self.toks[j + 1].start, self.toks[body_end - 1].end),
                    line: line_of(self.src, t.start),
                });
                stack.push(LoopCtx {
                    label: label.take(),
                    break_to: after,
                    continue_to: head,
                });
                let end = self.seq(j + 2, body_end - 1, head, stack);
                stack.pop();
                self.edge(end, head);
                cur = after;
                j = body_end;
                run = j;
                continue;
            }
            if t.is_ident("while") || t.is_ident("for") {
                let Some(open) = self.find_block_open(j + 1, hi) else {
                    j += 1;
                    continue;
                };
                self.push_range(cur, run, j);
                let body_end = self.skip_group(open);
                let head = self.new_block();
                // The condition / iterator expression re-evaluates at
                // the head on every iteration.
                self.push_range(head, j, open);
                self.edge(cur, head);
                let body = self.new_block();
                let after = self.new_block();
                self.edge(head, body);
                self.edge(head, after);
                self.loops.push(LoopInfo {
                    kind: if t.is_ident("while") {
                        LoopKind::While
                    } else {
                        LoopKind::For
                    },
                    head,
                    start: t.start,
                    body: (self.toks[open].start, self.toks[body_end - 1].end),
                    line: line_of(self.src, t.start),
                });
                stack.push(LoopCtx {
                    label: label.take(),
                    break_to: after,
                    continue_to: head,
                });
                let end = self.seq(open + 1, body_end - 1, body, stack);
                stack.pop();
                self.edge(end, head);
                cur = after;
                j = body_end;
                run = j;
                continue;
            }
            if t.is_ident("if") {
                if self.find_block_open(j + 1, hi).is_none() {
                    j += 1;
                    continue;
                }
                self.push_range(cur, run, j);
                let join = self.new_block();
                j = self.if_chain(j, hi, cur, join, stack);
                cur = join;
                run = j;
                continue;
            }
            if t.is_ident("match") {
                let Some(open) = self.find_block_open(j + 1, hi) else {
                    j += 1;
                    continue;
                };
                self.push_range(cur, run, j);
                // Scrutinee evaluates once, in the current block.
                self.push_range(cur, j, open);
                let mend = self.skip_group(open);
                let join = self.new_block();
                let mut any = false;
                let mut a = open + 1;
                while a + 1 < mend {
                    // Pattern (and guard) up to the `=>`.
                    let pat = a;
                    while a + 1 < mend
                        && !(self.is_p(a, '=')
                            && self.is_p(a + 1, '>')
                            && self.toks[a].end == self.toks[a + 1].start)
                    {
                        a = if self.is_p(a, '(') || self.is_p(a, '[') || self.is_p(a, '{') {
                            self.skip_group(a)
                        } else {
                            a + 1
                        };
                    }
                    if a + 1 >= mend {
                        break;
                    }
                    self.push_range(cur, pat, a);
                    let arm = self.new_block();
                    self.edge(cur, arm);
                    any = true;
                    a += 2;
                    let (alo, ahi, next) = if self.is_p(a, '{') {
                        let e = self.skip_group(a);
                        (a + 1, e - 1, if self.is_p(e, ',') { e + 1 } else { e })
                    } else {
                        let s = a;
                        let mut b = a;
                        while b + 1 < mend && !self.is_p(b, ',') {
                            b = if self.is_p(b, '(') || self.is_p(b, '[') || self.is_p(b, '{') {
                                self.skip_group(b)
                            } else {
                                b + 1
                            };
                        }
                        (s, b, if self.is_p(b, ',') { b + 1 } else { b })
                    };
                    let end = self.seq(alo, ahi, arm, stack);
                    self.edge(end, join);
                    a = next;
                }
                if !any {
                    self.edge(cur, join);
                }
                cur = join;
                j = mend;
                run = j;
                continue;
            }
            if t.is_ident("return") {
                self.edge(cur, self.exit);
                j += 1;
                continue;
            }
            if t.is_ident("break") || t.is_ident("continue") {
                let want = self
                    .at(j + 1)
                    .filter(|n| n.kind == TokenKind::Lifetime)
                    .map(|n| n.text.to_string());
                let target = stack
                    .iter()
                    .rev()
                    .find(|c| want.is_none() || c.label == want)
                    .map(|c| {
                        if t.is_ident("break") {
                            c.break_to
                        } else {
                            c.continue_to
                        }
                    });
                if let Some(target) = target {
                    self.edge(cur, target);
                }
                j += 1;
                continue;
            }
            // `?` adds an early-return edge without ending the block.
            if t.is_punct('?') {
                self.edge(cur, self.exit);
                j += 1;
                continue;
            }
            // A bare brace group is a nested scope (or a struct
            // literal, which is harmless to recurse into): flow
            // continues through it in the current block.
            if t.is_punct('{') {
                self.push_range(cur, run, j);
                let end = self.skip_group(j);
                cur = self.seq(j + 1, end - 1, cur, stack);
                j = end;
                run = j;
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                // Groups may contain control flow via closures; walk
                // through them in the current block.
                self.push_range(cur, run, j + 1);
                let end = self.skip_group(j);
                cur = self.seq(j + 1, end - 1, cur, stack);
                self.push_range(cur, end - 1, end);
                j = end;
                run = j;
                continue;
            }
            j += 1;
        }
        self.push_range(cur, run, hi);
        cur
    }

    /// Builds an `if`/`else if`/`else` chain whose `if` keyword is at
    /// `j`, joining every branch at `join`; returns the next token.
    fn if_chain(
        &mut self,
        j: usize,
        hi: usize,
        cur: usize,
        join: usize,
        stack: &mut Vec<LoopCtx>,
    ) -> usize {
        let Some(open) = self.find_block_open(j + 1, hi) else {
            self.edge(cur, join);
            return j + 1;
        };
        // Condition tokens evaluate in the current block.
        self.push_range(cur, j, open);
        let body_end = self.skip_group(open);
        let then = self.new_block();
        self.edge(cur, then);
        let end = self.seq(open + 1, body_end - 1, then, stack);
        self.edge(end, join);
        let k = body_end;
        if self.is_kw(k, "else") {
            if self.is_kw(k + 1, "if") {
                return self.if_chain(k + 1, hi, cur, join, stack);
            }
            if self.is_p(k + 1, '{') {
                let else_end = self.skip_group(k + 1);
                let els = self.new_block();
                self.edge(cur, els);
                let end = self.seq(k + 2, else_end - 1, els, stack);
                self.edge(end, join);
                return else_end;
            }
        }
        // No else: condition may fall through.
        self.edge(cur, join);
        k
    }
}

/// A forward dataflow problem over a [`Cfg`].
///
/// Facts must form a join-semilattice under [`Forward::join`] and the
/// transfer function should be monotone; [`forward_fixpoint`] bounds
/// iteration regardless, so a buggy instance degrades to a truncated
/// (still over-approximate for may-analyses seeded at top) result
/// instead of hanging.
pub trait Forward {
    /// The per-block fact.
    type Fact: Clone + PartialEq;
    /// Fact at the function entry.
    fn entry(&self) -> Self::Fact;
    /// Least upper bound of two facts at a join point.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;
    /// Applies block `block`'s effect to the incoming fact.
    fn transfer(&self, cfg: &Cfg, block: usize, input: &Self::Fact) -> Self::Fact;
}

/// Runs `analysis` to a fixpoint over `cfg` with a worklist. Returns
/// `(in, out)` facts per block; `None` marks unreachable blocks.
/// Iteration is capped at `64 * (blocks + 1)` block visits.
pub fn forward_fixpoint<A: Forward>(cfg: &Cfg, analysis: &A) -> Vec<Option<(A::Fact, A::Fact)>> {
    let n = cfg.blocks.len();
    let mut ins: Vec<Option<A::Fact>> = vec![None; n];
    let mut outs: Vec<Option<A::Fact>> = vec![None; n];
    ins[0] = Some(analysis.entry());
    let mut work: Vec<usize> = vec![0];
    let mut budget = 64usize.saturating_mul(n + 1);
    while let Some(b) = work.pop() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(input) = ins[b].clone() else {
            continue;
        };
        let out = analysis.transfer(cfg, b, &input);
        if outs[b].as_ref() == Some(&out) {
            continue;
        }
        outs[b] = Some(out.clone());
        for &s in &cfg.blocks[b].succs {
            let joined = match &ins[s] {
                Some(prev) => analysis.join(prev, &out),
                None => out.clone(),
            };
            if ins[s].as_ref() != Some(&joined) {
                ins[s] = Some(joined);
                if !work.contains(&s) {
                    work.push(s);
                }
            }
        }
    }
    ins.into_iter()
        .zip(outs)
        .map(|(i, o)| match (i, o) {
            (Some(i), Some(o)) => Some((i, o)),
            (Some(i), None) => {
                let o = i.clone();
                Some((i, o))
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser::parse_file;
    use crate::SourceFile;

    /// Builds the CFG of the named function in `src`.
    fn cfg_of(src: &str, name: &str) -> Cfg {
        let file = SourceFile::new("crates/core/src/x.rs", src);
        let parsed = parse_file(&file);
        let item = parsed
            .fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("missing fn {name}"));
        let toks = lexer::tokenize(&file.content);
        let code = lexer::code(&toks);
        Cfg::build(&code, item.body.expect("body"), &file.content)
    }

    /// True when `to` is reachable from block 0.
    fn reachable(cfg: &Cfg, to: usize) -> bool {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            for &s in &cfg.blocks[b].succs {
                stack.push(s);
            }
        }
        seen[to]
    }

    #[test]
    fn straight_line_has_entry_to_exit() {
        let cfg = cfg_of("fn f() { helper(); other(); }", "f");
        assert!(cfg.loops.is_empty());
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit]);
        assert!(!cfg.blocks[0].ranges.is_empty());
    }

    #[test]
    fn while_loop_has_back_edge_and_info() {
        let cfg = cfg_of(
            "fn f(n: u32) {\n  let mut i = 0;\n  while i < n { i += 1; }\n}",
            "f",
        );
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.kind, LoopKind::While);
        assert_eq!(l.line, 3);
        // Head branches into body and after; some block loops back.
        assert_eq!(cfg.blocks[l.head].succs.len(), 2);
        assert!(cfg
            .blocks
            .iter()
            .any(|b| b.succs.contains(&l.head) && !b.ranges.is_empty()));
        assert!(reachable(&cfg, cfg.exit));
    }

    #[test]
    fn loop_kinds_and_nesting_are_recorded() {
        let cfg = cfg_of(
            "fn f(xs: &[u32]) { loop { for x in xs { while *x > 0 { work(x); } } } }",
            "f",
        );
        let kinds: Vec<LoopKind> = cfg.loops.iter().map(|l| l.kind).collect();
        assert_eq!(kinds, vec![LoopKind::Loop, LoopKind::For, LoopKind::While]);
        // Inner bodies nest inside outer body spans.
        assert!(cfg.loops[0].body.0 < cfg.loops[1].body.0);
        assert!(cfg.loops[1].body.1 <= cfg.loops[0].body.1);
    }

    #[test]
    fn plain_loop_without_break_leaves_exit_unreachable() {
        let cfg = cfg_of("fn f() { loop { tick(); } }", "f");
        assert!(!reachable(&cfg, cfg.exit));
    }

    #[test]
    fn break_makes_loop_exit_reachable() {
        let cfg = cfg_of(
            "fn f() { loop { if done() { break; } tick(); } after(); }",
            "f",
        );
        assert!(reachable(&cfg, cfg.exit));
    }

    #[test]
    fn labeled_break_targets_the_outer_loop() {
        let cfg = cfg_of(
            "fn f() { 'outer: loop { loop { break 'outer; } } after(); }",
            "f",
        );
        // The inner loop's `after` is unreachable; the outer's is.
        assert!(reachable(&cfg, cfg.exit));
        // Exactly one block jumps to the outer loop's after-block.
        let outer_head = cfg.loops[0].head;
        assert!(reachable(&cfg, outer_head));
    }

    #[test]
    fn question_mark_and_return_edge_to_exit() {
        let cfg = cfg_of(
            "fn f() -> Result<(), E> { let x = step()?; if x == 0 { return Ok(()); } go(); Ok(()) }",
            "f",
        );
        // Entry block carries the `?` edge to exit.
        assert!(cfg.blocks[0].succs.contains(&cfg.exit));
    }

    #[test]
    fn match_arms_branch_and_rejoin() {
        let cfg = cfg_of(
            "fn f(x: u32) -> u32 { let y = match x { 0 => zero(), 1 => { one() } _ => rest(x), }; y }",
            "f",
        );
        // Three arm blocks hang off the entry block.
        assert!(cfg.blocks[0].succs.len() >= 3, "{:?}", cfg.blocks[0].succs);
        assert!(reachable(&cfg, cfg.exit));
    }

    #[test]
    fn closure_bodies_stay_in_flow() {
        let cfg = cfg_of(
            "fn f(xs: &[u32]) { xs.iter().for_each(|x| { handle(x); }); done(); }",
            "f",
        );
        // The closure's call tokens appear in some reachable block.
        let toks_of = |cfg: &Cfg| -> usize {
            cfg.blocks
                .iter()
                .map(|b| b.ranges.iter().map(|(l, h)| h - l).sum::<usize>())
                .sum()
        };
        assert!(toks_of(&cfg) > 0);
        assert!(reachable(&cfg, cfg.exit));
    }

    #[test]
    fn nested_fns_are_excluded_from_the_outer_cfg() {
        let cfg = cfg_of("fn f() { fn inner() { loop { spin(); } } tick(); }", "f");
        assert!(cfg.loops.is_empty());
        assert!(reachable(&cfg, cfg.exit));
    }

    /// Gen/kill reaching analysis over ident sets, used to exercise
    /// the fixpoint engine.
    struct SeenCalls<'a> {
        code: &'a [&'a Token<'a>],
    }

    impl Forward for SeenCalls<'_> {
        type Fact = std::collections::BTreeSet<String>;
        fn entry(&self) -> Self::Fact {
            Default::default()
        }
        fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
            a.union(b).cloned().collect()
        }
        fn transfer(&self, cfg: &Cfg, block: usize, input: &Self::Fact) -> Self::Fact {
            let mut out = input.clone();
            for i in cfg.block_tokens(block) {
                let t = self.code[i];
                if t.kind == TokenKind::Ident
                    && self.code.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    out.insert(t.text.to_string());
                }
            }
            out
        }
    }

    fn seen_at_exit(src: &str, name: &str) -> std::collections::BTreeSet<String> {
        let file = SourceFile::new("crates/core/src/x.rs", src);
        let parsed = parse_file(&file);
        let item = parsed.fns.iter().find(|f| f.name == name).expect("fn");
        let toks = lexer::tokenize(&file.content);
        let code = lexer::code(&toks);
        let cfg = Cfg::build(&code, item.body.expect("body"), &file.content);
        let facts = forward_fixpoint(&cfg, &SeenCalls { code: &code });
        facts[cfg.exit].clone().map(|(i, _)| i).unwrap_or_default()
    }

    #[test]
    fn fixpoint_propagates_through_branches_and_loops() {
        let got = seen_at_exit(
            "fn f(c: bool) { if c { a(); } else { b(); } while c { l(); } t(); }",
            "f",
        );
        for name in ["a", "b", "l", "t"] {
            assert!(got.contains(name), "missing {name} in {got:?}");
        }
    }

    #[test]
    fn fixpoint_terminates_on_pathological_nesting() {
        // 12 nested loops with branches and labeled breaks: the
        // worklist must converge well inside the iteration budget.
        let mut body = String::from("step0();");
        for d in 1..=12 {
            body = format!(
                "'l{d}: loop {{ if c{d}() {{ break 'l{d}; }} while p{d}() {{ {body} }} continue; }}"
            );
        }
        let src = format!("fn f() {{ {body} done(); }}");
        let got = seen_at_exit(&src, "f");
        assert!(got.contains("done"));
        // Every branch-condition call is observed somewhere on a path.
        assert!(got.contains("c1") && got.contains("c12"), "{got:?}");
    }

    #[test]
    fn fixpoint_terminates_on_wide_match_ladders() {
        let arms: String = (0..40)
            .map(|i| format!("{i} => h{i}(),"))
            .collect::<Vec<_>>()
            .join(" ");
        let src =
            format!("fn f(x: u32) {{ loop {{ match x {{ {arms} _ => {{ break; }} }} }} end(); }}");
        let got = seen_at_exit(&src, "f");
        assert!(got.contains("end"));
        assert!(got.contains("h0") && got.contains("h39"));
    }
}
