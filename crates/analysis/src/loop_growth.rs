//! Pass 6: unreserved growth inside subscription-scale loops
//! (DESIGN.md §9.3).
//!
//! The ROADMAP's bounded-memory claims (1M-subscription zoned
//! allocation) depend on collections sized up front: a `Vec::push`
//! per subscription into a vector that escapes the loop reallocates
//! O(log n) times and peaks at ~2× the final footprint. This pass
//! finds loops whose header or body mentions subscription/zone-scale
//! identifiers (the same `sub`/`zone`/`unit`/`gif`/`wave`/`partner`
//! fragments as the cancellation lint), and flags `.push(…)` /
//! `.insert(…)` calls on receivers bound *outside* the loop when the
//! function never calls `with_capacity`/`reserve`/`reserve_exact` for
//! that receiver.
//!
//! Scope is deliberately narrow: receivers rebound inside the loop
//! body are fresh per iteration and bounded by other means; `insert`
//! only counts when the receiver's type head is a known std
//! collection (set/map inserts on domain types are not growth).
//! Findings are tracked through the `growth.findings` ratchet counter
//! rather than hard-enforced, mirroring `panic-reach`.

use std::collections::BTreeMap;

use crate::cfg::Cfg;
use crate::lexer::{self, Token, TokenKind};
use crate::lock_order::receiver_chain;
use crate::parser::{self, FnItem};
use crate::{line_of, Finding, SourceFile};

/// Crates whose library code is checked (the runtime data path).
pub const CHECKED_CRATES: [&str; 7] = [
    "pubsub", "profile", "core", "broker", "simnet", "net", "workload",
];

/// Identifier fragments marking a loop as subscription/zone-scale.
const SCALE_KEYWORDS: &[&str] = &["sub", "zone", "unit", "gif", "wave", "partner"];

/// Growth methods; `insert` additionally requires a known collection.
const GROW: [&str; 2] = ["push", "insert"];

/// Type heads `insert` is trusted to mean growth on.
const COLLECTIONS: [&str; 6] = [
    "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Capacity-establishing calls that silence the lint for a receiver.
const RESERVES: [&str; 3] = ["with_capacity", "reserve", "reserve_exact"];

/// What the function body tells us about one local binding.
#[derive(Debug, Default, Clone)]
struct BindInfo {
    /// Byte offset of the (last) `let` rebinding.
    decl: usize,
    /// Last path segment of the bound type, when inferable.
    type_head: Option<String>,
}

/// Runs the pass over the workspace sources.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let Some(krate) = file.crate_name() else {
            continue;
        };
        if !CHECKED_CRATES.contains(&krate) || !file.is_library_code() {
            continue;
        }
        let parsed = parser::parse_file(file);
        let toks = lexer::tokenize(&file.content);
        let code = lexer::code(&toks);
        for item in &parsed.fns {
            if item.is_test {
                continue;
            }
            check_fn(file, item, &code, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();
    findings
}

fn check_fn(file: &SourceFile, item: &FnItem, code: &[&Token<'_>], out: &mut Vec<Finding>) {
    let Some(body) = item.body else { return };
    let cfg = Cfg::build(code, body, &file.content);
    if cfg.loops.is_empty() {
        return;
    }
    let lo = code.partition_point(|t| t.start < body.0);
    let hi = code.partition_point(|t| t.start < body.1);
    let body_code = &code[lo..hi];

    let binds = bindings(body_code);
    let reserved = reserved_names(body_code, &binds);

    for l in &cfg.loops {
        if !mentions_scale(body_code, l.start, l.body.1) {
            continue;
        }
        for (k, t) in body_code.iter().enumerate() {
            if t.start < l.body.0 || t.start >= l.body.1 || !t.is_punct('.') {
                continue;
            }
            let Some(m) = body_code.get(k + 1) else {
                continue;
            };
            if m.kind != TokenKind::Ident
                || !GROW.contains(&m.text)
                || !body_code.get(k + 2).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            let Some(chain) = receiver_chain(body_code, k) else {
                continue;
            };
            let name = chain.split('.').next().unwrap_or(&chain).to_string();
            let bind = binds.get(&name);
            // Fresh-per-iteration receivers are bounded elsewhere.
            if bind.is_some_and(|b| b.decl >= l.body.0 && b.decl < l.body.1) {
                continue;
            }
            let head = bind.and_then(|b| b.type_head.as_deref());
            if m.text == "insert" && !head.is_some_and(|h| COLLECTIONS.contains(&h)) {
                continue;
            }
            if reserved.contains(&name) {
                continue;
            }
            out.push(Finding {
                lint: "loop-growth",
                path: file.path.clone(),
                line: line_of(&file.content, t.start),
                message: format!(
                    "`{}.{}` grows an escaping collection inside a subscription-scale \
                     loop (line {}) without `with_capacity`/`reserve` — size it up front",
                    chain, m.text, l.line
                ),
            });
        }
    }
}

/// True when any identifier in `[start, end)` contains a scale fragment.
fn mentions_scale(body_code: &[&Token<'_>], start: usize, end: usize) -> bool {
    body_code
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.start >= start && t.end <= end)
        .any(|t| {
            let lower = t.text.to_ascii_lowercase();
            SCALE_KEYWORDS.iter().any(|k| lower.contains(k))
        })
}

/// Collects `let` bindings with their declaration offsets and (where
/// inferable) type heads: `let v: Vec<_> = …`, `let v = Vec::new()`.
fn bindings(body_code: &[&Token<'_>]) -> BTreeMap<String, BindInfo> {
    let mut out: BTreeMap<String, BindInfo> = BTreeMap::new();
    let mut i = 0;
    while i < body_code.len() {
        if !body_code[i].is_ident("let") {
            i += 1;
            continue;
        }
        let decl = body_code[i].start;
        let mut j = i + 1;
        if body_code.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = body_code.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        let mut info = BindInfo {
            decl,
            type_head: None,
        };
        match body_code.get(j + 1) {
            // `let name: Path<…> = …` — last path segment is the head.
            Some(c)
                if c.is_punct(':') && !body_code.get(j + 2).is_some_and(|n| n.is_punct(':')) =>
            {
                let mut k = j + 2;
                while k < body_code.len() {
                    match body_code[k].kind {
                        TokenKind::Ident => info.type_head = Some(body_code[k].text.to_string()),
                        TokenKind::Punct if body_code[k].is_punct(':') => {}
                        _ => break,
                    }
                    k += 1;
                }
            }
            // `let name = Head::new()` / `Head::with_capacity(…)` /
            // `Head::default()`.
            Some(eq) if eq.is_punct('=') => {
                let mut k = j + 2;
                let mut head = None;
                while k + 2 < body_code.len()
                    && body_code[k].kind == TokenKind::Ident
                    && body_code[k + 1].is_punct(':')
                    && body_code[k + 2].is_punct(':')
                {
                    head = Some(body_code[k].text);
                    k += 3;
                }
                if head.is_some() && body_code.get(k).is_some_and(|t| t.kind == TokenKind::Ident) {
                    info.type_head = head.map(str::to_string);
                }
            }
            _ => {}
        }
        out.insert(name_tok.text.to_string(), info);
        i = j + 1;
    }
    out
}

/// Names with a capacity-establishing call anywhere in the function:
/// `name.reserve(…)`, `let name = Vec::with_capacity(…)`.
fn reserved_names(
    body_code: &[&Token<'_>],
    binds: &BTreeMap<String, BindInfo>,
) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for (k, t) in body_code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !RESERVES.contains(&t.text) {
            continue;
        }
        // `recv.reserve(…)` — credit the receiver.
        if body_code
            .get(k.wrapping_sub(1))
            .is_some_and(|d| d.is_punct('.'))
        {
            if let Some(chain) = receiver_chain(body_code, k - 1) {
                out.insert(chain.split('.').next().unwrap_or(&chain).to_string());
            }
            continue;
        }
        // `let name = … Head::with_capacity(…)` — credit the binding
        // whose `let` most closely precedes the call.
        let best = binds
            .iter()
            .filter(|(_, b)| b.decl <= t.start)
            .max_by_key(|(_, b)| b.decl);
        if let Some((name, _)) = best {
            out.insert(name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(src: &str) -> Vec<Finding> {
        run(&[SourceFile::new("crates/core/src/g.rs", src)])
    }

    #[test]
    fn unreserved_push_in_scale_loop_is_flagged() {
        let got = pass(
            "pub fn gather(subs: &[u64]) -> Vec<u64> {\n\
               let mut out = Vec::new();\n\
               for s in subs {\n\
                 out.push(*s);\n\
               }\n\
               out\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("`out.push`"));
    }

    #[test]
    fn with_capacity_binding_is_clean() {
        let got = pass(
            "pub fn gather(subs: &[u64]) -> Vec<u64> {\n\
               let mut out = Vec::with_capacity(subs.len());\n\
               for s in subs {\n\
                 out.push(*s);\n\
               }\n\
               out\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn reserve_before_the_loop_is_clean() {
        let got = pass(
            "pub fn gather(out: &mut Vec<u64>, subs: &[u64]) {\n\
               out.reserve(subs.len());\n\
               for s in subs {\n\
                 out.push(*s);\n\
               }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn per_iteration_locals_are_exempt() {
        let got = pass(
            "pub fn gather(subs: &[u64]) {\n\
               for s in subs {\n\
                 let mut tmp = Vec::new();\n\
                 tmp.push(*s);\n\
                 consume(tmp);\n\
               }\n\
             }\n\
             fn consume(_v: Vec<u64>) {}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn non_scale_loops_are_out_of_scope() {
        let got = pass(
            "pub fn gather(names: &[u64]) -> Vec<u64> {\n\
               let mut out = Vec::new();\n\
               for n in names {\n\
                 out.push(*n);\n\
               }\n\
               out\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn insert_needs_a_known_collection_type() {
        let flagged = pass(
            "pub fn index(subs: &[u64]) {\n\
               let mut map: BTreeMap<u64, u64> = BTreeMap::new();\n\
               for s in subs {\n\
                 map.insert(*s, *s);\n\
               }\n\
               drop(map);\n\
             }\n",
        );
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        let domain = pass(
            "pub fn index(subs: &[u64], registry: &mut Registry) {\n\
               for s in subs {\n\
                 registry.insert(*s);\n\
               }\n\
             }\n",
        );
        assert!(domain.is_empty(), "{domain:?}");
    }

    #[test]
    fn test_functions_are_exempt() {
        let got = pass(
            "#[cfg(test)]\n\
             mod tests {\n\
               #[test]\n\
               fn t() {\n\
                 let mut out = Vec::new();\n\
                 for sub in 0..4u64 { out.push(sub); }\n\
                 assert_eq!(out.len(), 4);\n\
               }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
