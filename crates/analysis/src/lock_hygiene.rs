//! Lint 3: lock hygiene.
//!
//! Two rules:
//!
//! 1. First-party crates must use `parking_lot::{Mutex, RwLock}`, never
//!    `std::sync::{Mutex, RwLock}` — the std variants poison, and mixed
//!    lock families defeat the `concurrency-audit` wrappers.
//! 2. In the broker crate, a lock guard must not be held across a
//!    crossbeam channel `send`/`recv`: channel peers may block on the
//!    same lock, which turns a slow consumer into a deadlock.
//!
//! Rule 2 is a lexical heuristic: it tracks `let g = ...lock()/read()/
//! write()...;` bindings per brace depth and flags any `.send(`/
//! `.recv(`/`.recv_timeout(`/`.try_recv(` before the guard's scope ends
//! or an explicit `drop(g)`.

use crate::source::{mask, match_brace};
use crate::{line_of, Finding, SourceFile};

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Rule 1: std sync primitive usage in any first-party crate.
pub fn check_std_sync(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.crate_name().is_none() {
            continue;
        }
        let masked = mask(&file.content);
        for needle in ["std::sync::Mutex", "std::sync::RwLock"] {
            let mut from = 0;
            while let Some(rel) = masked[from..].find(needle) {
                let at = from + rel;
                findings.push(Finding {
                    lint: "lock-hygiene",
                    path: file.path.clone(),
                    line: line_of(&file.content, at),
                    message: format!("`{needle}` is forbidden — use the parking_lot equivalent"),
                });
                from = at + needle.len();
            }
        }
        // `use std::sync::{..., Mutex, ...}` grouped imports.
        let mut from = 0;
        while let Some(rel) = masked[from..].find("use std::sync::{") {
            let at = from + rel;
            let open = at + "use std::sync::{".len() - 1;
            let end = masked[open..].find('}').map_or(masked.len(), |e| open + e);
            let group = &masked[open..end];
            for name in ["Mutex", "RwLock"] {
                if group.split([',', '{', '}']).any(|part| part.trim() == name) {
                    findings.push(Finding {
                        lint: "lock-hygiene",
                        path: file.path.clone(),
                        line: line_of(&file.content, at),
                        message: format!(
                            "`std::sync::{name}` is forbidden — use the parking_lot equivalent"
                        ),
                    });
                }
            }
            from = end;
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// One tracked guard binding.
struct Guard {
    name: String,
    depth: usize,
    line: usize,
}

const ACQUIRE: [&str; 3] = [".lock", ".read", ".write"];
const CHANNEL_OPS: [&str; 4] = [".send", ".recv", ".recv_timeout", ".try_recv"];

/// True when `masked[at..]` starts a call of `needle` as a full method
/// name (e.g. `.read()` but not `.read_volatile()`).
fn method_call_at(masked: &str, at: usize, needle: &str) -> bool {
    if !masked[at..].starts_with(needle) {
        return false;
    }
    let after = at + needle.len();
    let bytes = masked.as_bytes();
    if bytes.get(after).copied().is_some_and(is_ident_byte) {
        return false;
    }
    // Allow whitespace between name and `(` (rustfmt never does, but
    // cheap to accept).
    let mut j = after;
    while bytes
        .get(j)
        .copied()
        .is_some_and(|b| b == b' ' || b == b'\n')
    {
        j += 1;
    }
    bytes.get(j) == Some(&b'(')
}

/// Rule 2: guard held across a channel operation, per file.
///
/// Scans broker-crate library code. Returns `(guard, channel op)`
/// findings.
pub fn check_guard_across_channel(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.crate_name() != Some("broker") || !file.is_library_code() {
            continue;
        }
        findings.extend(scan_file(&file.path, &file.content));
    }
    findings
}

/// The per-file scanner behind [`check_guard_across_channel`], exposed
/// separately so tests can feed synthetic snippets under any path.
pub fn scan_file(path: &str, content: &str) -> Vec<Finding> {
    let masked = mask(content);
    let bytes = masked.as_bytes();
    let mut findings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_start = 0usize; // start of the current statement
    let mut i = 0;

    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                stmt_start = i + 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
                i += 1;
            }
            b';' => {
                stmt_start = i + 1;
                i += 1;
            }
            b'.' => {
                let mut matched = false;
                for needle in ACQUIRE {
                    if method_call_at(&masked, i, needle) {
                        // Bound to a name, or a temporary? Look back to
                        // the statement start for `let <name>`.
                        let stmt = &masked[stmt_start..i];
                        if let Some(name) = let_binding_name(stmt) {
                            guards.push(Guard {
                                name,
                                depth,
                                line: line_of(content, i),
                            });
                        } else {
                            // Temporary guard: lives to the end of this
                            // statement; check it for channel calls.
                            let end = statement_end(bytes, i);
                            for op in CHANNEL_OPS {
                                let mut from = i;
                                while let Some(rel) = masked[from..end].find(op) {
                                    let at = from + rel;
                                    if method_call_at(&masked, at, op) {
                                        findings.push(Finding {
                                            lint: "lock-hygiene",
                                            path: path.to_string(),
                                            line: line_of(content, at),
                                            message: format!(
                                                "temporary lock guard (acquired line {}) held across `{}` — split the statement and drop the guard first",
                                                line_of(content, i), &op[1..]
                                            ),
                                        });
                                    }
                                    from = at + op.len();
                                }
                            }
                        }
                        i += needle.len();
                        matched = true;
                        break;
                    }
                }
                if matched {
                    continue;
                }
                for op in CHANNEL_OPS {
                    if method_call_at(&masked, i, op) && !guards.is_empty() {
                        for g in &guards {
                            findings.push(Finding {
                                lint: "lock-hygiene",
                                path: path.to_string(),
                                line: line_of(content, i),
                                message: format!(
                                    "lock guard `{}` (acquired line {}) held across `{}` — drop it before touching the channel",
                                    g.name, g.line, &op[1..]
                                ),
                            });
                        }
                        break;
                    }
                }
                i += 1;
            }
            b'd' if masked[i..].starts_with("drop") => {
                // `drop(name)` releases a tracked guard early.
                let prev_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
                let after = i + 4;
                if prev_ok && bytes.get(after) == Some(&b'(') {
                    let end = masked[after..]
                        .find(')')
                        .map_or(masked.len(), |e| after + e);
                    let arg = masked[after + 1..end].trim().to_string();
                    guards.retain(|g| g.name != arg);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    findings
}

/// Extracts the bound name from a statement prefix like
/// `let mut guard = self.state` (the text before the acquiring call).
fn let_binding_name(stmt: &str) -> Option<String> {
    let stmt = stmt.trim_start();
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest
        .trim_start()
        .strip_prefix("mut ")
        .unwrap_or(rest.trim_start());
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    // Destructuring or `_` bindings aren't guards we can track by name.
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// End offset of the statement containing `at` (next `;` at any depth
/// below the enclosing braces, or the matching close brace).
fn statement_end(bytes: &[u8], at: usize) -> usize {
    let mut j = at;
    while j < bytes.len() {
        match bytes[j] {
            b';' => return j,
            b'{' => j = match_brace(bytes, j),
            b'}' => return j,
            _ => j += 1,
        }
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_mutex_fires() {
        let files = vec![SourceFile::new(
            "crates/broker/src/x.rs",
            "use std::sync::Mutex;\nuse std::sync::{Arc, RwLock};\nlet m: std::sync::Mutex<u8>;\n",
        )];
        let got = check_std_sync(&files);
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got.iter().all(|f| f.message.contains("parking_lot")));
    }

    #[test]
    fn std_arc_and_atomics_pass() {
        let files = vec![SourceFile::new(
            "crates/broker/src/x.rs",
            "use std::sync::Arc;\nuse std::sync::atomic::{AtomicBool, Ordering};\n",
        )];
        assert!(check_std_sync(&files).is_empty());
    }

    #[test]
    fn guard_across_send_fires() {
        let src = "fn f(&self) {\n    let stats = self.stats.lock();\n    self.tx.send(Msg::Ping).ok();\n}\n";
        let got = scan_file("crates/broker/src/live.rs", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("`stats`"));
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn dropped_guard_passes() {
        let src = "fn f(&self) {\n    let stats = self.stats.lock();\n    drop(stats);\n    self.tx.send(Msg::Ping).ok();\n}\n";
        assert!(scan_file("crates/broker/src/live.rs", src).is_empty());
    }

    #[test]
    fn scoped_guard_passes() {
        let src = "fn f(&self) {\n    {\n        let stats = self.stats.lock();\n        stats.touch();\n    }\n    self.rx.recv().ok();\n}\n";
        assert!(scan_file("crates/broker/src/live.rs", src).is_empty());
    }

    #[test]
    fn temporary_guard_in_send_expression_fires() {
        let src = "fn f(&self) {\n    self.peers.read().get(&k).map(|tx| tx.send(m));\n}\n";
        let got = scan_file("crates/broker/src/live.rs", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("temporary"));
    }

    #[test]
    fn unrelated_methods_pass() {
        let src = "fn f(&self) {\n    let all = self.readings.read_all();\n    self.tx.sender();\n    self.log.write_back();\n}\n";
        assert!(scan_file("crates/broker/src/live.rs", src).is_empty());
    }
}
