//! Lint 5: determinism in the allocation/routing path.
//!
//! The paper's headline guarantee — bit-identical CRAM allocations for
//! any thread count — only holds if nothing on the allocation, routing
//! or report path depends on unordered state. This lint flags, in the
//! deterministic crates ([`CHECKED_CRATES`]):
//!
//! - **`iter`**: iteration over a `HashMap`/`HashSet` binding
//!   (`.iter()`, `.iter_mut()`, `.keys()`, `.values()`,
//!   `.values_mut()`, `.drain()`, `.into_iter()`, `.into_keys()`,
//!   `.into_values()`, and `for … in map`) — hash iteration order is
//!   unspecified and may vary across runs and `RandomState` seeds;
//! - **`wallclock`**: `Instant::now`/`SystemTime` — wall-clock reads
//!   make outputs run-dependent.
//!
//! Bindings are discovered from the token stream: any `name:
//! HashMap<…>` / `name: HashSet<…>` declaration (fields, lets,
//! params) or `let name = HashMap::new()` marks `name` as
//! hash-ordered for the rest of the file. `#[cfg(test)]` code is
//! exempt, and a justified allowlist
//! (`analysis/determinism-allowlist.txt`, same format and budget
//! discipline as the panic allowlist) documents the survivors — e.g.
//! telemetry-only scan timers.

use crate::allowlist::Allowlist;
use crate::lexer::{self, in_regions, Token, TokenKind};
use crate::{line_of, line_text, Finding, SourceFile};

/// Crates whose library code must be deterministic.
pub const CHECKED_CRATES: [&str; 5] = ["core", "profile", "pubsub", "simnet", "workload"];

const ORDER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Names bound to a `HashMap`/`HashSet` anywhere in the token stream:
/// `name: [std::collections::]Hash{Map,Set}<…>` declarations (struct
/// fields, lets, fn params) and `let name = Hash{Map,Set}::…` inits.
fn hash_bindings(code: &[&Token<'_>]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk backwards over a leading path (`std :: collections ::`).
        let mut j = i;
        while j >= 3
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
            && code[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        // `name : [&]['a ][mut ]<path> HashMap` — a typed declaration.
        let mut d = j;
        while d >= 1
            && (code[d - 1].is_punct('&')
                || code[d - 1].is_ident("mut")
                || code[d - 1].kind == TokenKind::Lifetime)
        {
            d -= 1;
        }
        if d >= 2
            && code[d - 1].is_punct(':')
            && !code.get(d.wrapping_sub(2)).is_some_and(|p| p.is_punct(':'))
        {
            if let Some(name) = code.get(d - 2).filter(|p| p.kind == TokenKind::Ident) {
                names.push(name.text.to_string());
                continue;
            }
        }
        // `let [mut] name = <path> HashMap :: …` — an inferred binding.
        if j >= 2 && code[j - 1].is_punct('=') {
            if let Some(name) = code.get(j - 2).filter(|p| p.kind == TokenKind::Ident) {
                let let_at = j.checked_sub(3).and_then(|k| code.get(k));
                let is_let = let_at.is_some_and(|p| p.is_ident("let") || p.is_ident("mut"));
                if is_let && name.text != "_" {
                    names.push(name.text.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Raw (pre-allowlist) findings in one file: `(kind, offset, detail)`.
fn scan(src: &str) -> Vec<(&'static str, usize, String)> {
    let tokens = lexer::tokenize(src);
    let code: Vec<&Token<'_>> = lexer::code(&tokens);
    let hashed = hash_bindings(&code);
    let is_hashed =
        |t: &Token<'_>| t.kind == TokenKind::Ident && hashed.iter().any(|n| n == t.text);
    let mut hits = Vec::new();

    for i in 0..code.len() {
        let t = code[i];
        // `name.iter()` / `self.name.keys()` / …
        if is_hashed(t)
            && code.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && code.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            if let Some(m) = code.get(i + 2).filter(|m| m.kind == TokenKind::Ident) {
                if ORDER_METHODS.contains(&m.text) {
                    hits.push((
                        "iter",
                        t.start,
                        format!(
                            "`{}.{}()` iterates a hash collection in unspecified order",
                            t.text, m.text
                        ),
                    ));
                }
            }
        }
        // `for pat in [&][mut] path.name {` — direct for-loop iteration.
        if t.is_ident("for") {
            // Find the matching `in` (skip pattern tokens; bail at `{`).
            let mut j = i + 1;
            while j < code.len() && !code[j].is_ident("in") && !code[j].is_punct('{') {
                j += 1;
            }
            if j < code.len() && code[j].is_ident("in") {
                // Collect the iterated expression up to the loop body.
                let mut k = j + 1;
                let mut last_path_ident: Option<&Token<'_>> = None;
                while k < code.len() && !code[k].is_punct('{') {
                    let c = code[k];
                    if c.is_punct('&') || c.is_ident("mut") || c.is_punct('.') {
                        k += 1;
                        continue;
                    }
                    if c.kind == TokenKind::Ident {
                        last_path_ident = Some(c);
                        k += 1;
                        continue;
                    }
                    // Method call, range, or anything else ends the
                    // plain-path case — `for x in map.keys()` is caught
                    // by the method rule above.
                    last_path_ident = None;
                    break;
                }
                if let Some(name) = last_path_ident.filter(|n| is_hashed(n)) {
                    hits.push((
                        "iter",
                        name.start,
                        format!(
                            "`for … in {}` iterates a hash collection in unspecified order",
                            name.text
                        ),
                    ));
                }
            }
        }
        // Wall clocks: `Instant::now(` and any `SystemTime` mention.
        if t.is_ident("Instant")
            && code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            hits.push((
                "wallclock",
                t.start,
                "`Instant::now()` reads the wall clock — outputs become run-dependent".to_string(),
            ));
        }
        if t.is_ident("SystemTime") {
            hits.push((
                "wallclock",
                t.start,
                "`SystemTime` reads the wall clock — outputs become run-dependent".to_string(),
            ));
        }
    }

    hits.sort_by_key(|&(_, at, _)| at);
    hits
}

/// Runs the lint over `files` with the given allowlist.
pub fn run(files: &[SourceFile], allowlist: &Allowlist, allowlist_path: &str) -> Vec<Finding> {
    let mut findings: Vec<Finding> = allowlist.errors.clone();
    let mut used = vec![false; allowlist.entries.len()];

    for file in files {
        let in_scope = file
            .crate_name()
            .is_some_and(|c| CHECKED_CRATES.contains(&c))
            && file.is_library_code();
        if !in_scope {
            continue;
        }
        let tokens = lexer::tokenize(&file.content);
        let regions = lexer::test_regions(&tokens);
        for (kind, at, detail) in scan(&file.content) {
            if in_regions(at, &regions) {
                continue;
            }
            let text = line_text(&file.content, at);
            if allowlist.covers(&mut used, &file.path, kind, text) {
                continue;
            }
            findings.push(Finding {
                lint: "determinism",
                path: file.path.clone(),
                line: line_of(&file.content, at),
                message: format!("{detail} — use BTreeMap/BTreeSet, sort before iterating, or allowlist with a justification"),
            });
        }
    }

    findings.extend(allowlist.unused_with(&used, allowlist_path, "determinism"));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::DETERMINISM_SPEC;

    fn lint(path: &str, src: &str, allow: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new(path, src)];
        let al = Allowlist::parse_with("allow.txt", allow, &DETERMINISM_SPEC);
        run(&files, &al, "allow.txt")
    }

    #[test]
    fn flags_hash_iteration_methods() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\nimpl S {\n    fn f(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n    fn g(&mut self) { self.m.drain().count(); }\n}\n";
        let got = lint("crates/core/src/x.rs", src, "");
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got[0].message.contains("m.keys()"));
        assert!(got[1].message.contains("m.drain()"));
    }

    #[test]
    fn flags_for_in_over_hash_binding() {
        let src = "use std::collections::HashSet;\nfn f(s: HashSet<u32>) -> u32 {\n    let mut acc = 0;\n    for v in &s { acc += v; }\n    acc\n}\n";
        let got = lint("crates/pubsub/src/x.rs", src, "");
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 4);
        assert!(got[0].message.contains("for … in s"));
    }

    #[test]
    fn let_inferred_binding_is_tracked() {
        let src = "fn f() {\n    let mut m = std::collections::HashMap::new();\n    m.insert(1u32, 2u32);\n    for (k, v) in m.iter() { let _ = (k, v); }\n}\n";
        let got = lint("crates/simnet/src/x.rs", src, "");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("m.iter()"));
    }

    #[test]
    fn btree_collections_and_lookups_pass() {
        let src = "use std::collections::{BTreeMap, HashMap};\nstruct S { b: BTreeMap<u32, u32>, h: HashMap<u32, u32> }\nimpl S {\n    fn f(&self) -> Option<&u32> { self.h.get(&1) }\n    fn g(&self) -> Vec<u32> { self.b.keys().copied().collect() }\n}\n";
        let got = lint("crates/core/src/x.rs", src, "");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn flags_wall_clocks() {
        let src = "use std::time::{Instant, SystemTime};\nfn f() -> u64 {\n    let t = Instant::now();\n    t.elapsed().as_micros() as u64\n}\n";
        let got = lint("crates/workload/src/x.rs", src, "");
        // The `use` line mentions SystemTime, plus the Instant::now.
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().any(|f| f.message.contains("Instant::now")));
    }

    #[test]
    fn test_code_strings_and_other_crates_pass() {
        let src = "fn f() -> &'static str { \"HashMap.iter() SystemTime\" }\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let m: HashMap<u8, u8> = HashMap::new(); for _ in m.keys() {} }\n}\n";
        assert!(lint("crates/core/src/x.rs", src, "").is_empty());
        let src2 =
            "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) { for _ in m.keys() {} }\n";
        assert!(lint("crates/broker/src/x.rs", src2, "").is_empty());
        assert!(lint("crates/core/tests/x.rs", src2, "").is_empty());
    }

    #[test]
    fn allowlist_covers_and_reports_stale() {
        let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
        let got = lint(
            "crates/core/src/cram.rs",
            src,
            "crates/core/src/cram.rs wallclock Instant::now -- telemetry-only scan timer\ncrates/core/src/cram.rs iter never -- stale",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("stale"));
    }

    #[test]
    fn synthetic_cram_keys_regression_fires() {
        // The ISSUE 4 acceptance scenario: seeding `for k in map.keys()`
        // into crates/core/src/cram.rs must make the lint fail.
        let src = "use std::collections::HashMap;\nfn f(map: HashMap<u64, u64>) -> u64 {\n    let mut acc = 0;\n    for k in map.keys() { acc += k; }\n    acc\n}\n";
        let got = lint("crates/core/src/cram.rs", src, "");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("map.keys()"));
    }
}
