//! Lint 7: static lock-acquisition-order graph.
//!
//! The runtime `TrackedMutex`/`TrackedRwLock` audit (PR 1) catches lock
//! inversions on paths that tests actually execute. This lint covers
//! the rest at analysis time: it walks each file's token stream,
//! tracks `let g = <recv>.lock()/.read()/.write()` guard bindings per
//! brace depth (the same lexical discipline as the lock-hygiene lint),
//! and records an edge `A → B` whenever lock `B` is acquired while a
//! guard on `A` is still live. Cycles in the accumulated graph are
//! ordering violations: two threads taking the locks in opposite
//! orders can deadlock.
//!
//! Lock identity is the receiver chain with a leading `self` dropped
//! (`self.peers.lock()` → `peers`), scoped per crate. Only zero-arg
//! `.lock()`/`.read()`/`.write()` calls count, which keeps
//! `io::Read::read(&mut buf)`-style methods out of the graph.

use crate::lexer::{self, in_regions, Token, TokenKind};
use crate::{line_of, Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose library code feeds the graph (the parking_lot users).
pub const CHECKED_CRATES: [&str; 2] = ["broker", "telemetry"];

const ACQUIRE: [&str; 3] = ["lock", "read", "write"];

/// One observed held→acquired pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Lock already held (crate-scoped receiver chain).
    pub from: String,
    /// Lock acquired while `from` was held.
    pub to: String,
    /// Repo-relative path of the acquisition site.
    pub path: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
}

struct Guard {
    name: String,
    lock: String,
    depth: usize,
}

/// Walks back from the `.` at `code[dot]` collecting the receiver chain
/// (`self.state.inner` → `state.inner`). Empty when the receiver is not
/// a plain ident chain (e.g. a call result).
pub(crate) fn receiver_chain(code: &[&Token<'_>], dot: usize) -> Option<String> {
    let mut parts: Vec<&str> = Vec::new();
    let mut k = dot; // index of a `.`
    loop {
        let ident = k.checked_sub(1).and_then(|i| code.get(i))?;
        if ident.kind != TokenKind::Ident {
            return None;
        }
        parts.push(ident.text);
        match k.checked_sub(2).and_then(|i| code.get(i)) {
            Some(prev) if prev.is_punct('.') => k -= 2,
            _ => break,
        }
    }
    parts.reverse();
    if parts.first() == Some(&"self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("."))
    }
}

/// Extracts held→acquired edges from one file (test code excluded).
/// `krate` scopes lock identities so unrelated crates cannot alias.
pub fn extract_edges(krate: &str, path: &str, content: &str) -> Vec<Edge> {
    let tokens = lexer::tokenize(content);
    let code: Vec<&Token<'_>> = lexer::code(&tokens);
    let regions = lexer::test_regions(&tokens);
    let mut edges = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_start = 0usize; // token index of the current statement

    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = i + 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            stmt_start = i + 1;
        } else if t.is_punct(';') {
            stmt_start = i + 1;
        } else if t.is_ident("drop")
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(arg) = code.get(i + 2).filter(|a| a.kind == TokenKind::Ident) {
                guards.retain(|g| g.name != arg.text);
            }
        } else if t.is_punct('.')
            && code
                .get(i + 1)
                .is_some_and(|m| m.kind == TokenKind::Ident && ACQUIRE.contains(&m.text))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
            && !in_regions(t.start, &regions)
        {
            if let Some(chain) = receiver_chain(&code, i) {
                let lock = format!("{krate}:{chain}");
                for g in &guards {
                    if g.lock != lock {
                        edges.push(Edge {
                            from: g.lock.clone(),
                            to: lock.clone(),
                            path: path.to_string(),
                            line: line_of(content, t.start),
                        });
                    }
                }
                // `let [mut] name = <recv>.lock()` binds a live guard.
                let recv_start = i + 1 - 2 * chain_len(&code, i);
                if let Some(name) = let_binding(&code, stmt_start, recv_start) {
                    guards.push(Guard { name, lock, depth });
                }
            }
        }
        i += 1;
    }
    edges
}

/// Number of `ident .` pairs in the receiver chain ending at the `.`
/// at `dot` (counting the `self` segment if present).
pub(crate) fn chain_len(code: &[&Token<'_>], dot: usize) -> usize {
    let mut n = 0;
    let mut k = dot;
    loop {
        match k.checked_sub(1).and_then(|i| code.get(i)) {
            Some(id) if id.kind == TokenKind::Ident => n += 1,
            _ => break,
        }
        match k.checked_sub(2).and_then(|i| code.get(i)) {
            Some(prev) if prev.is_punct('.') => k -= 2,
            _ => break,
        }
    }
    n
}

/// When the tokens from `stmt_start` to `recv_start` are exactly
/// `let [mut] name =`, returns `name`.
pub(crate) fn let_binding(
    code: &[&Token<'_>],
    stmt_start: usize,
    recv_start: usize,
) -> Option<String> {
    let head: Vec<&&Token<'_>> = code.get(stmt_start..recv_start)?.iter().collect();
    match head.as_slice() {
        [l, n, eq] if l.is_ident("let") && n.kind == TokenKind::Ident && eq.is_punct('=') => {
            Some(n.text.to_string())
        }
        [l, m, n, eq]
            if l.is_ident("let")
                && m.is_ident("mut")
                && n.kind == TokenKind::Ident
                && eq.is_punct('=') =>
        {
            Some(n.text.to_string())
        }
        _ => None,
    }
}

/// Runs the lint: builds the workspace acquisition graph and reports
/// every cycle as a finding.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut edges: Vec<Edge> = Vec::new();
    for file in files {
        if let Some(krate) = file.crate_name() {
            if CHECKED_CRATES.contains(&krate) && file.is_library_code() {
                edges.extend(extract_edges(krate, &file.path, &file.content));
            }
        }
    }
    findings_from_edges(&edges)
}

/// Cycle detection over an explicit edge list (exposed for tests).
pub fn findings_from_edges(edges: &[Edge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut site: BTreeMap<(&str, &str), (&str, usize)> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        site.entry((&e.from, &e.to)).or_insert((&e.path, e.line));
    }

    // DFS with an explicit stack path; a back edge into the current
    // path closes a cycle. Each cycle is reported once, keyed by its
    // sorted node set.
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        dfs(start, &adj, &mut path, &mut reported, &site, &mut findings);
    }
    findings
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<Vec<&'a str>>,
    site: &BTreeMap<(&'a str, &'a str), (&'a str, usize)>,
    findings: &mut Vec<Finding>,
) {
    let Some(nexts) = adj.get(node) else {
        return;
    };
    for &next in nexts {
        if let Some(pos) = path.iter().position(|&n| n == next) {
            let cycle: Vec<&str> = path[pos..].to_vec();
            let mut key = cycle.clone();
            key.sort_unstable();
            if reported.insert(key) {
                let (p, line) = site.get(&(node, next)).copied().unwrap_or(("", 0));
                let shown: Vec<&str> = cycle.iter().chain([&next]).copied().collect();
                findings.push(Finding {
                    lint: "lock-order",
                    path: p.to_string(),
                    line,
                    message: format!(
                        "lock-order cycle: {} — acquire these locks in one global order",
                        shown.join(" -> ")
                    ),
                });
            }
            continue;
        }
        if path.len() > 64 {
            continue; // defensive bound; real graphs are tiny
        }
        path.push(next);
        dfs(next, adj, path, reported, site, findings);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(src: &str) -> Vec<(String, String)> {
        extract_edges("broker", "crates/broker/src/x.rs", src)
            .into_iter()
            .map(|e| (e.from, e.to))
            .collect()
    }

    #[test]
    fn nested_acquisition_records_edge() {
        let src = "fn f(&self) {\n    let a = self.peers.lock();\n    let b = self.stats.lock();\n    drop(b);\n    drop(a);\n}\n";
        assert_eq!(
            edges(src),
            vec![("broker:peers".to_string(), "broker:stats".to_string())]
        );
    }

    #[test]
    fn scope_exit_and_drop_release_guards() {
        let src = "fn f(&self) {\n    { let a = self.peers.lock(); let _ = a; }\n    let b = self.stats.lock();\n    drop(b);\n    let c = self.peers.read();\n    let _ = c;\n}\n";
        assert!(edges(src).is_empty(), "{:?}", edges(src));
    }

    #[test]
    fn io_style_calls_with_args_are_ignored() {
        let src = "fn f(&self, buf: &mut [u8]) {\n    let a = self.peers.lock();\n    self.file.read(buf);\n    self.file.write(buf);\n}\n";
        assert!(edges(src).is_empty(), "{:?}", edges(src));
    }

    #[test]
    fn consistent_order_is_clean_inverted_order_cycles() {
        let consistent = vec![
            Edge {
                from: "broker:a".into(),
                to: "broker:b".into(),
                path: "p.rs".into(),
                line: 1,
            },
            Edge {
                from: "broker:b".into(),
                to: "broker:c".into(),
                path: "p.rs".into(),
                line: 2,
            },
            Edge {
                from: "broker:a".into(),
                to: "broker:c".into(),
                path: "p.rs".into(),
                line: 3,
            },
        ];
        assert!(findings_from_edges(&consistent).is_empty());

        let inverted = vec![
            Edge {
                from: "broker:a".into(),
                to: "broker:b".into(),
                path: "p.rs".into(),
                line: 1,
            },
            Edge {
                from: "broker:b".into(),
                to: "broker:a".into(),
                path: "q.rs".into(),
                line: 9,
            },
        ];
        let got = findings_from_edges(&inverted);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("cycle"));
        assert!(got[0].message.contains("broker:a"));
    }

    #[test]
    fn end_to_end_cycle_from_source() {
        let files = vec![SourceFile::new(
            "crates/broker/src/x.rs",
            "fn f(&self) {\n    let a = self.peers.lock();\n    let b = self.stats.lock();\n    drop(b); drop(a);\n}\nfn g(&self) {\n    let b = self.stats.lock();\n    let a = self.peers.lock();\n    drop(a); drop(b);\n}\n",
        )];
        let got = run(&files);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn test_code_is_exempt() {
        let files = vec![SourceFile::new(
            "crates/broker/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(&self) {\n        let b = self.stats.lock();\n        let a = self.peers.lock();\n        drop(a); drop(b);\n        let a2 = self.peers.lock();\n        let b2 = self.stats.lock();\n        drop(b2); drop(a2);\n    }\n}\n",
        )];
        assert!(run(&files).is_empty());
    }
}
