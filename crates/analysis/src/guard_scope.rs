//! Interprocedural pass 5: guard hold-scope (DESIGN.md §9.3).
//!
//! [`lock_order`](crate::lock_order) proves the *ordering* of lock
//! acquisitions is cycle-free; this pass bounds how long a guard may
//! be *held*. A `TrackedMutex`/`TrackedRwLock` guard that stays live
//! across a call into a closeness kernel, telemetry export, or simnet
//! delivery serializes exactly the work the workspace spends its time
//! in — the broker audit found such a stall dynamically in PR 1, and
//! this pass rules the pattern out statically.
//!
//! Mechanically it is the first consumer of the CFG layer: guard
//! liveness is a forward may-analysis over basic blocks (gen at a
//! `let g = <recv>.lock()/.read()/.write()` on a Tracked-typed
//! receiver, kill at `drop(g)` or at the binding's scope-end byte),
//! so a guard dropped on only one branch of an `if` is still live at
//! the join — a case the lexical lock-order walk cannot see. Calls
//! are flagged when the live-guard set is non-empty and the call can
//! reach (via the call graph) one of the forbidden targets.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::cfg::{forward_fixpoint, Cfg, Forward};
use crate::lexer::{self, Token, TokenKind};
use crate::lock_order::{chain_len, let_binding, receiver_chain};
use crate::{line_of, Finding, SourceFile};

/// Qualified-name suffixes a held guard must not cross into, with the
/// subsystem label used in findings.
pub const FORBIDDEN: &[(&str, &str)] = &[
    ("pair_cardinalities", "closeness kernel"),
    ("pair_cardinalities_windows", "closeness kernel"),
    ("JsonExporter::export", "telemetry export"),
    ("CsvExporter::export", "telemetry export"),
    ("Network::dispatch", "simnet delivery"),
];

/// Lock-guard-producing zero-arg methods.
const ACQUIRE: [&str; 3] = ["lock", "read", "write"];

/// Wrapper types whose guards this pass tracks.
const TRACKED_TYPES: [&str; 2] = ["TrackedMutex", "TrackedRwLock"];

/// One live guard binding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Guard {
    /// Bound variable name (`drop(name)` kills it).
    name: String,
    /// Byte offset of the binding scope's closing brace.
    scope_end: usize,
    /// Receiver chain of the acquisition (for messages).
    lock: String,
    /// 1-based acquisition line.
    line: usize,
}

/// The guard-liveness dataflow over one function body.
struct GuardFlow<'a> {
    code: &'a [&'a Token<'a>],
    src: &'a str,
    tracked: &'a BTreeSet<String>,
    /// Byte offset past the end of the function body.
    body_end: usize,
}

/// A flagged crossing: `(call byte offset, live guards)`.
type Crossing = (usize, Vec<Guard>);

impl GuardFlow<'_> {
    /// Applies one block's gen/kill to `fact`. When `out` is given,
    /// records a crossing for every offset in `bad` met while a guard
    /// is live.
    fn walk(
        &self,
        cfg: &Cfg,
        block: usize,
        fact: &BTreeSet<Guard>,
        bad: &BTreeMap<usize, String>,
        mut out: Option<&mut Vec<Crossing>>,
    ) -> BTreeSet<Guard> {
        let mut fact = fact.clone();
        let mut stmt = usize::MAX; // statement-start token index
        for i in cfg.block_tokens(block) {
            if stmt == usize::MAX {
                stmt = i;
            }
            let t = self.code[i];
            fact.retain(|g| g.scope_end > t.start);
            if t.is_punct('{') || t.is_punct('}') || t.is_punct(';') {
                stmt = i + 1;
            } else if t.is_ident("drop")
                && self.code.get(i + 1).is_some_and(|n| n.is_punct('('))
                && self.code.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(arg) = self.code.get(i + 2).filter(|a| a.kind == TokenKind::Ident) {
                    fact.retain(|g| g.name != arg.text);
                }
            } else if t.is_punct('.')
                && self
                    .code
                    .get(i + 1)
                    .is_some_and(|m| m.kind == TokenKind::Ident && ACQUIRE.contains(&m.text))
                && self.code.get(i + 2).is_some_and(|n| n.is_punct('('))
                && self.code.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(chain) = receiver_chain(self.code, i) {
                    let field = chain.rsplit('.').next().unwrap_or(&chain);
                    if self.tracked.contains(field) {
                        let recv_start = (i + 1).saturating_sub(2 * chain_len(self.code, i));
                        if let Some(name) = let_binding(self.code, stmt, recv_start) {
                            fact.insert(Guard {
                                name,
                                scope_end: self.scope_end_after(i),
                                lock: chain,
                                line: line_of(self.src, t.start),
                            });
                        }
                    }
                }
            }
            if !fact.is_empty() && bad.contains_key(&t.start) {
                if let Some(out) = out.as_deref_mut() {
                    out.push((t.start, fact.iter().cloned().collect()));
                }
            }
        }
        fact
    }

    /// Byte offset of the closing brace of the scope enclosing token
    /// `i` (the binding's lexical lifetime end), bounded by the body.
    fn scope_end_after(&self, i: usize) -> usize {
        let mut depth = 0usize;
        for t in &self.code[i..] {
            if t.start >= self.body_end {
                break;
            }
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    return t.start;
                }
                depth -= 1;
            }
        }
        self.body_end
    }
}

impl Forward for GuardFlow<'_> {
    type Fact = BTreeSet<Guard>;
    fn entry(&self) -> Self::Fact {
        BTreeSet::new()
    }
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        a.union(b).cloned().collect()
    }
    fn transfer(&self, cfg: &Cfg, block: usize, input: &Self::Fact) -> Self::Fact {
        self.walk(cfg, block, input, &BTreeMap::new(), None)
    }
}

/// Runs the pass over the workspace sources and call graph.
pub fn run(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    // Reverse-reachability closure: which nodes can reach a forbidden
    // target, labelled by the subsystem and target reached.
    let mut reach: BTreeMap<usize, (usize, &'static str)> = BTreeMap::new();
    for &(suffix, label) in FORBIDDEN {
        for n in graph.find_suffix(suffix) {
            reach.entry(n).or_insert((n, label));
        }
    }
    loop {
        let mut changed = false;
        for &(a, b) in &graph.edges {
            if let Some(&hit) = reach.get(&b) {
                if let std::collections::btree_map::Entry::Vacant(e) = reach.entry(a) {
                    e.insert(hit);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut tok_cache: BTreeMap<&str, (Vec<Token<'_>>, BTreeSet<String>)> = BTreeMap::new();

    for (n, node) in graph.nodes.iter().enumerate() {
        let item = &node.item;
        if item.is_test {
            continue;
        }
        let Some(body) = item.body else { continue };
        let Some(file) = by_path.get(node.file.as_str()) else {
            continue;
        };
        if !file.is_library_code() || !TRACKED_TYPES.iter().any(|t| file.content.contains(t)) {
            continue;
        }

        // Which calls in this fn can cross into a forbidden subsystem.
        let mut bad: BTreeMap<usize, String> = BTreeMap::new();
        for call in &item.calls {
            for t in graph.resolve_site(n, &call.callee) {
                if let Some(&(target, label)) = reach.get(&t) {
                    bad.entry(call.offset).or_insert_with(|| {
                        if t == target {
                            format!("{label} `{}`", graph.nodes[t].item.qualified)
                        } else {
                            format!(
                                "`{}`, which reaches {label} `{}`",
                                graph.nodes[t].item.qualified, graph.nodes[target].item.qualified
                            )
                        }
                    });
                    break;
                }
            }
        }
        if bad.is_empty() {
            continue;
        }

        let (toks, tracked) = tok_cache.entry(node.file.as_str()).or_insert_with(|| {
            let toks = lexer::tokenize(&file.content);
            let tracked = tracked_names(&lexer::code(&toks));
            (toks, tracked)
        });
        if tracked.is_empty() {
            continue;
        }
        let code = lexer::code(toks);
        let cfg = Cfg::build(&code, body, &file.content);
        let flow = GuardFlow {
            code: &code,
            src: &file.content,
            tracked,
            body_end: body.1,
        };
        let facts = forward_fixpoint(&cfg, &flow);
        let mut crossings: Vec<Crossing> = Vec::new();
        for (b, fact) in facts.iter().enumerate() {
            if let Some((inf, _)) = fact {
                flow.walk(&cfg, b, inf, &bad, Some(&mut crossings));
            }
        }
        crossings.sort();
        crossings.dedup();
        for (offset, guards) in crossings {
            let g = &guards[0];
            findings.push(Finding {
                lint: "guard-scope",
                path: node.file.clone(),
                line: line_of(&file.content, offset),
                message: format!(
                    "guard `{}` on `{}` (line {}) may be held across a call into {} — \
                     drop it before the call",
                    g.name,
                    g.lock,
                    g.line,
                    bad.get(&offset).map(String::as_str).unwrap_or("?"),
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();
    findings
}

/// Names declared with a Tracked lock type head (`peers:
/// TrackedMutex<…>` fields, annotated lets/params).
fn tracked_names(code: &[&Token<'_>]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident
            || !code.get(i + 1).is_some_and(|c| c.is_punct(':'))
            || code.get(i + 2).is_some_and(|c| c.is_punct(':'))
        {
            continue;
        }
        // Walk the type path after `:` and take its last segment.
        let mut j = i + 2;
        let mut head: Option<&str> = None;
        while j < code.len() {
            match code[j].kind {
                TokenKind::Ident => head = Some(code[j].text),
                TokenKind::Punct if code[j].is_punct(':') => {}
                _ => break,
            }
            j += 1;
        }
        if head.is_some_and(|h| TRACKED_TYPES.contains(&h)) {
            out.insert(code[i].text.to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL: (&str, &str) = (
        "crates/profile/src/k.rs",
        "pub fn pair_cardinalities() {}\n",
    );

    fn pass(broker_src: &str) -> Vec<Finding> {
        let files = vec![
            SourceFile::new(KERNEL.0, KERNEL.1),
            SourceFile::new("crates/broker/src/x.rs", broker_src),
        ];
        let graph = CallGraph::build(&files);
        run(&files, &graph)
    }

    #[test]
    fn guard_held_across_kernel_call_is_flagged() {
        let got = pass(
            "pub struct S { peers: TrackedMutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let g = self.peers.lock();\n\
                 greenps_profile::k::pair_cardinalities();\n\
                 drop(g);\n\
               }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("guard `g` on `peers`"));
        assert!(got[0].message.contains("closeness kernel"));
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let got = pass(
            "pub struct S { peers: TrackedMutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let g = self.peers.lock();\n\
                 drop(g);\n\
                 greenps_profile::k::pair_cardinalities();\n\
               }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let got = pass(
            "pub struct S { peers: TrackedMutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 { let g = self.peers.lock(); let _ = g; }\n\
                 greenps_profile::k::pair_cardinalities();\n\
               }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn guard_dropped_on_only_one_branch_is_still_flagged() {
        // The lexical lock-order walk cannot see this: one path drops
        // `g`, the other keeps it live to the call. May-analysis joins.
        let got = pass(
            "pub struct S { peers: TrackedRwLock<u32> }\n\
             impl S {\n\
               pub fn f(&self, c: bool) {\n\
                 let g = self.peers.read();\n\
                 if c { drop(g); }\n\
                 greenps_profile::k::pair_cardinalities();\n\
               }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn transitive_crossing_via_a_local_helper_is_flagged() {
        let got = pass(
            "pub struct S { peers: TrackedMutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let g = self.peers.lock();\n\
                 helper();\n\
                 drop(g);\n\
               }\n\
             }\n\
             pub fn helper() { greenps_profile::k::pair_cardinalities(); }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("helper"), "{got:?}");
        assert!(got[0].message.contains("pair_cardinalities"), "{got:?}");
    }

    #[test]
    fn untracked_locks_are_out_of_scope() {
        let got = pass(
            "pub struct S { peers: Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let g = self.peers.lock();\n\
                 greenps_profile::k::pair_cardinalities();\n\
                 drop(g);\n\
               }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
