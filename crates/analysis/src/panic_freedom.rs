//! Lint 1: panic-freedom in runtime library code.
//!
//! The runtime crates (`pubsub`, `profile`, `core`, `broker`, `simnet`,
//! `telemetry`) must not contain `unwrap()`, `expect()`, panicking
//! macros, or `[..]` indexing in non-`#[cfg(test)]` library code,
//! except where a justified allowlist entry documents the invariant
//! that makes the panic unreachable.
//!
//! The scan runs over the [`crate::lexer`] token stream, so panicky
//! text inside strings, raw strings or (doc) comments can never fire,
//! and index detection distinguishes `v[i]` from slice patterns,
//! attributes and `vec![…]` by real token adjacency.

use crate::allowlist::Allowlist;
use crate::lexer::{self, in_regions, Token, TokenKind};
use crate::{line_of, line_text, Finding, SourceFile};

/// Crates whose library code must be panic-free.
pub const CHECKED_CRATES: [&str; 7] = [
    "pubsub",
    "profile",
    "core",
    "broker",
    "simnet",
    "net",
    "telemetry",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Raw (pre-allowlist) panic sources in one file: `(kind, offset)`.
/// Shared with the interprocedural panic-reachability pass, which
/// wants *all* sites — allowlisted ones included — since an allowlist
/// entry documents why a panic cannot fire, not that it is absent.
pub(crate) fn scan(src: &str) -> Vec<(&'static str, usize)> {
    let tokens = lexer::tokenize(src);
    let code: Vec<&Token<'_>> = lexer::code(&tokens);
    let mut hits = Vec::new();

    for i in 0..code.len() {
        let t = code[i];
        // `.unwrap(` / `.expect(` — exact method name, actually called.
        if t.is_punct('.') && i + 2 < code.len() && code[i + 2].is_punct('(') {
            match code[i + 1].text {
                "unwrap" if code[i + 1].kind == TokenKind::Ident => hits.push(("unwrap", t.start)),
                "expect" if code[i + 1].kind == TokenKind::Ident => hits.push(("expect", t.start)),
                _ => {}
            }
        }
        // Panicking macros: the whole identifier, followed by `!`. A
        // `my_panic!` lexes as one ident and cannot match; `panic::`
        // (the std module) has no `!` and does not fire.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text)
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            hits.push(("panic", t.start));
        }
        // Indexing: `[` source-adjacent to an identifier, number, `)`,
        // `]` or `?` is an index/slice expression. Array types
        // (`[u8; 4]`), slice patterns (`let [a, b]`), attributes
        // (`#[…]`) and `vec![…]` all follow other tokens or have a gap.
        if t.is_punct('[') && i > 0 {
            let prev = code[i - 1];
            let indexable = matches!(prev.kind, TokenKind::Ident | TokenKind::Num)
                || prev.is_punct(')')
                || prev.is_punct(']')
                || prev.is_punct('?');
            if indexable && prev.end == t.start {
                hits.push(("index", t.start));
            }
        }
    }

    hits.sort_by_key(|&(_, at)| at);
    hits
}

/// Runs the lint over `files` with the given allowlist.
///
/// `allowlist_path` labels stale-entry findings. Only library code of
/// [`CHECKED_CRATES`] is scanned; other files pass through untouched.
pub fn run(files: &[SourceFile], allowlist: &Allowlist, allowlist_path: &str) -> Vec<Finding> {
    let mut findings: Vec<Finding> = allowlist.errors.clone();
    let mut used = vec![false; allowlist.entries.len()];

    for file in files {
        let in_scope = file
            .crate_name()
            .is_some_and(|c| CHECKED_CRATES.contains(&c))
            && file.is_library_code();
        if !in_scope {
            continue;
        }
        let tokens = lexer::tokenize(&file.content);
        let regions = lexer::test_regions(&tokens);
        for (kind, at) in scan(&file.content) {
            if in_regions(at, &regions) {
                continue;
            }
            let text = line_text(&file.content, at);
            if allowlist.covers(&mut used, &file.path, kind, text) {
                continue;
            }
            let what = match kind {
                "unwrap" => "`.unwrap()` can panic",
                "expect" => "`.expect()` can panic",
                "index" => "`[..]` indexing can panic",
                _ => "panicking macro",
            };
            findings.push(Finding {
                lint: "panic-freedom",
                path: file.path.clone(),
                line: line_of(&file.content, at),
                message: format!("{what} in library code — return a typed error or allowlist with a justification"),
            });
        }
    }

    findings.extend(allowlist.unused(&used, allowlist_path));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str, allow: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new(path, src)];
        let al = Allowlist::parse("allow.txt", allow);
        run(&files, &al, "allow.txt")
    }

    #[test]
    fn fires_on_unwrap_expect_panic_index() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    let a = v.first().unwrap();\n    let b: u32 = \"7\".parse().expect(\"digit\");\n    if i > 9 { panic!(\"too big\") }\n    a + b + v[i]\n}\n";
        let got = lint("crates/core/src/x.rs", src, "");
        let kinds: Vec<&str> = got
            .iter()
            .map(|f| f.message.split_whitespace().next().unwrap_or(""))
            .collect();
        assert_eq!(got.len(), 4, "{got:?}");
        assert_eq!(got[0].line, 2);
        assert_eq!(got[1].line, 3);
        assert_eq!(got[2].line, 4);
        assert_eq!(got[3].line, 5);
        assert!(kinds[0].contains("unwrap"));
    }

    #[test]
    fn ignores_test_code_comments_and_non_panicking_cousins() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // x.unwrap() in a comment\n    let s = \"panic!\";\n    x.unwrap_or(0)\n}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        let got = lint("crates/core/src/x.rs", src, "");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn raw_strings_and_doc_comments_cannot_fire() {
        // The regex engine's false-positive class from ISSUE 4: panicky
        // text embedded in raw strings and doc comments.
        let src = "/// Call `.unwrap()` and index `v[0]` — doc text only.\nfn f() -> &'static str {\n    r#\"x.unwrap() and v[0] and panic!(\"boom\")\"#\n}\n";
        let got = lint("crates/core/src/x.rs", src, "");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        let src = "fn f() { None::<u32>.unwrap(); }";
        assert!(lint("crates/workload/src/x.rs", src, "").is_empty());
        assert!(lint("crates/core/tests/x.rs", src, "").is_empty());
        assert!(lint("crates/core/src/bin/x.rs", src, "").is_empty());
    }

    #[test]
    fn allowlist_suppresses_and_reports_stale() {
        let src = "fn f(v: &[u32]) -> u32 { v[0] }\n";
        let got = lint(
            "crates/profile/src/x.rs",
            src,
            "crates/profile/src/x.rs index * -- caller checks non-empty\ncrates/profile/src/x.rs unwrap * -- stale",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("stale"));
    }

    #[test]
    fn array_types_and_macros_do_not_fire_index() {
        let src = "fn f() -> [u8; 4] {\n    let v: Vec<[u8; 4]> = vec![[0; 4]];\n    #[allow(dead_code)]\n    let [a, b] = (1, 2).into();\n    v.first().copied().unwrap_or([0; 4])\n}\n";
        let got = lint("crates/simnet/src/x.rs", src, "");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn tuple_field_indexing_fires() {
        let src = "fn f(t: (Vec<u32>, u32), i: usize) -> u32 { t.0[i] }\n";
        let got = lint("crates/core/src/x.rs", src, "");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("indexing"));
    }
}
