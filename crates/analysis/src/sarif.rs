//! Byte-stable SARIF 2.1.0 rendering of a findings report.
//!
//! CI uploads the output of `--format sarif` as an artifact so code
//! hosts and review tooling can ingest the workspace lints without
//! parsing the bespoke `greenps-analysis/1` JSON. The writer is
//! hand-rolled like the rest of the workspace's serializers: keys in
//! fixed order, findings in the caller's (already sorted) order, no
//! floats, so the same findings always render to the same bytes.
//!
//! Structure: one run, one driver (`greenps-analysis`), one rule per
//! distinct lint (sorted by id), one result per finding. Tracked
//! lints (`panic-reach`, `loop-growth`) map to level `note`;
//! everything else is `error`. Findings with line 0 are file-level
//! and carry no region.

use crate::Finding;

/// Lints that are ratchet-tracked rather than hard-enforced.
const TRACKED: [&str; 2] = ["panic-reach", "loop-growth"];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn level(lint: &str) -> &'static str {
    if TRACKED.contains(&lint) {
        "note"
    } else {
        "error"
    }
}

/// Renders `findings` as a SARIF 2.1.0 document. Findings should be
/// pre-sorted (the CLI's report order) for byte stability.
pub fn render(findings: &[Finding]) -> String {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.lint).collect();
    rules.sort_unstable();
    rules.dedup();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"greenps-analysis\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/greenps\",\n");
    out.push_str("          \"rules\": [");
    let last = rules.len().saturating_sub(1);
    for (i, r) in rules.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{comma}",
            esc(r),
            level(r)
        ));
    }
    if rules.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n          ]");
    }
    out.push_str("\n        }\n      },\n");
    out.push_str("      \"results\": [");
    let last = findings.len().saturating_sub(1);
    for (i, f) in findings.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str("\n        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(f.lint)));
        out.push_str(&format!("          \"level\": \"{}\",\n", level(f.lint)));
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&f.message)
        ));
        out.push_str("          \"locations\": [\n            {\"physicalLocation\": {");
        out.push_str(&format!(
            "\"artifactLocation\": {{\"uri\": \"{}\"}}",
            esc(&f.path)
        ));
        if f.line > 0 {
            out.push_str(&format!(", \"region\": {{\"startLine\": {}}}", f.line));
        }
        out.push_str("}}\n          ]\n        }");
        out.push_str(comma);
    }
    if findings.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n      ]");
    }
    out.push_str("\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, path: &str, line: usize, msg: &str) -> Finding {
        Finding {
            lint,
            path: path.to_string(),
            line,
            message: msg.to_string(),
        }
    }

    #[test]
    fn empty_report_is_valid_and_stable() {
        let a = render(&[]);
        let b = render(&[]);
        assert_eq!(a, b);
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("\"rules\": []"));
        assert!(a.contains("\"results\": []"));
    }

    #[test]
    fn findings_render_with_rule_level_and_region() {
        let got = render(&[
            finding("panic-freedom", "crates/core/src/a.rs", 7, "no `unwrap`"),
            finding("panic-reach", "crates/core/src/b.rs", 0, "endpoint"),
        ]);
        assert!(got.contains("\"ruleId\": \"panic-freedom\""));
        assert!(got.contains("\"level\": \"error\""));
        assert!(got.contains("\"startLine\": 7"));
        // Tracked lint maps to note; line 0 carries no region.
        assert!(got.contains("\"ruleId\": \"panic-reach\""));
        assert!(got.contains("\"level\": \"note\""));
        assert!(!got.contains("\"startLine\": 0"));
    }

    #[test]
    fn messages_are_escaped() {
        let got = render(&[finding(
            "determinism",
            "crates/core/src/a.rs",
            1,
            "say \"hi\"\\\n",
        )]);
        assert!(got.contains("say \\\"hi\\\"\\\\\\n"));
    }

    #[test]
    fn identical_input_renders_identical_bytes() {
        let fs = vec![
            finding("layering", "crates/core/src/a.rs", 3, "edge"),
            finding("lock-order", "crates/broker/src/b.rs", 9, "cycle"),
        ];
        assert_eq!(render(&fs), render(&fs));
    }
}
