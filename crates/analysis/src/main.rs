//! CLI for the workspace static-analysis engine.
//!
//! ```text
//! cargo run -p greenps-analysis -- <panic-freedom|layering|lock-hygiene|attributes|all>
//! ```
//!
//! Prints findings as `path:line: [lint] message` and exits non-zero
//! when any lint fires.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use greenps_analysis::allowlist::Allowlist;
use greenps_analysis::{
    attributes, layering, load_sources, lock_hygiene, panic_freedom, workspace_root, Finding,
    SourceFile,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ALLOWLIST_PATH: &str = "analysis/panic-allowlist.txt";
const USAGE: &str = "usage: cargo run -p greenps-analysis -- <check>\n\nchecks:\n  panic-freedom  unwrap/expect/panic!/indexing in runtime library code\n  layering       DESIGN.md \u{a7}3 crate dependency DAG\n  lock-hygiene   std::sync locks; guards held across channel ops\n  attributes     forbid(unsafe_code) + deny(missing_docs) on crate roots\n  all            every check above";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = match args.as_slice() {
        [one] => one.clone(),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = workspace_root(&start) else {
        eprintln!(
            "error: could not locate the workspace root from {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    match run_checks(&root, &check) {
        Ok(findings) if findings.is_empty() => {
            println!("analysis: `{check}` clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("analysis: `{check}` found {} violation(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_checks(root: &Path, check: &str) -> Result<Vec<Finding>, String> {
    let mut sources = load_sources(root, "crates").map_err(|e| e.to_string())?;
    sources.extend(load_sources(root, "src").map_err(|e| e.to_string())?);
    sources.extend(load_sources(root, "vendor").map_err(|e| e.to_string())?);

    let mut findings = Vec::new();
    let mut known = false;

    if matches!(check, "panic-freedom" | "all") {
        known = true;
        let allowlist_file = root.join(ALLOWLIST_PATH);
        let text = fs::read_to_string(&allowlist_file).unwrap_or_default();
        let allowlist = Allowlist::parse(ALLOWLIST_PATH, &text);
        findings.extend(panic_freedom::run(&sources, &allowlist, ALLOWLIST_PATH));
    }
    if matches!(check, "layering" | "all") {
        known = true;
        findings.extend(layering::check_sources(&sources));
        findings.extend(check_manifests(root)?);
    }
    if matches!(check, "lock-hygiene" | "all") {
        known = true;
        let first_party: Vec<SourceFile> = sources
            .iter()
            .filter(|f| f.path.starts_with("crates/"))
            .cloned()
            .collect();
        findings.extend(lock_hygiene::check_std_sync(&first_party));
        findings.extend(lock_hygiene::check_guard_across_channel(&first_party));
    }
    if matches!(check, "attributes" | "all") {
        known = true;
        findings.extend(attributes::run(&sources));
    }

    if !known {
        return Err(format!("unknown check `{check}`\n{USAGE}"));
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();
    Ok(findings)
}

fn check_manifests(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir).map_err(|e| e.to_string())?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let manifest = entry.path().join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let krate = entry.file_name().to_string_lossy().into_owned();
        let text = fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
        let rel = format!("crates/{krate}/Cargo.toml");
        findings.extend(layering::check_manifest(&krate, &rel, &text));
    }
    Ok(findings)
}
