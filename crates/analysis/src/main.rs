//! CLI for the workspace static-analysis engine.
//!
//! ```text
//! cargo run -p greenps-analysis -- <check> [--ratchet] [--format text|json]
//! ```
//!
//! Prints findings as `path:line: [lint] message` (or a machine-
//! readable JSON report with `--format json`) and exits non-zero when
//! any lint fires. With `--ratchet` (only valid with `all`) findings
//! are instead compared against `analysis/baseline.json`: growth fails,
//! improvements auto-shrink the baseline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use greenps_analysis::allowlist::{Allowlist, DETERMINISM_SPEC};
use greenps_analysis::callgraph::CallGraph;
use greenps_analysis::cancel_responsive::CANCEL_SPEC;
use greenps_analysis::cast_safety::CAST_SPEC;
use greenps_analysis::hot_path_alloc::HOT_PATH_SPEC;
use greenps_analysis::telemetry_schema::Schema;
use greenps_analysis::{
    attributes, baseline, cancel_responsive, cast_safety, determinism, guard_scope, hot_path_alloc,
    layering, load_sources, lock_hygiene, lock_order, loop_growth, panic_freedom, panic_reach,
    sarif, telemetry_schema, workspace_root, Finding, SourceFile,
};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ALLOWLIST_PATH: &str = "analysis/panic-allowlist.txt";
const DET_ALLOWLIST_PATH: &str = "analysis/determinism-allowlist.txt";
const HOT_PATHS_PATH: &str = "analysis/hot-paths.txt";
const HOT_ALLOWLIST_PATH: &str = "analysis/hot-path-allowlist.txt";
const CAST_ALLOWLIST_PATH: &str = "analysis/cast-allowlist.txt";
const CANCEL_ALLOWLIST_PATH: &str = "analysis/cancel-allowlist.txt";
const SCHEMA_PATH: &str = "analysis/telemetry-schema.txt";
const BASELINE_PATH: &str = "analysis/baseline.json";

/// Every lint name, in the order counts are reported.
const LINTS: [&str; 7] = [
    "attributes",
    "determinism",
    "layering",
    "lock-hygiene",
    "lock-order",
    "panic-freedom",
    "telemetry-schema",
];

const USAGE: &str = "usage: cargo run -p greenps-analysis -- <check> [--ratchet] [--format text|json]\n\nchecks:\n  panic-freedom     unwrap/expect/panic!/indexing in runtime library code\n  layering          DESIGN.md \u{a7}3 crate dependency DAG\n  lock-hygiene      std::sync locks; guards held across channel ops\n  attributes        forbid(unsafe_code) + deny(missing_docs) on crate roots\n  determinism       HashMap/HashSet iteration + wall clocks in deterministic crates\n  telemetry-schema  instrument names vs analysis/telemetry-schema.txt\n  lock-order        static lock acquisition-order cycles\n  panic-reach       pub APIs that can transitively reach a panic site (tracked)\n  hot-path-alloc    allocations reachable from analysis/hot-paths.txt entries\n  cast-safety       potentially truncating/wrapping `as` casts in library code\n  cancel-responsive loops reachable from long-running entries must poll cancel\n  guard-scope       Tracked guards held across kernel/export/delivery calls\n  loop-growth       unreserved push/insert in subscription-scale loops (tracked)\n  callgraph         print the workspace call graph as greenps-callgraph/1 JSON\n  all               every check above (callgraph excluded)\n\nflags:\n  --ratchet         compare counts against analysis/baseline.json: growth\n                    fails, improvements auto-shrink the baseline (all only)\n  --format <fmt>    text (default), json, or sarif";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    check: String,
    ratchet: bool,
    format: Format,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut check: Option<String> = None;
    let mut ratchet = false;
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ratchet" => ratchet = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json`, or `sarif`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            positional if check.is_none() => check = Some(positional.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let check = check.ok_or_else(|| "missing <check>".to_string())?;
    if ratchet && check != "all" {
        return Err("--ratchet is only valid with `all`".to_string());
    }
    Ok(Options {
        check,
        ratchet,
        format,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = workspace_root(&start) else {
        eprintln!(
            "error: could not locate the workspace root from {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    if opts.check == "callgraph" {
        // Not a lint: prints the graph JSON and nothing else, so the
        // output can be redirected straight into an artifact.
        return match export_callgraph(&root) {
            Ok(json) => {
                print!("{json}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let (findings, counts) = match run_checks(&root, &opts.check) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    match opts.format {
        Format::Json => print!("{}", baseline::render_findings_json(&counts, &findings)),
        Format::Sarif => print!("{}", sarif::render(&findings)),
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
        }
    }

    if opts.ratchet {
        return ratchet(&root, &counts);
    }

    // panic-reach and loop-growth findings are *tracked*: their ratchet
    // counters (`panic.reachable-endpoints`, `growth.findings`) are the
    // enforcement, so they inform but do not fail a plain run.
    let tracked = ["panic-reach", "loop-growth"];
    let enforced = findings
        .iter()
        .filter(|f| !tracked.contains(&f.lint))
        .count();
    if enforced == 0 {
        if opts.format == Format::Text {
            if findings.is_empty() {
                println!("analysis: `{}` clean", opts.check);
            } else {
                println!(
                    "analysis: `{}` clean ({} tracked finding(s))",
                    opts.check,
                    findings.len()
                );
            }
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("analysis: `{}` found {enforced} violation(s)", opts.check);
        ExitCode::FAILURE
    }
}

/// Applies the baseline ratchet: regression fails, improvement shrinks
/// the baseline file in place.
fn ratchet(root: &Path, counts: &BTreeMap<String, usize>) -> ExitCode {
    let path = root.join(BASELINE_PATH);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {BASELINE_PATH}: {e}");
            return ExitCode::from(2);
        }
    };
    let base = match baseline::Baseline::parse(&text) {
        Ok(base) => base,
        Err(e) => {
            eprintln!("error: {BASELINE_PATH}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = baseline::Baseline {
        counts: counts.clone(),
    };
    let outcome = baseline::compare(&base, &current);

    if !outcome.regressions.is_empty() {
        for r in &outcome.regressions {
            eprintln!("ratchet: {r}");
        }
        eprintln!(
            "analysis: ratchet failed — {} counter(s) above baseline",
            outcome.regressions.len()
        );
        return ExitCode::FAILURE;
    }
    if !outcome.improvements.is_empty() {
        if let Err(e) = fs::write(&path, current.render()) {
            eprintln!("error: cannot shrink {BASELINE_PATH}: {e}");
            return ExitCode::from(2);
        }
        for i in &outcome.improvements {
            eprintln!("ratchet: {i}");
        }
        eprintln!("ratchet: baseline auto-shrunk — commit the updated {BASELINE_PATH}");
    }
    eprintln!("analysis: ratchet ok");
    ExitCode::SUCCESS
}

/// Runs the selected checks; returns findings plus per-counter tallies
/// (lint findings and allowlist sizes) for the ratchet.
fn run_checks(root: &Path, check: &str) -> Result<(Vec<Finding>, BTreeMap<String, usize>), String> {
    let mut sources = load_sources(root, "crates").map_err(|e| e.to_string())?;
    sources.extend(load_sources(root, "src").map_err(|e| e.to_string())?);
    sources.extend(load_sources(root, "vendor").map_err(|e| e.to_string())?);

    // First-party files only for the call graph and the passes built on
    // it — vendor stubs are not part of the workspace API surface.
    let first_party: Vec<SourceFile> = sources
        .iter()
        .filter(|f| f.path.starts_with("crates/") || f.path.starts_with("src/"))
        .cloned()
        .collect();
    let needs_graph = matches!(
        check,
        "panic-reach"
            | "hot-path-alloc"
            | "cast-safety"
            | "cancel-responsive"
            | "guard-scope"
            | "all"
    );
    let graph = needs_graph.then(|| CallGraph::build(&first_party));

    let mut findings = Vec::new();
    let mut extra_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut known = false;

    if matches!(check, "panic-freedom" | "all") {
        known = true;
        let text = fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
        let allowlist = Allowlist::parse(ALLOWLIST_PATH, &text);
        extra_counts.insert(
            "allowlist.panic-entries".to_string(),
            allowlist.entries.len(),
        );
        findings.extend(panic_freedom::run(&sources, &allowlist, ALLOWLIST_PATH));
    }
    if matches!(check, "layering" | "all") {
        known = true;
        findings.extend(layering::check_sources(&sources));
        findings.extend(check_manifests(root)?);
    }
    if matches!(check, "lock-hygiene" | "all") {
        known = true;
        let first_party: Vec<SourceFile> = sources
            .iter()
            .filter(|f| f.path.starts_with("crates/"))
            .cloned()
            .collect();
        findings.extend(lock_hygiene::check_std_sync(&first_party));
        findings.extend(lock_hygiene::check_guard_across_channel(&first_party));
    }
    if matches!(check, "attributes" | "all") {
        known = true;
        findings.extend(attributes::run(&sources));
    }
    if matches!(check, "determinism" | "all") {
        known = true;
        let text = fs::read_to_string(root.join(DET_ALLOWLIST_PATH)).unwrap_or_default();
        let allowlist = Allowlist::parse_with(DET_ALLOWLIST_PATH, &text, &DETERMINISM_SPEC);
        extra_counts.insert(
            "allowlist.determinism-entries".to_string(),
            allowlist.entries.len(),
        );
        findings.extend(determinism::run(&sources, &allowlist, DET_ALLOWLIST_PATH));
    }
    if matches!(check, "telemetry-schema" | "all") {
        known = true;
        let text = fs::read_to_string(root.join(SCHEMA_PATH)).map_err(|e| {
            format!("cannot read {SCHEMA_PATH}: {e} — the telemetry-schema lint requires it")
        })?;
        let schema = Schema::parse(SCHEMA_PATH, &text);
        findings.extend(telemetry_schema::run(&sources, &schema, SCHEMA_PATH));
    }
    if matches!(check, "lock-order" | "all") {
        known = true;
        findings.extend(lock_order::run(&sources));
    }
    if matches!(check, "panic-reach" | "all") {
        known = true;
        if let Some(graph) = &graph {
            let got = panic_reach::run(&first_party, graph);
            extra_counts.insert("panic.reachable-endpoints".to_string(), got.len());
            findings.extend(got);
        }
    }
    if matches!(check, "hot-path-alloc" | "all") {
        known = true;
        if let Some(graph) = &graph {
            let hot_text = fs::read_to_string(root.join(HOT_PATHS_PATH)).map_err(|e| {
                format!("cannot read {HOT_PATHS_PATH}: {e} — the hot-path-alloc pass requires it")
            })?;
            let allow_text = fs::read_to_string(root.join(HOT_ALLOWLIST_PATH)).unwrap_or_default();
            let allowlist = Allowlist::parse_with(HOT_ALLOWLIST_PATH, &allow_text, &HOT_PATH_SPEC);
            extra_counts.insert(
                "allowlist.hot-path-entries".to_string(),
                allowlist.entries.len(),
            );
            let got = hot_path_alloc::run(
                &first_party,
                graph,
                HOT_PATHS_PATH,
                &hot_text,
                &allowlist,
                HOT_ALLOWLIST_PATH,
            );
            extra_counts.insert("hot-path.alloc-findings".to_string(), got.len());
            findings.extend(got);
        }
    }
    if matches!(check, "cast-safety" | "all") {
        known = true;
        if let Some(graph) = &graph {
            let allow_text = fs::read_to_string(root.join(CAST_ALLOWLIST_PATH)).unwrap_or_default();
            let allowlist = Allowlist::parse_with(CAST_ALLOWLIST_PATH, &allow_text, &CAST_SPEC);
            extra_counts.insert(
                "allowlist.cast-entries".to_string(),
                allowlist.entries.len(),
            );
            let got = cast_safety::run(&first_party, graph, &allowlist, CAST_ALLOWLIST_PATH);
            extra_counts.insert("cast.findings".to_string(), got.len());
            findings.extend(got);
        }
    }

    if matches!(check, "cancel-responsive" | "all") {
        known = true;
        if let Some(graph) = &graph {
            let allow_text =
                fs::read_to_string(root.join(CANCEL_ALLOWLIST_PATH)).unwrap_or_default();
            let allowlist = Allowlist::parse_with(CANCEL_ALLOWLIST_PATH, &allow_text, &CANCEL_SPEC);
            extra_counts.insert(
                "allowlist.cancel-entries".to_string(),
                allowlist.entries.len(),
            );
            let got = cancel_responsive::run(
                &first_party,
                graph,
                cancel_responsive::DEFAULT_ENTRIES,
                &allowlist,
                CANCEL_ALLOWLIST_PATH,
            );
            extra_counts.insert("cancel.findings".to_string(), got.len());
            findings.extend(got);
        }
    }
    if matches!(check, "guard-scope" | "all") {
        known = true;
        if let Some(graph) = &graph {
            let got = guard_scope::run(&first_party, graph);
            extra_counts.insert("guard.findings".to_string(), got.len());
            findings.extend(got);
        }
    }
    if matches!(check, "loop-growth" | "all") {
        known = true;
        let got = loop_growth::run(&first_party);
        extra_counts.insert("growth.findings".to_string(), got.len());
        findings.extend(got);
    }

    if !known {
        return Err(format!("unknown check `{check}`\n{USAGE}"));
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();

    let mut counts = baseline::tally(&LINTS, &findings);
    // The interprocedural passes report under dotted counter names
    // (set above from their own tallies); drop the per-lint duplicates
    // the generic tally just created for their findings.
    for lint in [
        "panic-reach",
        "hot-path-alloc",
        "cast-safety",
        "cancel-responsive",
        "guard-scope",
        "loop-growth",
    ] {
        counts.remove(lint);
    }
    counts.append(&mut extra_counts);
    Ok((findings, counts))
}

/// Loads first-party sources and renders the call graph JSON.
fn export_callgraph(root: &Path) -> Result<String, String> {
    let mut sources = load_sources(root, "crates").map_err(|e| e.to_string())?;
    sources.extend(load_sources(root, "src").map_err(|e| e.to_string())?);
    Ok(CallGraph::build(&sources).to_json())
}

fn check_manifests(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir).map_err(|e| e.to_string())?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let manifest = entry.path().join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let krate = entry.file_name().to_string_lossy().into_owned();
        let text = fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
        let rel = format!("crates/{krate}/Cargo.toml");
        findings.extend(layering::check_manifest(&krate, &rel, &text));
    }
    Ok(findings)
}
