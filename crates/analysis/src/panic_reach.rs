//! Interprocedural pass 1: panic reachability (DESIGN.md §9.2).
//!
//! The per-site panic-freedom lint answers "where are the panic
//! sites?"; this pass answers the question callers actually have:
//! *which public entry points can hit one?* It walks the
//! [`crate::callgraph::CallGraph`] backwards-from-forwards: every
//! `pub` function of the runtime crates is an endpoint, every function
//! containing a panic site (allowlisted or not — an allowlist entry
//! justifies a site, it does not delete it) is a sink, and each
//! endpoint that can reach a sink yields one finding carrying a
//! witness call path.
//!
//! Findings are *tracked*, not hard failures: the panic-freedom
//! allowlist already documents why the remaining sites cannot fire, so
//! a reachable endpoint is expected today. The ratchet counter
//! `panic.reachable-endpoints` in `analysis/baseline.json` is the
//! enforcement: the number may only fall.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::parser::Visibility;
use crate::{line_of, panic_freedom, Finding, SourceFile};

/// Crates whose public API surface is checked for panic reachability.
/// The `workload` crate is included even though the per-site lint
/// exempts it: its generators feed every benchmark, and a panic there
/// still takes a run down.
pub const ENDPOINT_CRATES: [&str; 5] = ["core", "profile", "pubsub", "simnet", "workload"];

/// Runs the pass. `graph` must be built from the same `files`.
pub fn run(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    // Map panic sites to the graph node whose body contains them.
    let mut sink_kind: BTreeMap<usize, (&'static str, usize)> = BTreeMap::new();
    for file in files {
        if !file.is_library_code() {
            continue;
        }
        let sites = panic_freedom::scan(&file.content);
        if sites.is_empty() {
            continue;
        }
        for (idx, node) in graph.nodes.iter().enumerate() {
            if node.file != file.path {
                continue;
            }
            let Some((lo, hi)) = node.item.body else {
                continue;
            };
            for &(kind, at) in &sites {
                if at >= lo && at < hi {
                    // First site per function is enough for a witness.
                    sink_kind
                        .entry(idx)
                        .or_insert((kind, line_of(&file.content, at)));
                    break;
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, node) in graph.nodes.iter().enumerate() {
        let is_endpoint = node.item.vis == Visibility::Public
            && ENDPOINT_CRATES
                .iter()
                .any(|c| node.item.qualified.starts_with(&format!("greenps_{c}::")));
        if !is_endpoint {
            continue;
        }
        let parent = graph.bfs(&[idx], &Default::default());
        // Deterministic: pick the smallest reachable sink index.
        let Some((&sink, &(kind, line))) = sink_kind.iter().find(|(s, _)| parent.contains_key(s))
        else {
            continue;
        };
        let path = graph.witness(&parent, sink).join(" -> ");
        findings.push(Finding {
            lint: "panic-reach",
            path: node.file.clone(),
            line: node.item.line,
            message: format!(
                "pub fn `{}` can reach `{}` site at {}:{} via {}",
                node.item.qualified, kind, graph.nodes[sink].file, line, path
            ),
        });
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = files.iter().map(|(p, c)| SourceFile::new(p, c)).collect();
        let graph = CallGraph::build(&files);
        run(&files, &graph)
    }

    #[test]
    fn transitive_panic_is_reported_with_witness() {
        let got = pass(&[(
            "crates/core/src/a.rs",
            "pub fn api() { mid(); }\nfn mid() { deep(); }\nfn deep(v: &[u32]) { v.first().unwrap(); }",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("greenps_core::a::api"));
        assert!(got[0].message.contains("`unwrap` site"));
        assert!(got[0]
            .message
            .contains("greenps_core::a::api -> greenps_core::a::mid -> greenps_core::a::deep"));
    }

    #[test]
    fn endpoint_with_its_own_panic_site_is_reported() {
        let got = pass(&[(
            "crates/profile/src/a.rs",
            "pub fn api(v: &[u32]) -> u32 { v[0] }",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("`index` site"));
    }

    #[test]
    fn unreachable_and_private_panics_are_quiet() {
        let got = pass(&[(
            "crates/core/src/a.rs",
            "pub fn api() {}\nfn orphan() { panic!(\"never called\"); }",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn non_endpoint_crates_are_out_of_scope() {
        let got = pass(&[(
            "crates/telemetry/src/a.rs",
            "pub fn api(v: &[u32]) -> u32 { v[0] }",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn workload_is_an_endpoint_crate() {
        let got = pass(&[(
            "crates/workload/src/a.rs",
            "pub fn gen(v: &[u32]) -> u32 { v[0] }",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
    }
}
