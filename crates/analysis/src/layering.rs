//! Lint 2: crate layering (DESIGN.md §3).
//!
//! The workspace forms a strict DAG; an edge not in [`ALLOWED`] is a
//! back-edge that would let low layers reach up into policy code. Both
//! `Cargo.toml` `[dependencies]` declarations and `use greenps_*`
//! statements in source are checked, so a path dependency smuggled in
//! through a re-export still fails.

use crate::source::mask;
use crate::{line_of, Finding, SourceFile};

/// Allowed `greenps-*` dependency edges, from DESIGN.md §3.
/// `(crate, allowed direct dependencies)`.
pub const ALLOWED: [(&str, &[&str]); 10] = [
    ("pubsub", &[]),
    ("telemetry", &[]),
    ("simnet", &["telemetry"]),
    ("net", &["simnet", "telemetry"]),
    ("profile", &["pubsub"]),
    ("core", &["pubsub", "profile", "telemetry"]),
    (
        "broker",
        &["pubsub", "simnet", "net", "profile", "core", "telemetry"],
    ),
    (
        "workload",
        &[
            "pubsub",
            "simnet",
            "net",
            "profile",
            "core",
            "broker",
            "telemetry",
        ],
    ),
    (
        "bench",
        &[
            "pubsub",
            "simnet",
            "net",
            "profile",
            "core",
            "broker",
            "workload",
            "telemetry",
        ],
    ),
    ("analysis", &[]),
];

fn allowed_for(krate: &str) -> Option<&'static [&'static str]> {
    ALLOWED
        .iter()
        .find(|(c, _)| *c == krate)
        .map(|(_, deps)| *deps)
}

/// Checks one crate's `Cargo.toml` text for illegal `greenps-*` edges.
///
/// Only the `[dependencies]` section is enforced; dev-dependencies may
/// reach any layer (tests sit above the whole stack).
pub fn check_manifest(krate: &str, manifest_path: &str, text: &str) -> Vec<Finding> {
    let Some(allowed) = allowed_for(krate) else {
        return vec![Finding {
            lint: "layering",
            path: manifest_path.to_string(),
            line: 0,
            message: format!("crate `{krate}` is not in the DESIGN.md §3 layering table — add it"),
        }];
    };
    let mut findings = Vec::new();
    let mut in_dependencies = false;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_dependencies = trimmed == "[dependencies]";
            continue;
        }
        if !in_dependencies {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("greenps-") {
            let dep: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if dep == krate {
                continue;
            }
            if !allowed.contains(&dep.as_str()) {
                findings.push(Finding {
                    lint: "layering",
                    path: manifest_path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{krate}` may not depend on `{dep}` (DESIGN.md §3 allows only {allowed:?})"
                    ),
                });
            }
        }
    }
    findings
}

/// Checks `use greenps_*` / `greenps_*::` references in library source.
pub fn check_sources(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let Some(krate) = file.crate_name() else {
            continue;
        };
        let Some(allowed) = allowed_for(krate) else {
            continue;
        };
        if !file.is_library_code() {
            continue;
        }
        let masked = mask(&file.content);
        let mut from = 0;
        while let Some(rel) = masked[from..].find("greenps_") {
            let at = from + rel;
            let after = at + "greenps_".len();
            let dep: String = masked[after..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            from = after + dep.len();
            let dep = dep.replace('_', "-");
            if dep.is_empty() || dep == krate {
                continue;
            }
            if !allowed.contains(&dep.as_str()) {
                findings.push(Finding {
                    lint: "layering",
                    path: file.path.clone(),
                    line: line_of(&file.content, at),
                    message: format!(
                        "`{krate}` references `greenps_{}` but DESIGN.md §3 allows only {allowed:?}",
                        dep.replace('-', "_")
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_back_edge_fires() {
        let toml = "[package]\nname = \"greenps-profile\"\n\n[dependencies]\ngreenps-pubsub.workspace = true\ngreenps-core.workspace = true\n\n[dev-dependencies]\ngreenps-workload.workspace = true\n";
        let got = check_manifest("profile", "crates/profile/Cargo.toml", toml);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("`core`"));
        assert_eq!(got[0].line, 6);
    }

    #[test]
    fn manifest_allowed_edges_pass() {
        let toml =
            "[dependencies]\ngreenps-pubsub.workspace = true\ngreenps-profile.workspace = true\n";
        assert!(check_manifest("core", "crates/core/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn source_back_edge_fires() {
        let files = vec![SourceFile::new(
            "crates/pubsub/src/filter.rs",
            "use greenps_core::model::AllocationInput;\n",
        )];
        let got = check_sources(&files);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("greenps_core"));
    }

    #[test]
    fn source_allowed_and_out_of_scope_pass() {
        let files = vec![
            SourceFile::new(
                "crates/core/src/model.rs",
                "use greenps_profile::SubscriptionProfile;\n",
            ),
            SourceFile::new(
                "crates/core/tests/t.rs",
                "use greenps_workload::scenario::Scenario;\n",
            ),
        ];
        assert!(check_sources(&files).is_empty());
    }

    #[test]
    fn unknown_crate_is_flagged() {
        let got = check_manifest("newcrate", "crates/newcrate/Cargo.toml", "[dependencies]\n");
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("layering table"));
    }
}
