//! Lint findings baseline and ratchet (DESIGN.md §9.1).
//!
//! `analysis/baseline.json` records the accepted number of findings
//! per lint plus the size of each justified allowlist. Under
//! `-- all --ratchet` the engine compares current counts against the
//! baseline:
//!
//! - any count **above** its baseline fails (new debt is rejected);
//! - counts **below** baseline auto-shrink the file (improvements are
//!   locked in — the next regression to the old level fails);
//! - equal counts pass.
//!
//! The file is a flat JSON object so diffs are one line per counter;
//! parsing and rendering are hand-rolled (the analysis crate is
//! dependency-free by policy).

use std::collections::BTreeMap;

use crate::Finding;

/// Schema tag written into the baseline file.
pub const SCHEMA: &str = "greenps-analysis-baseline/1";

/// Per-counter accepted findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Counter name → accepted count.
    pub counts: BTreeMap<String, usize>,
}

/// Outcome of comparing current counts against the baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// Human-readable regressions (count rose above baseline).
    pub regressions: Vec<String>,
    /// Human-readable improvements (count fell below baseline).
    pub improvements: Vec<String>,
}

impl Baseline {
    /// Parses the baseline file. Tolerant of whitespace; rejects files
    /// without the expected schema tag or a `counts` object.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        if !text.contains(SCHEMA) {
            return Err(format!("baseline file missing schema tag `{SCHEMA}`"));
        }
        let at = text
            .find("\"counts\"")
            .ok_or_else(|| "baseline file missing `counts` object".to_string())?;
        let open = text[at..]
            .find('{')
            .map(|o| at + o)
            .ok_or_else(|| "`counts` is not an object".to_string())?;
        let close = text[open..]
            .find('}')
            .map(|c| open + c)
            .ok_or_else(|| "`counts` object is unterminated".to_string())?;
        let mut counts = BTreeMap::new();
        for pair in text[open + 1..close].split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed counts entry `{pair}`"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("non-numeric count for `{key}`"))?;
            counts.insert(key, value);
        }
        Ok(Baseline { counts })
    }

    /// Renders the baseline as stable, diff-friendly JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"counts\": {\n");
        let last = self.counts.len().saturating_sub(1);
        for (i, (k, v)) in self.counts.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            out.push_str(&format!("    \"{k}\": {v}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Compares `current` counts against `baseline`. Counters missing from
/// either side are treated as 0, so adding a new lint starts it at a
/// zero budget and deleting one counts as an improvement.
pub fn compare(baseline: &Baseline, current: &Baseline) -> Ratchet {
    let mut out = Ratchet::default();
    let keys: std::collections::BTreeSet<&String> = baseline
        .counts
        .keys()
        .chain(current.counts.keys())
        .collect();
    for key in keys {
        let base = baseline.counts.get(key).copied().unwrap_or(0);
        let cur = current.counts.get(key).copied().unwrap_or(0);
        if cur > base {
            out.regressions.push(format!(
                "`{key}` regressed: {cur} finding(s), baseline allows {base}"
            ));
        } else if cur < base {
            out.improvements
                .push(format!("`{key}` improved: {cur} (baseline was {base})"));
        }
    }
    out
}

/// Tallies findings per lint, over a fixed set of counter names so
/// lints that found nothing still appear with a 0.
pub fn tally(lints: &[&str], findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = lints.iter().map(|l| (l.to_string(), 0)).collect();
    for f in findings {
        *counts.entry(f.lint.to_string()).or_insert(0) += 1;
    }
    counts
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report for `--format json`: schema tag, per-lint
/// counts, and the full findings list.
pub fn render_findings_json(counts: &BTreeMap<String, usize>, findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"greenps-analysis/1\",\n  \"counts\": {");
    let last = counts.len().saturating_sub(1);
    for (i, (k, v)) in counts.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!("\n    \"{}\": {v}{comma}", json_escape(k)));
    }
    out.push_str("\n  },\n  \"findings\": [");
    let last = findings.len().saturating_sub(1);
    for (i, f) in findings.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
            json_escape(f.lint),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> Baseline {
        Baseline {
            counts: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = counts(&[("panic-freedom", 0), ("allowlist.panic-entries", 8)]);
        let text = b.render();
        let parsed = Baseline::parse(&text).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"schema\": \"greenps-analysis-baseline/1\"}").is_err());
        let bad = "{\"schema\": \"greenps-analysis-baseline/1\", \"counts\": {\"a\": \"x\"}}";
        assert!(Baseline::parse(bad).is_err());
    }

    #[test]
    fn ratchet_directions() {
        let base = counts(&[("determinism", 2), ("panic-freedom", 0)]);
        let same = compare(&base, &base);
        assert!(same.regressions.is_empty() && same.improvements.is_empty());

        let worse = compare(&base, &counts(&[("determinism", 3), ("panic-freedom", 0)]));
        assert_eq!(worse.regressions.len(), 1);
        assert!(worse.regressions[0].contains("determinism"));

        let better = compare(&base, &counts(&[("determinism", 0), ("panic-freedom", 0)]));
        assert!(better.regressions.is_empty());
        assert_eq!(better.improvements.len(), 1);

        // A counter the baseline has never seen starts at budget 0.
        let new_lint = compare(&base, &counts(&[("lock-order", 1)]));
        assert_eq!(new_lint.regressions.len(), 1);
        assert!(new_lint.regressions[0].contains("lock-order"));
    }

    #[test]
    fn tally_includes_zeroes() {
        let findings = vec![Finding {
            lint: "determinism",
            path: "crates/core/src/cram.rs".to_string(),
            line: 3,
            message: "m".to_string(),
        }];
        let t = tally(&["determinism", "panic-freedom"], &findings);
        assert_eq!(t.get("determinism"), Some(&1));
        assert_eq!(t.get("panic-freedom"), Some(&0));
    }

    #[test]
    fn findings_json_escapes_and_lists() {
        let findings = vec![Finding {
            lint: "telemetry-schema",
            path: "crates/core/src/x.rs".to_string(),
            line: 7,
            message: "unknown name `a\"b`".to_string(),
        }];
        let counts = tally(&["telemetry-schema"], &findings);
        let json = render_findings_json(&counts, &findings);
        assert!(json.contains("\"schema\": \"greenps-analysis/1\""));
        assert!(json.contains("\\\"b"));
        assert!(json.contains("\"line\": 7"));
    }
}
