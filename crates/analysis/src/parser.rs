//! A recursive-descent item/expression parser over the token stream.
//!
//! Built on [`crate::lexer`], this recovers just enough structure for
//! interprocedural analysis: function items with their module paths,
//! impl blocks (inherent and trait) with method receivers, struct
//! field types, and the call / method-call / macro expressions inside
//! each function body. It is not a full Rust parser — generics are
//! skipped, patterns are reduced to their first identifier, and types
//! are reduced to a *head* identifier (`&mut Vec<GifKey>` → `Vec`,
//! `Box<dyn Closeness>` → `Closeness`) — but it never fails: unknown
//! constructs are skipped token-wise, so analysis degrades to "no
//! information" instead of erroring.
//!
//! Everything downstream (the call graph and the interprocedural
//! passes) consumes [`ParsedFile`]s; see [`crate::callgraph`].

use crate::lexer::{self, Token, TokenKind};
use crate::SourceFile;

/// Item visibility, reduced to what the analyses need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Plain `pub`.
    Public,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Crate,
    /// No visibility modifier.
    Private,
}

/// Kind of a named type item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct`.
    Struct,
    /// `enum` or `union`.
    Enum,
    /// `trait`.
    Trait,
}

/// A named type (struct/enum/trait) with its field types when known.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Struct, enum or trait.
    pub kind: TypeKind,
    /// Bare type name (no module path).
    pub name: String,
    /// `(field name, type head)` pairs for named-field structs.
    pub fields: Vec<(String, String)>,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// Receiver shape of a method call, as far as tokens reveal it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.m(…)`.
    SelfDirect,
    /// `self.field.m(…)` — carries the field name.
    SelfField(String),
    /// `ident.m(…)` — a local variable or parameter.
    Var(String),
    /// Anything else (chained calls, literals, nested fields…).
    Unknown,
}

/// What a call expression targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::f(…)` — the `::`-separated path segments.
    Path(Vec<String>),
    /// `recv.m(…)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver shape.
        receiver: Receiver,
    },
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Call target.
    pub callee: Callee,
    /// Byte offset of the call in the source file.
    pub offset: usize,
}

/// One macro invocation (`name!…`) inside a function body.
#[derive(Debug, Clone)]
pub struct MacroSite {
    /// Macro name (without `!`).
    pub name: String,
    /// Byte offset of the invocation.
    pub offset: usize,
}

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Fully qualified name: `crate::module::[Type::]name`.
    pub qualified: String,
    /// Impl type head for methods/associated fns (`impl Engine` →
    /// `Engine`); for trait-declaration methods this is the trait name.
    pub self_ty: Option<String>,
    /// Trait being implemented (`impl Closeness for X`) or declared.
    pub trait_name: Option<String>,
    /// True when the parameter list has a `self` receiver.
    pub has_self: bool,
    /// Item visibility.
    pub vis: Visibility,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte span of the body braces, `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// `(name, type head)` of each non-self parameter.
    pub params: Vec<(String, String)>,
    /// Return type head, when declared.
    pub ret: Option<String>,
    /// `(name, type head)` of explicitly typed `let` bindings, in
    /// lexical order.
    pub lets: Vec<(String, String)>,
    /// Call expressions in the body (closures included, nested fns
    /// excluded — those are separate items).
    pub calls: Vec<CallSite>,
    /// Macro invocations in the body.
    pub macros: Vec<MacroSite>,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// Parse result of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Type items, in source order.
    pub types: Vec<TypeItem>,
}

/// Keywords that look like calls when followed by `(`.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "ref", "mut", "let", "unsafe", "where", "dyn", "impl", "fn", "use", "pub", "await",
];

/// Maps a workspace-relative file path to `(crate segment, modules)`,
/// e.g. `crates/core/src/cram.rs` → `("greenps_core", ["cram"])` and
/// `src/lib.rs` → `("greenps", [])`.
pub fn module_path(path: &str) -> (String, Vec<String>) {
    let (crate_name, rest) = if let Some(rest) = path.strip_prefix("crates/") {
        match rest.split_once('/') {
            Some((dir, rest)) => (format!("greenps_{}", dir.replace('-', "_")), rest),
            None => ("greenps".to_string(), rest),
        }
    } else {
        ("greenps".to_string(), path)
    };
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut modules: Vec<String> = Vec::new();
    for seg in rest.split('/') {
        if seg == "lib" || seg == "main" || seg == "mod" || seg.is_empty() {
            continue;
        }
        modules.push(seg.to_string());
    }
    // `src/<dir>/mod.rs` keeps the dir; `src/<dir>/<m>.rs` keeps both —
    // handled by the split above since `mod` is dropped and dirs kept.
    (crate_name, modules)
}

/// Reduces a type token slice to its head identifier, unwrapping
/// references, parens, `dyn`/`impl`, and the std smart pointers
/// (`Box`/`Rc`/`Arc`) whose methods auto-deref to the inner type.
pub fn type_head(toks: &[&Token<'_>]) -> Option<String> {
    let mut i = 0;
    loop {
        let t = toks.get(i)?;
        if t.is_punct('&')
            || t.is_punct('(')
            || t.is_punct('[')
            || t.is_punct('\'')
            || t.kind == TokenKind::Lifetime
        {
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident {
            match t.text {
                "mut" | "dyn" | "impl" | "const" => {
                    i += 1;
                    continue;
                }
                "Box" | "Rc" | "Arc" => {
                    // Unwrap one generic level: `Box<dyn T>` → `T`.
                    if toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
                        i += 2;
                        continue;
                    }
                    return Some(t.text.to_string());
                }
                _ => {
                    // Path types: take the LAST segment before generics,
                    // e.g. `crate::engine::PairCache<K>` → `PairCache`.
                    let mut head = t.text;
                    let mut j = i + 1;
                    while toks.get(j).is_some_and(|p| p.is_punct(':'))
                        && toks.get(j + 1).is_some_and(|p| p.is_punct(':'))
                        && toks.get(j + 2).is_some_and(|p| p.kind == TokenKind::Ident)
                    {
                        head = toks[j + 2].text;
                        j += 3;
                    }
                    return Some(head.to_string());
                }
            }
        }
        return None;
    }
}

/// Parses one source file. Never fails; constructs the parser does not
/// understand are skipped.
pub fn parse_file(src: &SourceFile) -> ParsedFile {
    let all = lexer::tokenize(&src.content);
    let test_regions = lexer::test_regions(&all);
    let code: Vec<&Token<'_>> = lexer::code(&all);
    let (crate_name, modules) = module_path(&src.path);
    let mut out = ParsedFile::default();
    let mut p = Parser {
        toks: &code,
        i: 0,
        src: &src.content,
        test_regions: &test_regions,
        crate_name,
        out: &mut out,
    };
    let mut modules = modules;
    p.items(&mut modules, None, usize::MAX);
    out
}

/// Impl-block context while parsing items.
#[derive(Debug, Clone)]
struct ImplCtx {
    self_ty: String,
    trait_name: Option<String>,
}

struct Parser<'a, 'b> {
    toks: &'b [&'b Token<'a>],
    i: usize,
    src: &'a str,
    test_regions: &'b [(usize, usize)],
    crate_name: String,
    out: &'b mut ParsedFile,
}

impl<'a> Parser<'a, '_> {
    fn at(&self, i: usize) -> Option<&Token<'a>> {
        self.toks.get(i).copied()
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_ident(kw))
    }

    fn is_p(&self, i: usize, c: char) -> bool {
        self.at(i).is_some_and(|t| t.is_punct(c))
    }

    /// Index just past the group opened by the delimiter at `open`
    /// (`(`/`[`/`{`), i.e. past its matching closer.
    fn skip_group(&self, open: usize) -> usize {
        let (o, c) = match self.at(open) {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut j = open;
        while let Some(t) = self.at(j) {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Index just past a `<…>` generics group starting at `open`
    /// (which must be `<`). `->` inside (fn-trait bounds) is handled.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while let Some(t) = self.at(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                // `->` return arrows inside bounds don't close angles.
                let arrow = j > 0
                    && self
                        .at(j - 1)
                        .is_some_and(|p| p.is_punct('-') && p.end == t.start);
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    fn line_of(&self, offset: usize) -> usize {
        crate::line_of(self.src, offset)
    }

    fn in_test(&self, offset: usize) -> bool {
        lexer::in_regions(offset, self.test_regions)
    }

    /// Parses items until `limit` (exclusive token index) or EOF.
    fn items(&mut self, modules: &mut Vec<String>, impl_ctx: Option<&ImplCtx>, limit: usize) {
        let mut vis = Visibility::Private;
        while self.i < self.toks.len().min(limit) {
            let t = self.toks[self.i];
            if t.is_ident("pub") {
                vis = if self.is_p(self.i + 1, '(') {
                    self.i = self.skip_group(self.i + 1);
                    Visibility::Crate
                } else {
                    self.i += 1;
                    Visibility::Public
                };
                continue;
            }
            if t.is_ident("mod")
                && self
                    .at(self.i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
            {
                let name = self.at(self.i + 1).map(|n| n.text.to_string());
                if self.is_p(self.i + 2, '{') {
                    let end = self.skip_group(self.i + 2);
                    self.i += 3; // into the block
                    if let Some(name) = name {
                        modules.push(name);
                        self.items(modules, impl_ctx, end - 1);
                        modules.pop();
                    }
                    self.i = end;
                } else {
                    self.i += 2; // `mod name;`
                }
                vis = Visibility::Private;
                continue;
            }
            if t.is_ident("impl") {
                self.i += 1;
                if self.is_p(self.i, '<') {
                    self.i = self.skip_angles(self.i);
                }
                // First type path: either the impl type or the trait.
                let first = self.type_path();
                let ctx = if self.is_kw(self.i, "for") {
                    self.i += 1;
                    let ty = self.type_path();
                    ImplCtx {
                        self_ty: ty.unwrap_or_default(),
                        trait_name: first,
                    }
                } else {
                    ImplCtx {
                        self_ty: first.unwrap_or_default(),
                        trait_name: None,
                    }
                };
                // Skip where-clause to the block.
                while self.i < self.toks.len() && !self.is_p(self.i, '{') {
                    self.i += 1;
                }
                if self.is_p(self.i, '{') {
                    let end = self.skip_group(self.i);
                    self.i += 1;
                    self.items(modules, Some(&ctx), end - 1);
                    self.i = end;
                }
                vis = Visibility::Private;
                continue;
            }
            if t.is_ident("trait")
                && self
                    .at(self.i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
            {
                let name = self.toks[self.i + 1].text.to_string();
                self.out.types.push(TypeItem {
                    kind: TypeKind::Trait,
                    name: name.clone(),
                    fields: Vec::new(),
                    line: self.line_of(t.start),
                });
                self.i += 2;
                while self.i < self.toks.len() && !self.is_p(self.i, '{') && !self.is_p(self.i, ';')
                {
                    if self.is_p(self.i, '<') {
                        self.i = self.skip_angles(self.i);
                    } else {
                        self.i += 1;
                    }
                }
                if self.is_p(self.i, '{') {
                    let end = self.skip_group(self.i);
                    self.i += 1;
                    // Trait methods: self_ty = trait name, trait = trait.
                    let ctx = ImplCtx {
                        self_ty: name.clone(),
                        trait_name: Some(name),
                    };
                    self.items(modules, Some(&ctx), end - 1);
                    self.i = end;
                }
                vis = Visibility::Private;
                continue;
            }
            if (t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union"))
                && self
                    .at(self.i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
            {
                self.struct_or_enum(t.is_ident("struct"));
                vis = Visibility::Private;
                continue;
            }
            if t.is_ident("fn") {
                self.fn_item(modules, impl_ctx, vis);
                vis = Visibility::Private;
                continue;
            }
            // Skip other groups wholesale (const initializers, arrays…).
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                self.i = self.skip_group(self.i);
                continue;
            }
            if t.is_punct(';') {
                vis = Visibility::Private;
            }
            self.i += 1;
        }
    }

    /// Parses a type path at the cursor, returning its head ident and
    /// leaving the cursor after the path (generics skipped).
    fn type_path(&mut self) -> Option<String> {
        let mut head: Option<String> = None;
        while let Some(t) = self.at(self.i) {
            if t.kind == TokenKind::Ident && !t.is_ident("for") && !t.is_ident("where") {
                head = Some(t.text.to_string());
                self.i += 1;
                if self.is_p(self.i, ':') && self.is_p(self.i + 1, ':') {
                    self.i += 2;
                    continue;
                }
                if self.is_p(self.i, '<') {
                    self.i = self.skip_angles(self.i);
                }
                break;
            }
            if t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_punct('(') {
                if t.is_punct('(') {
                    self.i = self.skip_group(self.i);
                } else {
                    self.i += 1;
                }
                continue;
            }
            break;
        }
        head
    }

    fn struct_or_enum(&mut self, is_struct: bool) {
        let kw = self.toks[self.i];
        let name = self.toks[self.i + 1].text.to_string();
        let line = self.line_of(kw.start);
        self.i += 2;
        if self.is_p(self.i, '<') {
            self.i = self.skip_angles(self.i);
        }
        while self.i < self.toks.len()
            && !self.is_p(self.i, '{')
            && !self.is_p(self.i, '(')
            && !self.is_p(self.i, ';')
        {
            self.i += 1;
        }
        let mut fields = Vec::new();
        if self.is_p(self.i, '{') {
            let end = self.skip_group(self.i);
            if is_struct {
                // Named fields: `name: Type,` at depth 1.
                let mut j = self.i + 1;
                while j < end - 1 {
                    let t = self.toks[j];
                    if t.kind == TokenKind::Ident
                        && !t.is_ident("pub")
                        && self.is_p(j + 1, ':')
                        && !self.is_p(j + 2, ':')
                    {
                        // Collect the type tokens to the field-level comma.
                        let mut k = j + 2;
                        let ty_start = k;
                        while k < end - 1 {
                            let tt = self.toks[k];
                            if tt.is_punct(',') {
                                break;
                            }
                            if tt.is_punct('<') {
                                k = self.skip_angles(k);
                            } else if tt.is_punct('(') || tt.is_punct('[') || tt.is_punct('{') {
                                k = self.skip_group(k);
                            } else {
                                k += 1;
                            }
                        }
                        if let Some(head) = type_head(&self.toks[ty_start..k]) {
                            fields.push((t.text.to_string(), head));
                        }
                        j = k;
                        continue;
                    }
                    if t.is_punct('(') || t.is_punct('[') {
                        j = self.skip_group(j);
                        continue;
                    }
                    j += 1;
                }
            }
            self.i = end;
        } else if self.is_p(self.i, '(') {
            self.i = self.skip_group(self.i); // tuple struct
        }
        self.out.types.push(TypeItem {
            kind: if is_struct {
                TypeKind::Struct
            } else {
                TypeKind::Enum
            },
            name,
            fields,
            line,
        });
    }

    fn fn_item(&mut self, modules: &mut Vec<String>, impl_ctx: Option<&ImplCtx>, vis: Visibility) {
        let fn_tok = self.toks[self.i];
        // `fn(` is a fn-pointer type, not an item.
        let Some(name_tok) = self.at(self.i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            self.i += 1;
            return;
        };
        let name = name_tok.text.to_string();
        self.i += 2;
        if self.is_p(self.i, '<') {
            self.i = self.skip_angles(self.i);
        }
        // Parameters.
        let mut has_self = false;
        let mut params: Vec<(String, String)> = Vec::new();
        if self.is_p(self.i, '(') {
            let end = self.skip_group(self.i);
            let mut j = self.i + 1;
            // Split on commas at group depth 0 (relative to the list).
            let mut seg_start = j;
            let mut segments: Vec<(usize, usize)> = Vec::new();
            while j < end - 1 {
                let t = self.toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    j = self.skip_group(j);
                    continue;
                }
                if t.is_punct('<') {
                    j = self.skip_angles(j);
                    continue;
                }
                if t.is_punct(',') {
                    segments.push((seg_start, j));
                    seg_start = j + 1;
                }
                j += 1;
            }
            if seg_start < end - 1 {
                segments.push((seg_start, end - 1));
            }
            for (s, e) in segments {
                let seg = &self.toks[s..e];
                if seg.iter().take(3).any(|t| t.is_ident("self")) {
                    has_self = true;
                    continue;
                }
                // First ident = pattern name; type after the first `:`.
                let pat = seg
                    .iter()
                    .find(|t| {
                        t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("ref")
                    })
                    .map(|t| t.text.to_string());
                let colon = seg.iter().position(|t| t.is_punct(':'));
                if let (Some(pat), Some(c)) = (pat, colon) {
                    if let Some(head) = type_head(&seg[c + 1..]) {
                        params.push((pat, head));
                    }
                }
            }
            self.i = end;
        }
        // Return type.
        let mut ret = None;
        if self.is_p(self.i, '-') && self.is_p(self.i + 1, '>') {
            self.i += 2;
            let ty_start = self.i;
            while self.i < self.toks.len() {
                let t = self.toks[self.i];
                if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                    break;
                }
                if t.is_punct('<') {
                    self.i = self.skip_angles(self.i);
                } else if t.is_punct('(') || t.is_punct('[') {
                    self.i = self.skip_group(self.i);
                } else {
                    self.i += 1;
                }
            }
            ret = type_head(&self.toks[ty_start..self.i]);
        }
        // Where clause.
        while self.i < self.toks.len() && !self.is_p(self.i, '{') && !self.is_p(self.i, ';') {
            if self.is_p(self.i, '<') {
                self.i = self.skip_angles(self.i);
            } else if self.is_p(self.i, '(') || self.is_p(self.i, '[') {
                self.i = self.skip_group(self.i);
            } else {
                self.i += 1;
            }
        }

        let mut item = FnItem {
            name: name.clone(),
            qualified: String::new(),
            self_ty: impl_ctx
                .map(|c| c.self_ty.clone())
                .filter(|s| !s.is_empty()),
            trait_name: impl_ctx.and_then(|c| c.trait_name.clone()),
            has_self,
            vis,
            line: self.line_of(fn_tok.start),
            body: None,
            params,
            ret,
            lets: Vec::new(),
            calls: Vec::new(),
            macros: Vec::new(),
            is_test: self.in_test(fn_tok.start),
        };
        let mut q = vec![self.crate_name.clone()];
        q.extend(modules.iter().cloned());
        if let Some(ty) = &item.self_ty {
            q.push(ty.clone());
        }
        q.push(name);
        item.qualified = q.join("::");

        if self.is_p(self.i, '{') {
            let end = self.skip_group(self.i);
            item.body = Some((self.toks[self.i].start, self.toks[end - 1].end));
            let body_start = self.i + 1;
            self.i = end;
            // Push the item first so nested fns appear after it.
            let idx = self.out.fns.len();
            self.out.fns.push(item);
            let mut calls = Vec::new();
            let mut macros = Vec::new();
            let mut lets = Vec::new();
            self.body_facts(
                body_start,
                end - 1,
                modules,
                &mut calls,
                &mut macros,
                &mut lets,
            );
            let it = &mut self.out.fns[idx];
            it.calls = calls;
            it.macros = macros;
            it.lets = lets;
        } else {
            if self.is_p(self.i, ';') {
                self.i += 1;
            }
            self.out.fns.push(item);
        }
    }

    /// Extracts calls, macros and typed lets from the token range
    /// `[start, end)`; nested `fn` items are parsed as separate items
    /// and excluded from the enclosing body's facts.
    #[allow(clippy::too_many_arguments)]
    fn body_facts(
        &mut self,
        start: usize,
        end: usize,
        modules: &mut Vec<String>,
        calls: &mut Vec<CallSite>,
        macros: &mut Vec<MacroSite>,
        lets: &mut Vec<(String, String)>,
    ) {
        let mut j = start;
        while j < end {
            let t = self.toks[j];
            // Nested function item.
            if t.is_ident("fn")
                && self.at(j + 1).is_some_and(|n| n.kind == TokenKind::Ident)
                && !self.at(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
            {
                let save = self.i;
                self.i = j;
                self.fn_item(modules, None, Visibility::Private);
                j = self.i;
                self.i = save;
                continue;
            }
            // Typed let binding: `let [mut] name : Type = …`.
            if t.is_ident("let") {
                let mut k = j + 1;
                if self.is_kw(k, "mut") {
                    k += 1;
                }
                if self.at(k).is_some_and(|n| n.kind == TokenKind::Ident)
                    && self.is_p(k + 1, ':')
                    && !self.is_p(k + 2, ':')
                {
                    let name = self.toks[k].text.to_string();
                    let ty_start = k + 2;
                    let mut m = ty_start;
                    while m < end {
                        let tt = self.toks[m];
                        if tt.is_punct('=') || tt.is_punct(';') {
                            break;
                        }
                        if tt.is_punct('<') {
                            m = self.skip_angles(m);
                        } else if tt.is_punct('(') || tt.is_punct('[') || tt.is_punct('{') {
                            m = self.skip_group(m);
                        } else {
                            m += 1;
                        }
                    }
                    if let Some(head) = type_head(&self.toks[ty_start..m]) {
                        lets.push((name, head));
                    }
                }
                j += 1;
                continue;
            }
            // Method call: `.name(` or `.name::<…>(`.
            if t.is_punct('.') && self.at(j + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
                let name_tok = self.toks[j + 1];
                let mut k = j + 2;
                if self.is_p(k, ':') && self.is_p(k + 1, ':') && self.is_p(k + 2, '<') {
                    k = self.skip_angles(k + 2);
                }
                if self.is_p(k, '(') {
                    calls.push(CallSite {
                        callee: Callee::Method {
                            name: name_tok.text.to_string(),
                            receiver: self.receiver_of(j),
                        },
                        offset: name_tok.start,
                    });
                }
                j += 2;
                continue;
            }
            // Path call or macro, starting at an ident that does not
            // continue a path or follow a dot.
            if t.kind == TokenKind::Ident
                && !EXPR_KEYWORDS.contains(&t.text)
                && !self.prev_is_path_or_dot(j)
            {
                let mut segs = vec![t.text.to_string()];
                let mut k = j + 1;
                loop {
                    if self.is_p(k, ':') && self.is_p(k + 1, ':') {
                        if self.at(k + 2).is_some_and(|n| n.kind == TokenKind::Ident) {
                            segs.push(self.toks[k + 2].text.to_string());
                            k += 3;
                            continue;
                        }
                        if self.is_p(k + 2, '<') {
                            k = self.skip_angles(k + 2);
                            continue;
                        }
                    }
                    break;
                }
                if self.is_p(k, '!') && segs.len() == 1 {
                    macros.push(MacroSite {
                        name: segs.pop().unwrap_or_default(),
                        offset: t.start,
                    });
                } else if self.is_p(k, '(') {
                    calls.push(CallSite {
                        callee: Callee::Path(segs),
                        offset: t.start,
                    });
                }
                j = k.max(j + 1);
                continue;
            }
            j += 1;
        }
    }

    /// True when the token before `j` continues a path (`::`) or is a
    /// field/method dot — i.e. an ident at `j` is not a path start.
    fn prev_is_path_or_dot(&self, j: usize) -> bool {
        if j == 0 {
            return false;
        }
        let p = self.toks[j - 1];
        p.is_punct('.') || (p.is_punct(':') && j >= 2 && self.toks[j - 2].is_punct(':'))
    }

    /// Receiver shape of the method call whose dot is at index `dot`.
    fn receiver_of(&self, dot: usize) -> Receiver {
        // Walk back over an `a.b.c` chain.
        let mut chain: Vec<&str> = Vec::new();
        let mut j = dot;
        loop {
            if j == 0 {
                break;
            }
            let prev = self.toks[j - 1];
            if prev.kind == TokenKind::Ident && !EXPR_KEYWORDS.contains(&prev.text) {
                chain.push(prev.text);
                if j >= 2 && self.toks[j - 2].is_punct('.') {
                    j -= 2;
                    continue;
                }
                // Path receiver (`a::b.m(…)`) — treat as unknown.
                if j >= 2 && self.toks[j - 2].is_punct(':') {
                    return Receiver::Unknown;
                }
                break;
            }
            return Receiver::Unknown;
        }
        chain.reverse();
        match chain.as_slice() {
            ["self"] => Receiver::SelfDirect,
            ["self", field] => Receiver::SelfField((*field).to_string()),
            [var] => Receiver::Var((*var).to_string()),
            _ => Receiver::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> ParsedFile {
        parse_file(&SourceFile::new(path, src))
    }

    fn find<'a>(p: &'a ParsedFile, q: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.qualified == q)
            .unwrap_or_else(|| panic!("missing {q}; have {:?}", qualified(p)))
    }

    fn qualified(p: &ParsedFile) -> Vec<&str> {
        p.fns.iter().map(|f| f.qualified.as_str()).collect()
    }

    #[test]
    fn module_paths_from_file_paths() {
        assert_eq!(
            module_path("crates/core/src/cram.rs"),
            ("greenps_core".into(), vec!["cram".into()])
        );
        assert_eq!(
            module_path("crates/core/src/lib.rs"),
            ("greenps_core".into(), vec![])
        );
        assert_eq!(module_path("src/lib.rs"), ("greenps".into(), vec![]));
        assert_eq!(
            module_path("crates/profile/src/sub/mod.rs"),
            ("greenps_profile".into(), vec!["sub".into()])
        );
        assert_eq!(
            module_path("crates/profile/src/sub/inner.rs"),
            ("greenps_profile".into(), vec!["sub".into(), "inner".into()])
        );
    }

    #[test]
    fn free_fns_and_inline_modules() {
        let p = parse(
            "crates/core/src/x.rs",
            "pub fn top() {}\nmod inner { pub(crate) fn deep(a: u64) -> usize { 0 } }",
        );
        let top = find(&p, "greenps_core::x::top");
        assert_eq!(top.vis, Visibility::Public);
        assert!(top.body.is_some());
        let deep = find(&p, "greenps_core::x::inner::deep");
        assert_eq!(deep.vis, Visibility::Crate);
        assert_eq!(deep.params, vec![("a".to_string(), "u64".to_string())]);
        assert_eq!(deep.ret.as_deref(), Some("usize"));
    }

    #[test]
    fn impl_blocks_and_receivers() {
        let p = parse(
            "crates/core/src/x.rs",
            r#"
            struct Engine { pool: Pool, cache: PairCache<u64> }
            impl Engine {
                pub fn run(&mut self) { self.pool.scan(); self.step(); }
                fn step(&mut self) {}
            }
            impl std::fmt::Display for Engine {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
            "#,
        );
        let run = find(&p, "greenps_core::x::Engine::run");
        assert!(run.has_self);
        assert_eq!(run.vis, Visibility::Public);
        assert_eq!(run.self_ty.as_deref(), Some("Engine"));
        assert_eq!(run.trait_name, None);
        let fmt = find(&p, "greenps_core::x::Engine::fmt");
        assert_eq!(fmt.trait_name.as_deref(), Some("Display"));
        // Struct fields with generic types reduce to heads.
        let ty = p.types.iter().find(|t| t.name == "Engine").unwrap();
        assert_eq!(
            ty.fields,
            vec![
                ("pool".to_string(), "Pool".to_string()),
                ("cache".to_string(), "PairCache".to_string())
            ]
        );
        // Receivers.
        let recvs: Vec<_> = run.calls.iter().map(|c| &c.callee).collect();
        assert_eq!(
            recvs,
            vec![
                &Callee::Method {
                    name: "scan".into(),
                    receiver: Receiver::SelfField("pool".into())
                },
                &Callee::Method {
                    name: "step".into(),
                    receiver: Receiver::SelfDirect
                },
            ]
        );
    }

    #[test]
    fn trait_decls_and_default_methods() {
        let p = parse(
            "crates/simnet/src/x.rs",
            "pub trait Process { fn on_message(&mut self, m: Msg); fn tick(&self) -> u64 { 0 } }",
        );
        let decl = find(&p, "greenps_simnet::x::Process::on_message");
        assert!(decl.body.is_none());
        assert_eq!(decl.trait_name.as_deref(), Some("Process"));
        let tick = find(&p, "greenps_simnet::x::Process::tick");
        assert!(tick.body.is_some());
    }

    #[test]
    fn path_calls_turbofish_and_macros() {
        let p = parse(
            "crates/core/src/x.rs",
            r#"
            fn f() {
                crate::engine::shard_map(items, 4, g);
                Vec::<u64>::with_capacity(9);
                collect::<Vec<_>>();
                format!("x {}", helper(1));
                let v = vec![1, 2];
            }
            "#,
        );
        let f = find(&p, "greenps_core::x::f");
        let paths: Vec<Vec<String>> = f
            .calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Path(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        assert!(paths.contains(&vec!["crate".into(), "engine".into(), "shard_map".into()]));
        assert!(paths.contains(&vec!["Vec".into(), "with_capacity".into()]));
        assert!(paths.contains(&vec!["collect".into()]));
        assert!(paths.contains(&vec!["helper".into()]));
        let macros: Vec<&str> = f.macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(macros, vec!["format", "vec"]);
    }

    #[test]
    fn closures_attribute_calls_to_enclosing_fn() {
        let p = parse(
            "crates/core/src/x.rs",
            r#"
            fn outer(xs: &[u64]) -> Vec<u64> {
                xs.iter().map(|x: &u64| helper(*x)).filter(|v| inner.check(v)).collect()
            }
            "#,
        );
        let f = find(&p, "greenps_core::x::outer");
        let names: Vec<String> = f
            .calls
            .iter()
            .map(|c| match &c.callee {
                Callee::Path(p) => p.join("::"),
                Callee::Method { name, .. } => format!(".{name}"),
            })
            .collect();
        assert_eq!(
            names,
            vec![".iter", ".map", "helper", ".filter", ".check", ".collect"]
        );
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let p = parse(
            "crates/core/src/x.rs",
            "fn outer() { fn inner() { deep(); } shallow(); }",
        );
        let outer = find(&p, "greenps_core::x::outer");
        let inner = find(&p, "greenps_core::x::inner");
        let call_names = |f: &FnItem| -> Vec<String> {
            f.calls
                .iter()
                .filter_map(|c| match &c.callee {
                    Callee::Path(p) => Some(p.join("::")),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(call_names(outer), vec!["shallow"]);
        assert_eq!(call_names(inner), vec!["deep"]);
    }

    #[test]
    fn nested_raw_strings_in_call_args() {
        let p = parse(
            "crates/core/src/x.rs",
            r###"fn f() { g(r#"a "quoted" arg with } brace"#, h(1)); }"###,
        );
        let f = find(&p, "greenps_core::x::f");
        let paths: Vec<String> = f
            .calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Path(p) => Some(p.join("::")),
                _ => None,
            })
            .collect();
        assert_eq!(paths, vec!["g", "h"]);
    }

    #[test]
    fn method_chains_have_unknown_receiver_after_calls() {
        let p = parse(
            "crates/core/src/x.rs",
            "fn f(pool: &Pool) { pool.poset().children(3); pool.scan(); }",
        );
        let f = find(&p, "greenps_core::x::f");
        let m: Vec<(String, Receiver)> = f
            .calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Method { name, receiver } => Some((name.clone(), receiver.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            m,
            vec![
                ("poset".to_string(), Receiver::Var("pool".to_string())),
                ("children".to_string(), Receiver::Unknown),
                ("scan".to_string(), Receiver::Var("pool".to_string())),
            ]
        );
    }

    #[test]
    fn typed_lets_and_param_heads() {
        let p = parse(
            "crates/core/src/x.rs",
            r#"
            fn f(m: &dyn Closeness, xs: &mut Vec<(u64, f64)>, b: Box<dyn Matcher>) {
                let n: usize = xs.len();
                let mut acc: f64 = 0.0;
                let untyped = 3;
            }
            "#,
        );
        let f = find(&p, "greenps_core::x::f");
        assert_eq!(
            f.params,
            vec![
                ("m".to_string(), "Closeness".to_string()),
                ("xs".to_string(), "Vec".to_string()),
                ("b".to_string(), "Matcher".to_string()),
            ]
        );
        assert_eq!(
            f.lets,
            vec![
                ("n".to_string(), "usize".to_string()),
                ("acc".to_string(), "f64".to_string()),
            ]
        );
    }

    #[test]
    fn cfg_test_regions_mark_items() {
        let p = parse(
            "crates/core/src/x.rs",
            "fn lib_fn() {}\n#[cfg(test)]\nmod tests { fn test_helper() {} }",
        );
        assert!(!find(&p, "greenps_core::x::lib_fn").is_test);
        assert!(find(&p, "greenps_core::x::tests::test_helper").is_test);
    }

    #[test]
    fn generic_fns_with_where_clauses_and_fn_bounds() {
        let p = parse(
            "crates/core/src/x.rs",
            r#"
            pub fn shard_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
            where
                T: Sync,
                F: Fn(&T) -> R + Sync,
            {
                run(items)
            }
            "#,
        );
        let f = find(&p, "greenps_core::x::shard_map");
        assert_eq!(f.ret.as_deref(), Some("Vec"));
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1], ("threads".to_string(), "usize".to_string()));
        assert_eq!(f.calls.len(), 1);
    }
}
