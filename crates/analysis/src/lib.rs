//! Workspace static-analysis engine (DESIGN.md §9).
//!
//! A std-only token-level [`lexer`] feeds seven lints over the
//! workspace source tree:
//!
//! - [`panic_freedom`] — forbids `unwrap`/`expect`/panicking macros and
//!   `[idx]` indexing in non-test library code of the runtime crates,
//!   modulo a justified allowlist.
//! - [`layering`] — enforces the DESIGN.md §3 crate dependency DAG
//!   from both `Cargo.toml` declarations and `use greenps_*` imports.
//! - [`lock_hygiene`] — forbids `std::sync::Mutex`/`RwLock` (the
//!   workspace standardizes on `parking_lot`) and flags lock guards
//!   held across crossbeam channel `send`/`recv` in the broker crate.
//! - [`attributes`] — requires `#![forbid(unsafe_code)]` and
//!   `#![deny(missing_docs)]` on every first-party crate root.
//! - [`determinism`] — forbids unordered `HashMap`/`HashSet` iteration
//!   and wall-clock reads in the deterministic crates.
//! - [`telemetry_schema`] — cross-checks every registered instrument
//!   name against `analysis/telemetry-schema.txt`.
//! - [`lock_order`] — builds the static lock-acquisition graph and
//!   fails on ordering cycles.
//!
//! On top of the lexer, a recursive-descent item [`parser`] recovers
//! functions, call sites, and type heads, and [`callgraph`] resolves
//! them into a deterministic workspace call graph (exported as
//! byte-stable `greenps-callgraph/1` JSON). Three interprocedural
//! passes run over that graph (DESIGN.md §9.2):
//!
//! - [`panic_reach`] — which public endpoints of the runtime crates can
//!   reach a panicking site, with witness paths; tracked via the
//!   ratchet counter `panic.reachable-endpoints` rather than enforced
//!   per finding.
//! - [`hot_path_alloc`] — allocation calls reachable from the declared
//!   steady-state hot paths (`analysis/hot-paths.txt`), modulo a
//!   budgeted allowlist.
//! - [`cast_safety`] — narrowing / sign-flipping / float→int `as`
//!   casts whose source type can be inferred, modulo a budgeted
//!   allowlist.
//!
//! [`baseline`] adds the findings ratchet (`analysis/baseline.json`):
//! counts may only fall. Everything operates on `(path, content)` pairs
//! so each lint is unit testable with synthetic snippets; the binary in
//! `main.rs` wires them to the real tree.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod attributes;
pub mod baseline;
pub mod callgraph;
pub mod cancel_responsive;
pub mod cast_safety;
pub mod cfg;
pub mod determinism;
pub mod guard_scope;
pub mod hot_path_alloc;
pub mod layering;
pub mod lexer;
pub mod lock_hygiene;
pub mod lock_order;
pub mod loop_growth;
pub mod panic_freedom;
pub mod panic_reach;
pub mod parser;
pub mod sarif;
pub mod source;
pub mod telemetry_schema;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint violation, pointing at a repo-relative path and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint produced this finding (e.g. `panic-freedom`).
    pub lint: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 when the finding is file-level).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.lint, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.lint, self.message
            )
        }
    }
}

/// A source file loaded for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Raw file contents.
    pub content: String,
}

impl SourceFile {
    /// Convenience constructor for tests and synthetic snippets.
    pub fn new(path: &str, content: &str) -> Self {
        SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }
    }

    /// The crate short name (`core` for `crates/core/src/x.rs`), if the
    /// file lives under `crates/`.
    pub fn crate_name(&self) -> Option<&str> {
        let rest = self.path.strip_prefix("crates/")?;
        rest.split('/').next()
    }

    /// True when the file is library code: under `src/` and not under a
    /// `tests/`, `benches/`, `examples/` or `src/bin/` directory.
    pub fn is_library_code(&self) -> bool {
        self.path.contains("/src/")
            && !self.path.contains("/tests/")
            && !self.path.contains("/benches/")
            && !self.path.contains("/examples/")
            && !self.path.contains("/src/bin/")
    }
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Loads every `.rs` file under `root/<sub>` (recursively) as
/// repo-relative [`SourceFile`]s, sorted by path for stable output.
pub fn load_sources(root: &Path, sub: &str) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let base = root.join(sub);
    if base.exists() {
        walk(root, &base, &mut out)?;
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            // target/ can appear under crate dirs when building in-tree.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                content: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Maps a byte offset in `text` to a 1-based line number.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Returns the full text of the line containing byte `offset`.
pub fn line_text(text: &str, offset: usize) -> &str {
    let offset = offset.min(text.len());
    let start = text[..offset].rfind('\n').map_or(0, |i| i + 1);
    let end = text[offset..].find('\n').map_or(text.len(), |i| offset + i);
    &text[start..end]
}
