//! Interprocedural pass 3: potentially lossy `as` casts (DESIGN.md
//! §9.2).
//!
//! `as` never fails — it truncates, wraps or saturates silently, which
//! is exactly how the PR-6 `shift_forward` 32-bit bug slipped in
//! (`shift as usize` truncated *before* the bounds comparison). This
//! pass flags the lossy shapes in runtime-crate library code:
//!
//! - `narrow` — the source may not fit the target width (`u64 as
//!   usize`, `usize as u32`, `f64 as f32`); `usize`/`isize` are
//!   treated as 32–64 bits, so `u32 as usize` is safe but `usize as
//!   u32` is not;
//! - `sign` — sign-crossing at equal or smaller width (`i64 as u64`,
//!   `u32 as i32`) where negative values or the upper half wrap;
//! - `float-int` — float→int casts, which truncate toward zero and
//!   saturate.
//!
//! Int→float casts are *not* flagged: `u64 as f64` above 2^53 rounds,
//! but every workspace use is telemetry/metric shaping where that is
//! harmless — a documented limit, not an oversight.
//!
//! The source type comes from a token-level inference: literal
//! suffixes, declared parameter/`let`/field types, a table of std
//! methods with fixed return types (`len` → `usize`, `as_micros` →
//! `u128`, …), and workspace function return types via the call graph.
//! When the source type cannot be pinned down the cast is skipped —
//! precision over noise. Findings are budgeted in
//! `analysis/cast-allowlist.txt` and ratcheted via `cast.findings`.

use std::collections::BTreeMap;

use crate::allowlist::{Allowlist, AllowlistSpec};
use crate::callgraph::CallGraph;
use crate::lexer::{self, Token, TokenKind};
use crate::parser::{self, FnItem};
use crate::{line_of, line_text, Finding, SourceFile};

/// Policy for `analysis/cast-allowlist.txt`.
pub const CAST_SPEC: AllowlistSpec = AllowlistSpec {
    lint: "cast-safety",
    kinds: &["narrow", "sign", "float-int"],
    budget: 5,
};

/// Crates whose library code is scanned.
pub const CHECKED_CRATES: [&str; 8] = [
    "pubsub",
    "profile",
    "core",
    "broker",
    "simnet",
    "net",
    "telemetry",
    "workload",
];

/// Std methods with a fixed primitive return type.
const STD_METHOD_RETURNS: &[(&str, &str)] = &[
    ("abs", "f64"),
    ("as_micros", "u128"),
    ("as_millis", "u128"),
    ("as_nanos", "u128"),
    ("as_secs", "u64"),
    ("as_secs_f64", "f64"),
    ("ceil", "f64"),
    ("count_ones", "u32"),
    ("count_zeros", "u32"),
    ("exp", "f64"),
    ("floor", "f64"),
    ("fract", "f64"),
    ("leading_zeros", "u32"),
    ("len", "usize"),
    ("ln", "f64"),
    ("powf", "f64"),
    ("powi", "f64"),
    ("round", "f64"),
    ("sqrt", "f64"),
    ("to_bits", "u64"),
    ("trailing_zeros", "u32"),
    ("trunc", "f64"),
];

/// `(min, max)` bit widths of an integer primitive, or `None` for
/// non-integers. `usize`/`isize` span 32–64 bits.
fn int_bits(ty: &str) -> Option<(u32, u32)> {
    Some(match ty {
        "u8" | "i8" => (8, 8),
        "u16" | "i16" => (16, 16),
        "u32" | "i32" => (32, 32),
        "u64" | "i64" => (64, 64),
        "u128" | "i128" => (128, 128),
        "usize" | "isize" => (32, 64),
        _ => return None,
    })
}

fn is_signed(ty: &str) -> bool {
    ty.starts_with('i')
}

fn is_float(ty: &str) -> bool {
    ty == "f32" || ty == "f64"
}

fn is_primitive(ty: &str) -> bool {
    int_bits(ty).is_some() || is_float(ty)
}

/// Classifies a `source as target` cast; `None` means lossless (or a
/// documented-acceptable shape like int→float).
fn classify(source: &str, target: &str) -> Option<&'static str> {
    if is_float(source) {
        if is_float(target) {
            return (source == "f64" && target == "f32").then_some("narrow");
        }
        return int_bits(target).is_some().then_some("float-int");
    }
    let (_, src_max) = int_bits(source)?;
    if is_float(target) {
        return None; // documented limit: int→float not flagged
    }
    let (tgt_min, _tgt_max) = int_bits(target)?;
    if src_max > tgt_min {
        return Some("narrow");
    }
    // Equal-or-wider target: lossy only when signedness flips and the
    // target cannot absorb the source range.
    match (is_signed(source), is_signed(target)) {
        (true, false) => Some("sign"), // negative values wrap
        (false, true) if src_max >= tgt_min => Some("sign"), // upper half wraps
        _ => None,
    }
}

/// Type environment of one function: parameters, typed lets, and the
/// enclosing impl type's fields.
struct Env<'a> {
    item: &'a FnItem,
    fields: Option<&'a BTreeMap<String, String>>,
}

impl Env<'_> {
    fn var(&self, name: &str) -> Option<&str> {
        self.item
            .lets
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .or_else(|| self.item.params.iter().find(|(n, _)| n == name))
            .map(|(_, t)| t.as_str())
    }

    fn field(&self, name: &str) -> Option<&str> {
        self.fields?.get(name).map(String::as_str)
    }
}

/// Type of a numeric literal token, from its suffix or float-ness.
fn literal_type(text: &str) -> Option<&'static str> {
    // Longest suffixes first so `1u128` is not read as `…u8`-less junk.
    for suf in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ] {
        if text.ends_with(suf) {
            return Some(suf);
        }
    }
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return None;
    }
    (text.contains('.') || text.contains('e') || text.contains('E')).then_some("f64")
}

/// Return type of a workspace method/function named `name`, when every
/// candidate agrees on one primitive head.
fn workspace_return(graph: &CallGraph, name: &str, method: bool) -> Option<String> {
    let mut ret: Option<&str> = None;
    let mut any = false;
    for n in &graph.nodes {
        if n.item.name != name || n.item.has_self != method {
            continue;
        }
        any = true;
        let r = n.item.ret.as_deref()?;
        match ret {
            None => ret = Some(r),
            Some(prev) if prev == r => {}
            Some(_) => return None,
        }
    }
    if !any {
        return None;
    }
    ret.filter(|r| is_primitive(r)).map(str::to_string)
}

/// Infers the type of the expression ending just before the `as` token
/// at `i` in `code`.
fn infer_source(code: &[&Token<'_>], i: usize, env: &Env<'_>, graph: &CallGraph) -> Option<String> {
    let prev = *code.get(i.checked_sub(1)?)?;
    if prev.kind == TokenKind::Num {
        return literal_type(prev.text).map(str::to_string);
    }
    if prev.kind == TokenKind::Ident {
        if is_primitive(prev.text) && i >= 2 && code[i - 2].is_ident("as") {
            // Cast chain: `x as u64 as u32` — source of the outer cast
            // is the inner target.
            return Some(prev.text.to_string());
        }
        if i >= 2 && code[i - 2].is_punct('.') {
            // Field access: `self.f as` / `x.f as`.
            if i >= 3 && code[i - 3].is_ident("self") {
                return env.field(prev.text).map(str::to_string);
            }
            return None;
        }
        return env.var(prev.text).map(str::to_string);
    }
    if prev.is_punct(')') {
        // Find the matching `(`.
        let mut depth = 0usize;
        let mut j = i - 1;
        loop {
            let t = code[j];
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        // Call? The token before `(` is the callee name.
        if j >= 1 && code[j - 1].kind == TokenKind::Ident {
            let callee = code[j - 1].text;
            let is_method = j >= 2 && code[j - 2].is_punct('.');
            if is_method {
                if let Some((_, r)) = STD_METHOD_RETURNS.iter().find(|(m, _)| *m == callee) {
                    return Some((*r).to_string());
                }
                return workspace_return(graph, callee, true);
            }
            if !is_expr_keyword(callee) {
                return workspace_return(graph, callee, false);
            }
        }
        // Grouping parens: a single agreeing primitive among the
        // operand types inside decides (`(hi - lo) as usize` with both
        // vars typed `u64` infers `u64`; mixed types give up).
        let mut seen: Option<String> = None;
        for k in j + 1..i - 1 {
            let t = code[k];
            let after_dot = code.get(k.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'));
            let before_paren = code.get(k + 1).is_some_and(|n| n.is_punct('('));
            let ty: Option<String> = if t.kind == TokenKind::Num {
                literal_type(t.text).map(str::to_string)
            } else if t.kind != TokenKind::Ident {
                None
            } else if after_dot && before_paren {
                // `.method(` inside the group.
                STD_METHOD_RETURNS
                    .iter()
                    .find(|(m, _)| *m == t.text)
                    .map(|(_, r)| (*r).to_string())
                    .or_else(|| workspace_return(graph, t.text, true))
            } else if after_dot {
                // `self.field` inside the group.
                code.get(k.wrapping_sub(2))
                    .is_some_and(|p| p.is_ident("self"))
                    .then(|| env.field(t.text).map(str::to_string))
                    .flatten()
            } else if before_paren {
                None // free-call results: skip, too noisy to chase here
            } else {
                env.var(t.text).map(str::to_string)
            };
            if let Some(ty) = ty {
                match &seen {
                    None => seen = Some(ty),
                    Some(prev) if *prev == ty => {}
                    Some(_) => return None, // mixed types: give up
                }
            }
        }
        return seen;
    }
    None
}

fn is_expr_keyword(s: &str) -> bool {
    matches!(s, "if" | "while" | "match" | "for" | "return" | "in")
}

/// Runs the pass over runtime-crate library code.
pub fn run(
    files: &[SourceFile],
    graph: &CallGraph,
    allowlist: &Allowlist,
    allowlist_path: &str,
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = allowlist.errors.clone();
    let mut used = vec![false; allowlist.entries.len()];

    for file in files {
        let in_scope = file
            .crate_name()
            .is_some_and(|c| CHECKED_CRATES.contains(&c))
            && file.is_library_code();
        if !in_scope {
            continue;
        }
        let tokens = lexer::tokenize(&file.content);
        let code: Vec<&Token<'_>> = lexer::code(&tokens);
        let parsed = parser::parse_file(file);
        for (i, t) in code.iter().enumerate() {
            if !t.is_ident("as") {
                continue;
            }
            let Some(target) = code.get(i + 1).filter(|n| is_primitive(n.text)) else {
                continue;
            };
            // Innermost non-test function whose body contains the cast.
            let Some(item) = parsed
                .fns
                .iter()
                .filter(|f| {
                    !f.is_test && f.body.is_some_and(|(lo, hi)| t.start >= lo && t.start < hi)
                })
                .min_by_key(|f| f.body.map(|(lo, hi)| hi - lo).unwrap_or(usize::MAX))
            else {
                continue;
            };
            let env = Env {
                item,
                fields: item
                    .self_ty
                    .as_ref()
                    .and_then(|ty| graph.types.get(ty))
                    .map(|t| &t.fields),
            };
            let Some(source) = infer_source(&code, i, &env, graph) else {
                continue;
            };
            let Some(kind) = classify(&source, target.text) else {
                continue;
            };
            let text = line_text(&file.content, t.start);
            if allowlist.covers(&mut used, &file.path, kind, text) {
                continue;
            }
            let why = match kind {
                "narrow" => "may truncate",
                "sign" => "may wrap across signedness",
                _ => "truncates toward zero and saturates",
            };
            findings.push(Finding {
                lint: "cast-safety",
                path: file.path.clone(),
                line: line_of(&file.content, t.start),
                message: format!(
                    "`{} as {}` {why} in `{}` — use `try_from`/checked conversion or allowlist with a justification",
                    source, target.text, item.qualified
                ),
            });
        }
    }

    findings.extend(allowlist.unused_with(&used, allowlist_path, "cast-safety"));
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(files: &[(&str, &str)], allow: &str) -> Vec<Finding> {
        let files: Vec<SourceFile> = files.iter().map(|(p, c)| SourceFile::new(p, c)).collect();
        let graph = CallGraph::build(&files);
        let al = Allowlist::parse_with("allow.txt", allow, &CAST_SPEC);
        run(&files, &graph, &al, "allow.txt")
    }

    fn kinds(findings: &[Finding]) -> Vec<&str> {
        findings
            .iter()
            .map(|f| {
                if f.message.contains("may truncate") {
                    "narrow"
                } else if f.message.contains("signedness") {
                    "sign"
                } else if f.message.contains("toward zero") {
                    "float-int"
                } else {
                    "?"
                }
            })
            .collect()
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(classify("u64", "usize"), Some("narrow"));
        assert_eq!(classify("usize", "u32"), Some("narrow"));
        assert_eq!(classify("usize", "u64"), None);
        assert_eq!(classify("u32", "usize"), None);
        assert_eq!(classify("u8", "u64"), None);
        assert_eq!(classify("i64", "u64"), Some("sign"));
        assert_eq!(classify("u32", "i32"), Some("sign"));
        assert_eq!(classify("u32", "i64"), None);
        assert_eq!(classify("f64", "u64"), Some("float-int"));
        assert_eq!(classify("f64", "f32"), Some("narrow"));
        assert_eq!(classify("u64", "f64"), None); // documented limit
        assert_eq!(classify("i64", "i64"), None);
    }

    #[test]
    fn param_and_let_types_drive_findings() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "fn f(x: u64) -> u32 { let y: usize = 0; let a = x as usize; let b = y as u32; b }",
            )],
            "",
        );
        assert_eq!(kinds(&got), vec!["narrow", "narrow"], "{got:?}");
    }

    #[test]
    fn std_method_returns_are_known() {
        let got = pass(
            &[(
                "crates/profile/src/a.rs",
                "fn f(v: &Vec<u64>, d: Duration) -> u32 { (v.len() as u32) + (d.as_micros() as u32) }",
            )],
            "",
        );
        assert_eq!(kinds(&got), vec!["narrow", "narrow"], "{got:?}");
    }

    #[test]
    fn workspace_return_types_resolve() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub struct Id(u64);\nimpl Id { pub fn raw(&self) -> u64 { self.0 } }\nfn f(id: &Id) -> usize { id.raw() as usize }",
            )],
            "",
        );
        assert_eq!(kinds(&got), vec!["narrow"], "{got:?}");
    }

    #[test]
    fn float_round_cast_fires_and_grouped_exprs_agree() {
        let got = pass(
            &[(
                "crates/simnet/src/a.rs",
                "fn f(s: f64, hi: u64, lo: u64) { let a = (s * 1e6).round() as u64; let b = (hi - lo) as usize; }",
            )],
            "",
        );
        assert_eq!(kinds(&got), vec!["float-int", "narrow"], "{got:?}");
    }

    #[test]
    fn widening_and_unknown_sources_are_quiet() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "fn f(x: u32, m: &Mystery) -> u64 { let a = x as u64; let b = m.thing() as u64; a + b }",
            )],
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn cast_chains_use_the_inner_target() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "fn f(x: u32) -> u8 { x as u64 as u8 }",
            )],
            "",
        );
        // `x as u64` widens (quiet); `u64 as u8` narrows.
        assert_eq!(kinds(&got), vec!["narrow"], "{got:?}");
    }

    #[test]
    fn tests_and_out_of_scope_files_are_skipped() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        assert!(pass(&[("crates/core/tests/t.rs", src)], "").is_empty());
        assert!(pass(&[("crates/analysis/src/a.rs", src)], "").is_empty());
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "#[cfg(test)]\nmod tests { fn f(x: u64) -> u32 { x as u32 } }",
            )],
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn allowlist_covers_by_kind() {
        let src = "fn f(v: f64) -> u64 { v.round() as u64 }";
        let covered = pass(
            &[("crates/telemetry/src/a.rs", src)],
            "crates/telemetry/src/a.rs float-int round -- saturating gauge semantics\n",
        );
        assert!(covered.is_empty(), "{covered:?}");
        let wrong_kind = pass(
            &[("crates/telemetry/src/a.rs", src)],
            "crates/telemetry/src/a.rs narrow round -- wrong kind\n",
        );
        assert_eq!(wrong_kind.len(), 2, "{wrong_kind:?}"); // finding + stale
    }
}
