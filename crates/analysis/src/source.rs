//! Masked-text helpers retained for line-oriented lints.
//!
//! Since PR 4 the real lexical work lives in [`crate::lexer`]; this
//! module keeps the masked-text view ([`mask`] now delegates to the
//! lexer's token stream) plus brace/region utilities for the lints that
//! still scan line-shaped patterns (layering, attributes, and the
//! guard-across-channel heuristic).

use crate::lexer;

/// Replaces comments and string/char-literal contents with spaces.
///
/// Newlines are preserved (line numbers stay valid) and the masked text
/// has the same byte length as the input. Built on [`lexer::tokenize`],
/// so raw strings, nested block comments and char-vs-lifetime
/// ambiguities are resolved exactly; lifetimes survive masking.
pub fn mask(src: &str) -> String {
    lexer::mask(src)
}

/// Byte ranges of `#[cfg(test)]` item bodies in **masked** source.
///
/// Each range covers from the start of the attribute to the matching
/// close brace of the item that follows it (typically `mod tests`).
pub fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut search_from = 0;
    while let Some(found) = masked[search_from..].find(ATTR) {
        let start = search_from + found;
        let after = start + ATTR.len();
        // Find the opening brace of the annotated item.
        if let Some(open_rel) = masked[after..].find('{') {
            let open = after + open_rel;
            let end = match_brace(masked.as_bytes(), open);
            regions.push((start, end));
            search_from = end;
        } else {
            search_from = after;
        }
    }
    regions
}

/// Offset one past the brace matching the `{` at `open` (or EOF).
pub fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len()
}

/// True when `offset` falls inside any of `regions`.
pub fn in_regions(offset: usize, regions: &[(usize, usize)]) -> bool {
    lexer::in_regions(offset, regions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"unwrap()\"; // .unwrap()\nlet b = x.unwrap();";
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches(".unwrap").count(), 1);
        assert!(m.contains("let b = x.unwrap();"));
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"a [0] \"quote\" \"#; let c = '['; let lt: &'static str = x;";
        let m = mask(src);
        assert!(!m.contains('['), "brackets in literals must be masked: {m}");
        assert!(m.contains("'static"), "lifetimes must survive masking");
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still */ x.expect(\"m\")";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert_eq!(m.matches(".expect").count(), 1);
    }

    #[test]
    fn finds_cfg_test_regions() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn tail() {}";
        let m = mask(src);
        let regions = test_regions(&m);
        assert_eq!(regions.len(), 1);
        let lib_pos = m.find("x.unwrap").expect("lib code present");
        let test_pos = m.find("y.unwrap").expect("test code present");
        assert!(!in_regions(lib_pos, &regions));
        assert!(in_regions(test_pos, &regions));
        let tail = m.find("fn tail").expect("tail present");
        assert!(!in_regions(tail, &regions));
    }
}
