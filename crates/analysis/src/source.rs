//! Lexical preprocessing shared by the lints.
//!
//! [`mask`] blanks out comments and string/char literal bodies so later
//! substring scans cannot be fooled by `"panic!"` inside a doc string;
//! [`test_regions`] finds `#[cfg(test)]` item bodies so test-only code
//! is exempt from the panic-freedom policy.

/// Replaces comments and string/char-literal contents with spaces.
///
/// Newlines are preserved (line numbers stay valid) and the masked text
/// has the same byte length as the input. String delimiters themselves
/// are masked too, so a `[` or `.unwrap()` inside a literal can never
/// match a code pattern.
pub fn mask(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Pushes `n` bytes of masked output, keeping newlines.
    fn blank(out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize) {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    }

    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
                blank(&mut out, bytes, i, end);
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Nested block comments.
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, bytes, i, j);
                i = j;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let (hashes, body_start) = raw_string_open(bytes, i);
                let end = raw_string_end(bytes, body_start, hashes);
                blank(&mut out, bytes, i, end);
                i = end;
            }
            b'"' => {
                let end = string_end(bytes, i + 1);
                blank(&mut out, bytes, i, end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, bytes, i, end);
                    i = end;
                } else {
                    // A lifetime like 'a — keep as-is.
                    out.push(b'\'');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"`, `r#"`, `br"` handled via the `r`; reject identifiers ending
    // in r (e.g. `var"`, impossible) by checking the previous byte.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn raw_string_open(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i + 1;
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1) // skip the opening quote
}

fn raw_string_end(bytes: &[u8], mut j: usize, hashes: usize) -> usize {
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    bytes.len()
}

fn string_end(bytes: &[u8], mut j: usize) -> usize {
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Distinguishes a char literal from a lifetime. Returns the end offset
/// of the literal, or `None` for a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut k = j + 2;
        while k < bytes.len() && bytes[k] != b'\'' {
            k += 1;
        }
        return Some((k + 1).min(bytes.len()));
    }
    // `'a` followed by `'` is a char literal; otherwise a lifetime.
    if is_ident_byte(bytes[j]) {
        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
            return Some(j + 2);
        }
        return None;
    }
    // Punctuation char literal like '(' .
    if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
        return Some(j + 2);
    }
    None
}

/// Byte ranges of `#[cfg(test)]` item bodies in **masked** source.
///
/// Each range covers from the start of the attribute to the matching
/// close brace of the item that follows it (typically `mod tests`).
pub fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut search_from = 0;
    while let Some(found) = masked[search_from..].find(ATTR) {
        let start = search_from + found;
        let after = start + ATTR.len();
        // Find the opening brace of the annotated item.
        if let Some(open_rel) = masked[after..].find('{') {
            let open = after + open_rel;
            let end = match_brace(masked.as_bytes(), open);
            regions.push((start, end));
            search_from = end;
        } else {
            search_from = after;
        }
    }
    regions
}

/// Offset one past the brace matching the `{` at `open` (or EOF).
pub fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len()
}

/// True when `offset` falls inside any of `regions`.
pub fn in_regions(offset: usize, regions: &[(usize, usize)]) -> bool {
    regions.iter().any(|&(s, e)| offset >= s && offset < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"unwrap()\"; // .unwrap()\nlet b = x.unwrap();";
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches(".unwrap").count(), 1);
        assert!(m.contains("let b = x.unwrap();"));
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"a [0] \"quote\" \"#; let c = '['; let lt: &'static str = x;";
        let m = mask(src);
        assert!(!m.contains('['), "brackets in literals must be masked: {m}");
        assert!(m.contains("'static"), "lifetimes must survive masking");
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still */ x.expect(\"m\")";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert_eq!(m.matches(".expect").count(), 1);
    }

    #[test]
    fn finds_cfg_test_regions() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn tail() {}";
        let m = mask(src);
        let regions = test_regions(&m);
        assert_eq!(regions.len(), 1);
        let lib_pos = m.find("x.unwrap").expect("lib code present");
        let test_pos = m.find("y.unwrap").expect("test code present");
        assert!(!in_regions(lib_pos, &regions));
        assert!(in_regions(test_pos, &regions));
        let tail = m.find("fn tail").expect("tail present");
        assert!(!in_regions(tail, &regions));
    }
}
