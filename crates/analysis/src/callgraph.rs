//! Deterministic workspace call graph (DESIGN.md §9.2).
//!
//! Built from [`crate::parser`] output over non-test library code:
//! nodes are function items, edges are resolved call sites. Resolution
//! is necessarily heuristic — this is a token-level analysis with no
//! type checker — and errs on the side of *no edge* when the receiver
//! type is known to be foreign (std containers, primitives) and on the
//! side of *all same-named candidates* when nothing is known, so that
//! reachability analyses (panic reachability, hot-path allocation)
//! over-approximate rather than silently miss paths through the
//! workspace.
//!
//! The graph is deterministic: nodes are sorted by qualified name and
//! location, edges are a sorted de-duplicated set, and the JSON export
//! (`greenps-callgraph/1`) is byte-stable across runs — CI asserts
//! this by exporting twice and comparing.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parser::{self, Callee, FnItem, ParsedFile, Receiver, TypeKind, Visibility};
use crate::SourceFile;

/// Methods so overwhelmingly likely to be std/container calls that an
/// *untyped* receiver never resolves them to workspace functions.
/// Typed receivers bypass this list: `cache.get(…)` with `cache:
/// PairCache` still resolves to `PairCache::get`.
const COMMON_STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_micros",
    "as_millis",
    "as_nanos",
    "as_ref",
    "as_secs",
    "as_str",
    "binary_search",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "next",
    "ok",
    "parse",
    "partial_cmp",
    "pop",
    "pop_front",
    "position",
    "powi",
    "push",
    "push_back",
    "push_str",
    "remove",
    "replace",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_off",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "sum",
    "swap_remove",
    "take",
    "then",
    "then_some",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trunc",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "zip",
];

/// A named workspace type with its field-type heads (structs only).
#[derive(Debug, Clone)]
pub struct TypeInfo {
    /// Struct, enum or trait.
    pub kind: TypeKind,
    /// Field name → type head, for named-field structs.
    pub fields: BTreeMap<String, String>,
}

/// One graph node: a parsed function item plus its file.
#[derive(Debug, Clone)]
pub struct Node {
    /// The parsed item.
    pub item: FnItem,
    /// Repo-relative path of the defining file.
    pub file: String,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Nodes sorted by `(qualified, file, line)`.
    pub nodes: Vec<Node>,
    /// Sorted, de-duplicated `(caller, callee)` index pairs.
    pub edges: Vec<(usize, usize)>,
    /// Forward adjacency, parallel to `nodes`.
    pub adj: Vec<Vec<usize>>,
    /// Workspace type registry (structs/enums/traits by bare name).
    pub types: BTreeMap<String, TypeInfo>,
    /// Bare function name → node indices (candidate lookup).
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from workspace sources. Only non-test functions
    /// in library code participate; `tests/`, `benches/`, bins and
    /// `#[cfg(test)]` regions are excluded.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        let mut types: BTreeMap<String, TypeInfo> = BTreeMap::new();
        let parsed: Vec<(&SourceFile, ParsedFile)> = files
            .iter()
            .filter(|f| f.is_library_code())
            .map(|f| (f, parser::parse_file(f)))
            .collect();
        for (file, p) in &parsed {
            for t in &p.types {
                types.entry(t.name.clone()).or_insert_with(|| TypeInfo {
                    kind: t.kind,
                    fields: BTreeMap::new(),
                });
                if let Some(info) = types.get_mut(&t.name) {
                    for (f, ty) in &t.fields {
                        info.fields.entry(f.clone()).or_insert_with(|| ty.clone());
                    }
                }
            }
            for item in &p.fns {
                if item.is_test {
                    continue;
                }
                nodes.push(Node {
                    item: item.clone(),
                    file: file.path.clone(),
                });
            }
        }
        nodes.sort_by(|a, b| {
            (&a.item.qualified, &a.file, a.item.line).cmp(&(
                &b.item.qualified,
                &b.file,
                b.item.line,
            ))
        });

        let mut g = CallGraph {
            nodes,
            edges: Vec::new(),
            adj: Vec::new(),
            types,
            by_name: BTreeMap::new(),
        };
        // Bare-name index for candidate lookup.
        for (i, n) in g.nodes.iter().enumerate() {
            g.by_name.entry(n.item.name.clone()).or_default().push(i);
        }
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for caller in 0..g.nodes.len() {
            let calls = g.nodes[caller].item.calls.clone();
            for call in &calls {
                for callee in g.resolve_site(caller, &call.callee) {
                    if callee != caller {
                        edges.insert((caller, callee));
                    }
                }
            }
        }
        g.edges = edges.into_iter().collect();
        g.adj = vec![Vec::new(); g.nodes.len()];
        for &(a, b) in &g.edges {
            g.adj[a].push(b);
        }
        g
    }

    /// Crate segment of a node's qualified name (`greenps_core`).
    fn crate_of(&self, idx: usize) -> &str {
        self.nodes[idx]
            .item
            .qualified
            .split("::")
            .next()
            .unwrap_or("")
    }

    /// True when a *static* call from `caller`'s crate into `callee`'s
    /// crate is possible under the DESIGN.md §3 layering DAG
    /// ([`crate::layering::ALLOWED`], transitively). Same-crate calls
    /// are always possible. Dynamic dispatch is exempt from this check
    /// at the call sites that can express it (trait receivers and
    /// untyped fan-out onto trait impls): a low crate may legitimately
    /// call up into an impl it never names, through a vtable for a
    /// trait it owns — that is exactly how `simnet` drives `broker`.
    fn layering_ok(&self, caller: usize, callee: usize) -> bool {
        let from = self.crate_of(caller);
        let to = self.crate_of(callee);
        if from == to {
            return true;
        }
        let short = |q: &str| q.strip_prefix("greenps_").unwrap_or(q).to_string();
        let (from, to) = (short(from), short(to));
        let mut stack = vec![from];
        let mut seen: BTreeSet<String> = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if c == to {
                return true;
            }
            if !seen.insert(c.clone()) {
                continue;
            }
            if let Some((_, deps)) = crate::layering::ALLOWED.iter().find(|(k, _)| *k == c) {
                stack.extend(deps.iter().map(|d| d.to_string()));
            }
        }
        false
    }

    /// Resolves one call site of `caller` to candidate node indices —
    /// the same resolution that built the edges, exposed so the
    /// CFG-based lints can ask which callees a *specific* site (by
    /// offset) may reach.
    pub fn resolve_site(&self, caller: usize, callee: &Callee) -> Vec<usize> {
        let by_name = &self.by_name;
        let item = &self.nodes[caller].item;
        match callee {
            Callee::Path(raw) => {
                // Normalize: `crate` → caller crate, `Self` → impl type,
                // leading `self`/`super` dropped (suffix match absorbs
                // the remaining ambiguity).
                let mut segs: Vec<String> = Vec::new();
                for (i, s) in raw.iter().enumerate() {
                    match s.as_str() {
                        "crate" if i == 0 => segs.push(self.crate_of(caller).to_string()),
                        "self" | "super" if i == 0 => {}
                        "Self" => {
                            if let Some(ty) = &item.self_ty {
                                segs.push(ty.clone());
                            }
                        }
                        _ => segs.push(s.clone()),
                    }
                }
                let Some(last) = segs.last() else {
                    return Vec::new();
                };
                let Some(cands) = by_name.get(last.as_str()) else {
                    return Vec::new();
                };
                if segs.len() == 1 {
                    // A bare name only reaches free functions; prefer
                    // the caller's own crate when it defines one.
                    let free: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| self.nodes[i].item.self_ty.is_none())
                        .filter(|&i| self.layering_ok(caller, i))
                        .collect();
                    let same_crate: Vec<usize> = free
                        .iter()
                        .copied()
                        .filter(|&i| self.crate_of(i) == self.crate_of(caller))
                        .collect();
                    return if same_crate.is_empty() {
                        free
                    } else {
                        same_crate
                    };
                }
                cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let q: Vec<&str> = self.nodes[i].item.qualified.split("::").collect();
                        q.len() >= segs.len()
                            && q[q.len() - segs.len()..]
                                .iter()
                                .zip(&segs)
                                .all(|(a, b)| *a == b.as_str())
                    })
                    .filter(|&i| self.layering_ok(caller, i))
                    .collect()
            }
            Callee::Method { name, receiver } => {
                let recv_ty: Option<String> = match receiver {
                    Receiver::SelfDirect => item.self_ty.clone(),
                    Receiver::SelfField(f) => item
                        .self_ty
                        .as_ref()
                        .and_then(|ty| self.types.get(ty))
                        .and_then(|info| info.fields.get(f).cloned()),
                    Receiver::Var(v) => {
                        // Last typed `let` wins over the parameter.
                        let from_let = item
                            .lets
                            .iter()
                            .rev()
                            .find(|(n, _)| n == v)
                            .map(|(_, t)| t.clone());
                        from_let.or_else(|| {
                            item.params
                                .iter()
                                .find(|(n, _)| n == v)
                                .map(|(_, t)| t.clone())
                        })
                    }
                    Receiver::Unknown => None,
                };
                let cands = by_name.get(name.as_str()).map(Vec::as_slice).unwrap_or(&[]);
                match recv_ty {
                    Some(ty) => match self.types.get(&ty).map(|t| t.kind) {
                        Some(TypeKind::Trait) => cands
                            .iter()
                            .copied()
                            .filter(|&i| self.nodes[i].item.trait_name.as_deref() == Some(&ty))
                            .collect(),
                        Some(_) => cands
                            .iter()
                            .copied()
                            .filter(|&i| self.nodes[i].item.self_ty.as_deref() == Some(&ty))
                            .filter(|&i| self.layering_ok(caller, i))
                            .collect(),
                        // Known-foreign receiver (std container, primitive,
                        // generic parameter): no workspace edge.
                        None => Vec::new(),
                    },
                    None => {
                        if COMMON_STD_METHODS.contains(&name.as_str()) {
                            return Vec::new();
                        }
                        // Fan out, but only where the call could really
                        // happen: a static call needs the layering DAG
                        // to permit the dependency; a trait-impl method
                        // stays reachable regardless (dyn dispatch).
                        cands
                            .iter()
                            .copied()
                            .filter(|&i| self.nodes[i].item.has_self)
                            .filter(|&i| {
                                self.nodes[i].item.trait_name.is_some()
                                    || self.layering_ok(caller, i)
                            })
                            .collect()
                    }
                }
            }
        }
    }

    /// Node indices whose qualified name ends with the `::`-separated
    /// `suffix` (whole segments).
    pub fn find_suffix(&self, suffix: &str) -> Vec<usize> {
        let want: Vec<&str> = suffix.split("::").collect();
        (0..self.nodes.len())
            .filter(|&i| {
                let q: Vec<&str> = self.nodes[i].item.qualified.split("::").collect();
                q.len() >= want.len() && q[q.len() - want.len()..] == want[..]
            })
            .collect()
    }

    /// Breadth-first search from `starts`, never expanding `blocked`
    /// nodes. Returns `parent[i]` for every reached node (`parent` of a
    /// start is itself), in deterministic order.
    pub fn bfs(&self, starts: &[usize], blocked: &BTreeSet<usize>) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in starts {
            if !blocked.contains(&s) && !parent.contains_key(&s) {
                parent.insert(s, s);
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.adj[n] {
                if blocked.contains(&m) || parent.contains_key(&m) {
                    continue;
                }
                parent.insert(m, n);
                queue.push_back(m);
            }
        }
        parent
    }

    /// The witness path from a BFS start to `node`, as qualified names.
    pub fn witness(&self, parent: &BTreeMap<usize, usize>, node: usize) -> Vec<String> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.iter()
            .map(|&i| self.nodes[i].item.qualified.clone())
            .collect()
    }

    /// Exports the graph as byte-stable `greenps-callgraph/1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"greenps-callgraph/1\",\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let vis = match n.item.vis {
                Visibility::Public => "pub",
                Visibility::Crate => "crate",
                Visibility::Private => "private",
            };
            out.push_str(&format!(
                "    {{\"id\": {}, \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"vis\": \"{}\"}}{}\n",
                i,
                esc(&n.item.qualified),
                esc(&n.file),
                n.item.line,
                vis,
                if i + 1 < self.nodes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, (a, b)) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "    [{}, {}]{}\n",
                a,
                b,
                if i + 1 < self.edges.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = files.iter().map(|(p, c)| SourceFile::new(p, c)).collect();
        CallGraph::build(&files)
    }

    fn idx(g: &CallGraph, q: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.item.qualified == q)
            .unwrap_or_else(|| panic!("missing node {q}"))
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        g.edges.contains(&(idx(g, from), idx(g, to)))
    }

    #[test]
    fn resolves_crate_paths_and_bare_names() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub fn entry() { crate::b::helper(); local(); }\nfn local() {}",
            ),
            ("crates/core/src/b.rs", "pub fn helper() {}"),
        ]);
        assert!(has_edge(
            &g,
            "greenps_core::a::entry",
            "greenps_core::b::helper"
        ));
        assert!(has_edge(
            &g,
            "greenps_core::a::entry",
            "greenps_core::a::local"
        ));
    }

    #[test]
    fn bare_names_prefer_the_callers_crate() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub fn go() { helper(); }\nfn helper() {}",
            ),
            ("crates/profile/src/b.rs", "pub fn helper() {}"),
        ]);
        assert!(has_edge(
            &g,
            "greenps_core::a::go",
            "greenps_core::a::helper"
        ));
        assert!(!has_edge(
            &g,
            "greenps_core::a::go",
            "greenps_profile::b::helper"
        ));
    }

    #[test]
    fn layering_dag_prunes_impossible_static_edges() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                // Untyped receiver: `covers` would fan out everywhere.
                "pub fn go(x: &Mystery) { x.thing().covers(); only_here(); }",
            ),
            (
                "crates/analysis/src/b.rs",
                // `core` cannot depend on `analysis`: neither the
                // inherent method nor the free fn may receive an edge.
                "pub struct Allowlist;\nimpl Allowlist { pub fn covers(&self) {} }\npub fn only_here() {}",
            ),
        ]);
        assert!(!has_edge(
            &g,
            "greenps_core::a::go",
            "greenps_analysis::b::Allowlist::covers"
        ));
        assert!(!has_edge(
            &g,
            "greenps_core::a::go",
            "greenps_analysis::b::only_here"
        ));
    }

    #[test]
    fn layering_dag_keeps_dyn_dispatch_up_edges() {
        // `simnet` depends only on `telemetry`, yet its dispatcher must
        // reach a `broker` trait impl through the vtable.
        let g = graph(&[
            (
                "crates/simnet/src/a.rs",
                "pub trait Process { fn on_message(&mut self); }\npub fn dispatch(p: &mut dyn Process) { p.on_message(); }",
            ),
            (
                "crates/broker/src/b.rs",
                "pub struct Broker;\nimpl crate::a::Process for Broker { fn on_message(&mut self) {} }",
            ),
        ]);
        assert!(has_edge(
            &g,
            "greenps_simnet::a::dispatch",
            "greenps_broker::b::Broker::on_message"
        ));
    }

    #[test]
    fn typed_receivers_resolve_methods() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            r#"
            pub struct Pool { cache: Cache }
            pub struct Cache;
            impl Cache { pub fn get(&self) {} }
            impl Pool {
                pub fn run(&self, c: &Cache) {
                    self.cache.get();
                    c.get();
                    let d: Cache = make();
                    d.get();
                }
            }
            pub fn make() -> Cache { Cache }
            "#,
        )]);
        // All three receiver shapes (self.field, param, let) resolve to
        // the workspace method, not dropped as std `get`.
        assert!(has_edge(
            &g,
            "greenps_core::a::Pool::run",
            "greenps_core::a::Cache::get"
        ));
        assert!(has_edge(
            &g,
            "greenps_core::a::Pool::run",
            "greenps_core::a::make"
        ));
    }

    #[test]
    fn untyped_common_method_names_get_no_edges() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            r#"
            pub struct Cache;
            impl Cache { pub fn get(&self) {} }
            pub fn run(xs: &Mystery) { xs.thing().get(); }
            "#,
        )]);
        // Receiver is a call chain (unknown) and `get` is a common std
        // name — conservatively no edge.
        assert!(!has_edge(
            &g,
            "greenps_core::a::run",
            "greenps_core::a::Cache::get"
        ));
    }

    #[test]
    fn untyped_distinctive_method_names_fan_out() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            r#"
            pub struct Engine;
            impl Engine { pub fn attempt_merge(&self) {} }
            pub fn run(x: &Mystery) { x.thing().attempt_merge(); }
            "#,
        )]);
        assert!(has_edge(
            &g,
            "greenps_core::a::run",
            "greenps_core::a::Engine::attempt_merge"
        ));
    }

    #[test]
    fn trait_receivers_reach_all_impls() {
        let g = graph(&[(
            "crates/simnet/src/a.rs",
            r#"
            pub trait Process { fn on_message(&mut self); }
            pub struct BrokerProc;
            impl Process for BrokerProc { fn on_message(&mut self) { work(); } }
            pub struct ClientProc;
            impl Process for ClientProc { fn on_message(&mut self) {} }
            fn work() {}
            pub fn dispatch(p: &mut dyn Process) { p.on_message(); }
            "#,
        )]);
        assert!(has_edge(
            &g,
            "greenps_simnet::a::dispatch",
            "greenps_simnet::a::BrokerProc::on_message"
        ));
        assert!(has_edge(
            &g,
            "greenps_simnet::a::dispatch",
            "greenps_simnet::a::ClientProc::on_message"
        ));
        assert!(has_edge(
            &g,
            "greenps_simnet::a::BrokerProc::on_message",
            "greenps_simnet::a::work"
        ));
    }

    #[test]
    fn std_typed_receivers_get_no_edges() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            r#"
            pub struct Cache;
            impl Cache { pub fn insert(&self) {} }
            pub fn run(m: &mut Vec<u64>) { m.insert(); }
            "#,
        )]);
        assert!(!has_edge(
            &g,
            "greenps_core::a::run",
            "greenps_core::a::Cache::insert"
        ));
    }

    #[test]
    fn test_code_is_excluded() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { super::lib(); } }",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn bfs_and_witness_paths() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn d() {}",
        )]);
        let start = idx(&g, "greenps_core::a::a");
        let parent = g.bfs(&[start], &BTreeSet::new());
        let c = idx(&g, "greenps_core::a::c");
        assert!(parent.contains_key(&c));
        assert!(!parent.contains_key(&idx(&g, "greenps_core::a::d")));
        assert_eq!(
            g.witness(&parent, c),
            vec![
                "greenps_core::a::a",
                "greenps_core::a::b",
                "greenps_core::a::c"
            ]
        );
        // Blocking b cuts the path.
        let blocked: BTreeSet<usize> = [idx(&g, "greenps_core::a::b")].into();
        assert!(!g.bfs(&[start], &blocked).contains_key(&c));
    }

    #[test]
    fn json_export_is_stable_and_well_formed() {
        let files = [("crates/core/src/a.rs", "pub fn a() { b(); }\nfn b() {}")];
        let g1 = graph(&files);
        let g2 = graph(&files);
        let j1 = g1.to_json();
        assert_eq!(j1, g2.to_json());
        assert!(j1.starts_with("{\n  \"schema\": \"greenps-callgraph/1\""));
        assert!(j1.contains("\"fn\": \"greenps_core::a::a\""));
        assert!(j1.contains("[0, 1]"));
    }

    #[test]
    fn find_suffix_matches_whole_segments() {
        let g = graph(&[(
            "crates/core/src/cram.rs",
            "pub struct Engine;\nimpl Engine { pub fn attempt(&self) {} }\npub fn scan_partner() {}",
        )]);
        assert_eq!(g.find_suffix("Engine::attempt").len(), 1);
        assert_eq!(g.find_suffix("cram::scan_partner").len(), 1);
        assert_eq!(g.find_suffix("tempt").len(), 0);
    }
}
