//! Lint 4: crate-root attribute policy.
//!
//! Every first-party crate root must carry `#![forbid(unsafe_code)]`
//! and `#![deny(missing_docs)]`. Vendored stand-ins under `vendor/`
//! only need the unsafe-code ban (their docs mirror upstream APIs).

use crate::source::mask;
use crate::{Finding, SourceFile};

/// Required inner attributes for first-party crate roots.
pub const REQUIRED: [&str; 2] = ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"];

fn has_inner_attr(masked: &str, attr: &str) -> bool {
    // Tolerate internal whitespace variations rustfmt may introduce.
    let canonical: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    masked
        .lines()
        .map(|l| {
            l.trim()
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect::<String>()
        })
        .any(|l| l == canonical)
}

/// True when `path` is a crate root this lint governs.
fn policy_for(path: &str) -> Option<&'static [&'static str]> {
    if path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs")) {
        Some(&REQUIRED)
    } else if path.starts_with("vendor/") && path.ends_with("/src/lib.rs") {
        Some(&REQUIRED[..1])
    } else {
        None
    }
}

/// Runs the attribute lint over `files`; non-crate-roots pass through.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let Some(required) = policy_for(&file.path) else {
            continue;
        };
        let masked = mask(&file.content);
        for attr in required {
            if !has_inner_attr(&masked, attr) {
                findings.push(Finding {
                    lint: "attributes",
                    path: file.path.clone(),
                    line: 0,
                    message: format!("crate root is missing `{attr}`"),
                });
            }
        }
        // `warn(missing_docs)` alongside deny would shadow nothing, but
        // its presence means the promotion was done by addition, not
        // replacement — flag the leftover.
        if file.path.starts_with("crates/") && has_inner_attr(&masked, "#![warn(missing_docs)]") {
            findings.push(Finding {
                lint: "attributes",
                path: file.path.clone(),
                line: 0,
                message: "leftover `#![warn(missing_docs)]` — superseded by the deny".to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_attributes_fire() {
        let files = vec![SourceFile::new(
            "crates/core/src/lib.rs",
            "//! Docs.\n#![warn(missing_docs)]\npub fn f() {}\n",
        )];
        let got = run(&files);
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got.iter().any(|f| f.message.contains("unsafe_code")));
        assert!(got.iter().any(|f| f.message.contains("deny(missing_docs)")));
        assert!(got.iter().any(|f| f.message.contains("leftover")));
    }

    #[test]
    fn compliant_root_passes() {
        let files = vec![SourceFile::new(
            "crates/core/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n",
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn vendor_needs_only_unsafe_ban_and_modules_are_exempt() {
        let files = vec![
            SourceFile::new("vendor/rand/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            SourceFile::new("crates/core/src/overlay.rs", "pub fn f() {}\n"),
        ];
        assert!(run(&files).is_empty());

        let files = vec![SourceFile::new("vendor/rand/src/lib.rs", "pub fn f() {}\n")];
        assert_eq!(run(&files).len(), 1);
    }

    #[test]
    fn commented_attribute_does_not_count() {
        let files = vec![SourceFile::new(
            "crates/core/src/lib.rs",
            "// #![forbid(unsafe_code)]\n// #![deny(missing_docs)]\n",
        )];
        assert_eq!(run(&files).len(), 2);
    }
}
