//! Interprocedural pass 4: cancellation-responsiveness of long-running
//! loops (DESIGN.md §9.3).
//!
//! `ReconfigContext::cancel` is only useful if the allocator's
//! iteration structure actually polls it: a 36-minute `ZonedAllocate`
//! phase that checks the flag once per *phase* is uncancellable in
//! practice. This pass walks the call graph from the long-running
//! entry points — every `Phase::run` impl, `zoned_allocate`, and the
//! CRAM merge iteration — and demands that each reachable loop doing
//! per-subscription-scale work polls the cancel flag (calls
//! `is_cancelled`/`is_cancelled_hot` directly, or calls a callee that
//! transitively does) once per iteration.
//!
//! Three scoping rules keep the signal proportional to real stop
//! latency rather than flagging every leaf scan:
//!
//! - a loop nested inside a *polling* loop of the same function is
//!   compliant: the outer poll bounds stop latency to one outer
//!   iteration (exactly the "stops within one wave" contract);
//! - call edges *inside* a polling loop are not traversed: the callee
//!   runs at most once between polls, so its internal loops are
//!   bounded by the poll granularity;
//! - only loops that mention subscription/zone-scale identifiers
//!   (`sub*`, `zone*`, `unit*`, `gif*`, `wave*`, `partner*`) and call
//!   into the workspace are "substantial" — a bounded arithmetic scan
//!   needs no poll;
//! - findings are reported only for loops in the allocator runtime
//!   (the `core` crate), where `ReconfigContext` is threaded. The
//!   delivery/kernel layers (`broker`, `simnet`, `pubsub`, `profile`)
//!   do bounded per-event work with no view of the pipeline context —
//!   their cancellation boundary is the event loop in the phase that
//!   drives them — and `workload` is offline scenario synthesis. The
//!   BFS still traverses those crates so a core loop whose poll lives
//!   in a delivery-layer callee is credited correctly.
//!
//! Residual findings are budgeted in `analysis/cancel-allowlist.txt`
//! (kind `loop`) and counted under `cancel.findings`.

use std::collections::{BTreeMap, VecDeque};

use crate::allowlist::{Allowlist, AllowlistSpec};
use crate::callgraph::CallGraph;
use crate::cfg::{Cfg, LoopKind};
use crate::lexer::{self, Token, TokenKind};
use crate::parser::Callee;
use crate::{line_text, Finding, SourceFile};

/// Policy for `analysis/cancel-allowlist.txt`.
pub const CANCEL_SPEC: AllowlistSpec = AllowlistSpec {
    lint: "cancel-responsive",
    kinds: &["loop"],
    budget: 4,
};

/// Call names that count as polling the cancel flag.
pub const POLL_NAMES: &[&str] = &["is_cancelled", "is_cancelled_hot"];

/// Identifier fragments that mark a loop as subscription/zone-scale.
const SCALE_KEYWORDS: &[&str] = &["sub", "zone", "unit", "gif", "wave", "partner"];

/// Crates whose loops are reported. The BFS traverses every crate (so
/// polls in callees anywhere are credited), but only the allocator
/// runtime — where `ReconfigContext` is in scope — is held to the
/// per-loop polling contract. See the module docs for the rationale.
const FLAG_CRATES: &[&str] = &["core"];

/// The workspace's long-running entry points: qualified-name suffixes
/// plus the label used in findings. `Phase::run` impls are found by
/// trait name and need no suffix here.
pub const DEFAULT_ENTRIES: &[(&str, &str)] = &[
    ("zones::zoned_allocate", "zoned_allocate"),
    ("zones::zoned_allocate_resumable", "zoned_allocate"),
    ("cram::Engine::run", "CRAM merge loop"),
];

/// One loop of one function, with its polling status resolved.
#[derive(Debug, Clone)]
struct LoopRec {
    kind: LoopKind,
    /// Byte offset of the loop keyword.
    start: usize,
    /// Byte span of the body braces.
    body: (usize, usize),
    line: usize,
    /// True when the loop body polls the cancel flag (directly or via
    /// a transitively-polling callee).
    polls: bool,
}

/// Runs the pass over the workspace sources and call graph.
pub fn run(
    files: &[SourceFile],
    graph: &CallGraph,
    entries: &[(&str, &str)],
    allowlist: &Allowlist,
    allowlist_path: &str,
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = allowlist.errors.clone();
    let mut used = vec![false; allowlist.entries.len()];

    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let tok_map: BTreeMap<&str, Vec<Token<'_>>> = files
        .iter()
        .filter(|f| f.is_library_code())
        .map(|f| (f.path.as_str(), lexer::tokenize(&f.content)))
        .collect();

    // 1. Which functions poll, directly or transitively.
    let mut polls: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| {
            n.item.calls.iter().any(|c| {
                let name = match &c.callee {
                    Callee::Path(segs) => segs.last().map(String::as_str),
                    Callee::Method { name, .. } => Some(name.as_str()),
                };
                name.is_some_and(|n| POLL_NAMES.contains(&n))
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for &(a, b) in &graph.edges {
            if polls[b] && !polls[a] {
                polls[a] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 2. Entries: named suffixes plus every `Phase::run` impl.
    let mut starts: Vec<usize> = Vec::new();
    let mut label_of: BTreeMap<usize, String> = BTreeMap::new();
    for &(suffix, label) in entries {
        for n in graph.find_suffix(suffix) {
            starts.push(n);
            label_of.entry(n).or_insert_with(|| label.to_string());
        }
    }
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.item.name == "run" && n.item.trait_name.as_deref() == Some("Phase") {
            starts.push(i);
            label_of
                .entry(i)
                .or_insert_with(|| "Phase::run".to_string());
        }
    }

    // 3. Covered-edge BFS: do not expand calls made inside a polling
    //    loop (the callee is bounded by the poll granularity).
    let mut loop_cache: BTreeMap<usize, Vec<LoopRec>> = BTreeMap::new();
    let loops_of = |node: usize, cache: &mut BTreeMap<usize, Vec<LoopRec>>| -> Vec<LoopRec> {
        if let Some(got) = cache.get(&node) {
            return got.clone();
        }
        let got = compute_loops(graph, node, &tok_map, &polls, &by_path);
        cache.insert(node, got.clone());
        got
    };

    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in &starts {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
            e.insert(s);
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        let loops = loops_of(n, &mut loop_cache);
        let calls = graph.nodes[n].item.calls.clone();
        for call in &calls {
            let covered = loops
                .iter()
                .any(|l| l.polls && call.offset >= l.body.0 && call.offset < l.body.1);
            if covered {
                continue;
            }
            for t in graph.resolve_site(n, &call.callee) {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                    e.insert(n);
                    queue.push_back(t);
                }
            }
        }
    }

    // 4. Flag substantial, non-polling, non-covered loops.
    let visited: Vec<usize> = parent.keys().copied().collect();
    for &n in &visited {
        let node = &graph.nodes[n];
        let Some(file) = by_path.get(node.file.as_str()) else {
            continue;
        };
        if !file.crate_name().is_some_and(|c| FLAG_CRATES.contains(&c)) {
            continue;
        }
        let Some(toks) = tok_map.get(node.file.as_str()) else {
            continue;
        };
        let loops = loops_of(n, &mut loop_cache);
        for l in &loops {
            if l.polls {
                continue;
            }
            // Covered by an enclosing polling loop in the same fn.
            if loops
                .iter()
                .any(|o| o.polls && o.start < l.start && l.body.1 <= o.body.1)
            {
                continue;
            }
            if !is_substantial(graph, n, toks, l) {
                continue;
            }
            let text = line_text(&file.content, l.start);
            if allowlist.covers(&mut used, &node.file, "loop", text) {
                continue;
            }
            let entry = graph
                .witness(&parent, n)
                .first()
                .cloned()
                .unwrap_or_default();
            let label = label_of
                .iter()
                .find(|(&s, _)| graph.nodes[s].item.qualified == entry)
                .map(|(_, l)| l.as_str())
                .unwrap_or("?");
            let kind = match l.kind {
                LoopKind::Loop => "loop",
                LoopKind::While => "while",
                LoopKind::For => "for",
            };
            findings.push(Finding {
                lint: "cancel-responsive",
                path: node.file.clone(),
                line: l.line,
                message: format!(
                    "`{kind}` loop does per-subscription work without polling the cancel \
                     flag; reachable from `{label}` via {} — poll `is_cancelled_hot()` or \
                     call a cancellable callee each iteration",
                    graph.witness(&parent, n).join(" -> ")
                ),
            });
        }
    }

    findings.extend(allowlist.unused_with(&used, allowlist_path, "cancel-responsive"));
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();
    findings
}

/// Builds the CFG for `node` and resolves each loop's polling status.
fn compute_loops(
    graph: &CallGraph,
    node: usize,
    tok_map: &BTreeMap<&str, Vec<Token<'_>>>,
    polls: &[bool],
    by_path: &BTreeMap<&str, &SourceFile>,
) -> Vec<LoopRec> {
    let item = &graph.nodes[node].item;
    let Some(body) = item.body else {
        return Vec::new();
    };
    let (Some(toks), Some(file)) = (
        tok_map.get(graph.nodes[node].file.as_str()),
        by_path.get(graph.nodes[node].file.as_str()),
    ) else {
        return Vec::new();
    };
    let code = lexer::code(toks);
    let cfg = Cfg::build(&code, body, &file.content);
    cfg.loops
        .iter()
        .map(|l| {
            let polls_here = item.calls.iter().any(|c| {
                if c.offset < l.body.0 || c.offset >= l.body.1 {
                    return false;
                }
                let name = match &c.callee {
                    Callee::Path(segs) => segs.last().map(String::as_str),
                    Callee::Method { name, .. } => Some(name.as_str()),
                };
                if name.is_some_and(|n| POLL_NAMES.contains(&n)) {
                    return true;
                }
                graph
                    .resolve_site(node, &c.callee)
                    .iter()
                    .any(|&t| polls[t])
            });
            LoopRec {
                kind: l.kind,
                start: l.start,
                body: l.body,
                line: l.line,
                polls: polls_here,
            }
        })
        .collect()
}

/// True when the loop does per-subscription-scale work: its header or
/// body mentions a scale identifier AND it calls into the workspace.
fn is_substantial(graph: &CallGraph, node: usize, toks: &[Token<'_>], l: &LoopRec) -> bool {
    let item = &graph.nodes[node].item;
    let calls_workspace = item.calls.iter().any(|c| {
        c.offset >= l.start
            && c.offset < l.body.1
            && !graph.resolve_site(node, &c.callee).is_empty()
    });
    if !calls_workspace {
        return false;
    }
    toks.iter()
        .filter(|t| t.kind == TokenKind::Ident && t.start >= l.start && t.end <= l.body.1)
        .any(|t| {
            let lower = t.text.to_ascii_lowercase();
            SCALE_KEYWORDS.iter().any(|k| lower.contains(k))
        })
}

/// Hidden per-kind tallies are not needed: everything reports under
/// `cancel.findings` via the CLI's extra counters.
#[cfg(test)]
mod tests {
    use super::*;

    fn pass(files: &[(&str, &str)], entries: &[(&str, &str)], allow: &str) -> Vec<Finding> {
        let files: Vec<SourceFile> = files.iter().map(|(p, c)| SourceFile::new(p, c)).collect();
        let graph = CallGraph::build(&files);
        let al = Allowlist::parse_with("allow.txt", allow, &CANCEL_SPEC);
        run(&files, &graph, entries, &al, "allow.txt")
    }

    const ENTRY: &[(&str, &str)] = &[("a::drive", "drive")];

    #[test]
    fn unpolled_scale_loop_is_flagged_with_witness() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn drive(subs: &[u64]) { inner(subs); }\n\
                 pub fn inner(subs: &[u64]) { for s in subs { work(*s); } }\n\
                 pub fn work(_s: u64) {}",
            )],
            ENTRY,
            "",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("`for` loop"));
        assert!(got[0].message.contains("drive"));
        assert!(got[0].message.contains("greenps_core::a::inner"));
    }

    #[test]
    fn direct_poll_in_the_loop_is_compliant() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn drive(ctx: &Ctx, subs: &[u64]) {\n\
                   for s in subs { if ctx.is_cancelled_hot() { return; } work(*s); }\n\
                 }\n\
                 pub fn work(_s: u64) {}",
            )],
            ENTRY,
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn transitively_polling_callee_is_compliant() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn drive(ctx: &Ctx, subs: &[u64]) { for s in subs { step(ctx, *s); } }\n\
                 pub fn step(ctx: &Ctx, s: u64) { check(ctx); work(s); }\n\
                 pub fn check(ctx: &Ctx) { ctx.is_cancelled(); }\n\
                 pub fn work(_s: u64) {}",
            )],
            ENTRY,
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn loops_below_a_polling_loop_are_covered() {
        // `drive`'s wave loop polls; the per-zone scan it calls (and
        // any loops inside) is bounded by one wave.
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn drive(ctx: &Ctx, zones: &[u64]) {\n\
                   for z in zones { if ctx.is_cancelled_hot() { return; } scan(*z); }\n\
                 }\n\
                 pub fn scan(zone: u64) { let units = [zone]; for u in units { work(u); } }\n\
                 pub fn work(_u: u64) {}",
            )],
            ENTRY,
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn inner_loop_inside_polling_loop_same_fn_is_covered() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn drive(ctx: &Ctx, zones: &[u64]) {\n\
                   for z in zones {\n\
                     if ctx.is_cancelled_hot() { return; }\n\
                     for unit in 0..*z { work(unit); }\n\
                   }\n\
                 }\n\
                 pub fn work(_u: u64) {}",
            )],
            ENTRY,
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn bounded_arithmetic_loops_are_not_substantial() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn drive(subs: &[u64]) -> u64 {\n\
                   let mut acc = 0;\n\
                   for s in subs { acc += *s; }\n\
                   acc\n\
                 }",
            )],
            ENTRY,
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn non_scale_loops_are_out_of_scope() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn drive(names: &[u64]) { for n in names { work(*n); } }\n\
                 pub fn work(_n: u64) {}",
            )],
            ENTRY,
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn phase_run_impls_are_entries() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub trait Phase { fn run(&mut self); }\n\
                 pub struct P;\n\
                 impl Phase for P {\n\
                   fn run(&mut self) { let subs = [1u64]; for s in subs { work(s); } }\n\
                 }\n\
                 pub fn work(_s: u64) {}",
            )],
            &[],
            "",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("Phase::run"));
    }

    #[test]
    fn delivery_layer_loops_are_traversed_but_not_flagged() {
        // An unpolled scale loop in the broker crate is traversed but
        // not reported: only `core` is held to the polling contract.
        let got = pass(
            &[(
                "crates/broker/src/b.rs",
                "pub fn drive(subs: &[u64]) { for s in subs { emit(*s); } }\n\
                 pub fn emit(_s: u64) {}",
            )],
            &[("b::drive", "drive")],
            "",
        );
        assert!(got.is_empty(), "{got:?}");

        // But a poll living in a lower-layer callee still credits the
        // core loop that calls it — the graph is traversed everywhere.
        let polled = pass(
            &[
                (
                    "crates/core/src/a.rs",
                    "pub fn drive(ctx: &Ctx, subs: &[u64]) { for s in subs { touch(ctx, *s); } }",
                ),
                (
                    "crates/profile/src/b.rs",
                    "pub fn touch(ctx: &Ctx, _s: u64) { ctx.is_cancelled_hot(); }",
                ),
            ],
            ENTRY,
            "",
        );
        assert!(polled.is_empty(), "{polled:?}");
        let unpolled = pass(
            &[
                (
                    "crates/core/src/a.rs",
                    "pub fn drive(ctx: &Ctx, subs: &[u64]) { for s in subs { touch(ctx, *s); } }",
                ),
                (
                    "crates/profile/src/b.rs",
                    "pub fn touch(_ctx: &Ctx, _s: u64) {}",
                ),
            ],
            ENTRY,
            "",
        );
        assert_eq!(unpolled.len(), 1, "{unpolled:?}");
    }

    #[test]
    fn allowlist_covers_and_stale_entries_fail() {
        let src =
            "pub fn drive(subs: &[u64]) { for s in subs { work(*s); } }\npub fn work(_s: u64) {}";
        let covered = pass(
            &[("crates/core/src/a.rs", src)],
            ENTRY,
            "crates/core/src/a.rs loop for -- bounded by feed batching\n",
        );
        assert!(covered.is_empty(), "{covered:?}");
        let stale = pass(
            &[("crates/core/src/a.rs", "pub fn drive() {}")],
            ENTRY,
            "crates/core/src/a.rs loop for -- gone\n",
        );
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert!(stale[0].message.contains("stale"));
    }
}
