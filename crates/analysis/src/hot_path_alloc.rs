//! Interprocedural pass 2: allocations reachable from hot paths
//! (DESIGN.md §9.2).
//!
//! `analysis/hot-paths.txt` declares the workspace's steady-state hot
//! entry points (CRAM pair evaluation, GIF merge, simnet delivery,
//! broker matching). This pass walks the call graph from those entries
//! and flags every reachable allocation expression: `Vec::new`,
//! `Box::new`, `String::new`/`from`, `with_capacity`, the `vec!` and
//! `format!` macros, and the allocating method calls `.to_string()`,
//! `.to_vec()`, `.to_owned()`, `.collect()`.
//!
//! Two escape hatches keep the signal honest:
//!
//! - `stop` lines in `hot-paths.txt` cut traversal at amortized or
//!   setup boundaries (e.g. `BucketMatcher::rebuild` is called once
//!   per reconfiguration, not per message) — the stopped function and
//!   everything only reachable through it are out of scope;
//! - allocation sites inside `emit_with(…)` call arguments are exempt:
//!   that is the telemetry lazy-emission pattern, and the closure only
//!   runs when telemetry is enabled.
//!
//! Remaining findings are budgeted in `analysis/hot-path-allowlist.txt`
//! (kind `alloc`) and ratcheted via `hot-path.alloc-findings`.

use std::collections::{BTreeMap, BTreeSet};

use crate::allowlist::{Allowlist, AllowlistSpec};
use crate::callgraph::CallGraph;
use crate::parser::Callee;
use crate::{lexer, line_of, line_text, Finding, SourceFile};

/// Policy for `analysis/hot-path-allowlist.txt`.
pub const HOT_PATH_SPEC: AllowlistSpec = AllowlistSpec {
    lint: "hot-path-alloc",
    kinds: &["alloc"],
    budget: 12,
};

/// Allocating method names flagged on any receiver.
const ALLOC_METHODS: &[&str] = &["to_string", "to_vec", "to_owned", "collect"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// One parsed `hot-paths.txt` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HotPathLine {
    /// `<qualified-suffix> -- <label>`: a traversal entry point.
    Entry {
        /// Qualified-name suffix resolved against the call graph.
        suffix: String,
        /// Human label used in findings.
        label: String,
    },
    /// `stop <qualified-suffix> -- <reason>`: a traversal boundary.
    Stop {
        /// Qualified-name suffix resolved against the call graph.
        suffix: String,
    },
}

/// Parses `hot-paths.txt`; malformed lines become findings at `path`.
pub fn parse_hot_paths(path: &str, text: &str) -> (Vec<HotPathLine>, Vec<Finding>) {
    let mut lines = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((head, tail)) = line.split_once(" -- ") else {
            errors.push(Finding {
                lint: "hot-path-alloc",
                path: path.to_string(),
                line: idx + 1,
                message: "hot-path line missing ` -- <label>`".to_string(),
            });
            continue;
        };
        let head = head.trim();
        let tail = tail.trim();
        if let Some(suffix) = head.strip_prefix("stop ") {
            lines.push(HotPathLine::Stop {
                suffix: suffix.trim().to_string(),
            });
        } else if head.split_whitespace().count() == 1 && !head.is_empty() {
            lines.push(HotPathLine::Entry {
                suffix: head.to_string(),
                label: tail.to_string(),
            });
        } else {
            errors.push(Finding {
                lint: "hot-path-alloc",
                path: path.to_string(),
                line: idx + 1,
                message: format!("hot-path line needs `<suffix>` or `stop <suffix>`, got `{head}`"),
            });
        }
    }
    (lines, errors)
}

/// Byte spans of `emit_with(…)` argument lists in `src`.
fn emit_with_regions(src: &str) -> Vec<(usize, usize)> {
    let tokens = lexer::tokenize(src);
    let code = lexer::code(&tokens);
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("emit_with") && code[i + 1].is_punct('(') {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < code.len() {
                if code[j].is_punct('(') {
                    depth += 1;
                } else if code[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end = code.get(j).map_or(src.len(), |t| t.end);
            out.push((code[i + 1].start, end));
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Runs the pass. `hot_paths_text` is the contents of
/// `analysis/hot-paths.txt` (`hot_paths_path` labels its findings).
pub fn run(
    files: &[SourceFile],
    graph: &CallGraph,
    hot_paths_path: &str,
    hot_paths_text: &str,
    allowlist: &Allowlist,
    allowlist_path: &str,
) -> Vec<Finding> {
    let (lines, mut findings) = parse_hot_paths(hot_paths_path, hot_paths_text);
    findings.extend(allowlist.errors.iter().cloned());
    let mut used = vec![false; allowlist.entries.len()];

    // Resolve entries and stops against the graph.
    let mut entries: Vec<usize> = Vec::new();
    let mut label_of: BTreeMap<usize, String> = BTreeMap::new();
    let mut blocked: BTreeSet<usize> = BTreeSet::new();
    for line in &lines {
        match line {
            HotPathLine::Entry { suffix, label } => {
                let nodes = graph.find_suffix(suffix);
                if nodes.is_empty() {
                    findings.push(Finding {
                        lint: "hot-path-alloc",
                        path: hot_paths_path.to_string(),
                        line: 0,
                        message: format!("hot-path entry `{suffix}` matches no workspace function"),
                    });
                }
                for n in nodes {
                    entries.push(n);
                    label_of.entry(n).or_insert_with(|| label.clone());
                }
            }
            HotPathLine::Stop { suffix } => {
                let nodes = graph.find_suffix(suffix);
                if nodes.is_empty() {
                    findings.push(Finding {
                        lint: "hot-path-alloc",
                        path: hot_paths_path.to_string(),
                        line: 0,
                        message: format!("hot-path stop `{suffix}` matches no workspace function"),
                    });
                }
                blocked.extend(nodes);
            }
        }
    }

    let parent = graph.bfs(&entries, &blocked);
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut exempt_cache: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();

    let mut raw: Vec<(usize, usize, String)> = Vec::new(); // (node, offset, what)
    for &node in parent.keys() {
        let item = &graph.nodes[node].item;
        for call in &item.calls {
            let what = match &call.callee {
                Callee::Path(segs) => match segs.last().map(String::as_str) {
                    Some("new") if segs.len() >= 2 => {
                        let head = &segs[segs.len() - 2];
                        matches!(head.as_str(), "Vec" | "Box" | "String" | "VecDeque")
                            .then(|| format!("{head}::new"))
                    }
                    Some("from") if segs.len() >= 2 && segs[segs.len() - 2] == "String" => {
                        Some("String::from".to_string())
                    }
                    Some("with_capacity") if segs.len() >= 2 => {
                        Some(format!("{}::with_capacity", segs[segs.len() - 2]))
                    }
                    _ => None,
                },
                Callee::Method { name, .. } => ALLOC_METHODS
                    .contains(&name.as_str())
                    .then(|| format!(".{name}()")),
            };
            if let Some(what) = what {
                raw.push((node, call.offset, what));
            }
        }
        for m in &item.macros {
            if ALLOC_MACROS.contains(&m.name.as_str()) {
                raw.push((node, m.offset, format!("{}!", m.name)));
            }
        }
    }
    raw.sort_by(|a, b| {
        (&graph.nodes[a.0].file, a.1, &a.2).cmp(&(&graph.nodes[b.0].file, b.1, &b.2))
    });
    raw.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    for (node, offset, what) in raw {
        let file_path = graph.nodes[node].file.as_str();
        let Some(file) = by_path.get(file_path) else {
            continue;
        };
        let regions = exempt_cache
            .entry(file_path)
            .or_insert_with(|| emit_with_regions(&file.content));
        if lexer::in_regions(offset, regions) {
            continue;
        }
        let text = line_text(&file.content, offset);
        if allowlist.covers(&mut used, file_path, "alloc", text) {
            continue;
        }
        let entry = graph
            .witness(&parent, node)
            .first()
            .cloned()
            .unwrap_or_default();
        let label = label_of
            .iter()
            .find(|(&n, _)| graph.nodes[n].item.qualified == entry)
            .map(|(_, l)| l.as_str())
            .unwrap_or("?");
        let path_str = graph.witness(&parent, node).join(" -> ");
        findings.push(Finding {
            lint: "hot-path-alloc",
            path: file_path.to_string(),
            line: line_of(&file.content, offset),
            message: format!(
                "`{what}` allocation reachable from hot entry `{label}` via {path_str}"
            ),
        });
    }

    findings.extend(allowlist.unused_with(&used, allowlist_path, "hot-path-alloc"));
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(files: &[(&str, &str)], hot: &str, allow: &str) -> Vec<Finding> {
        let files: Vec<SourceFile> = files.iter().map(|(p, c)| SourceFile::new(p, c)).collect();
        let graph = CallGraph::build(&files);
        let al = Allowlist::parse_with("allow.txt", allow, &HOT_PATH_SPEC);
        run(&files, &graph, "hot.txt", hot, &al, "allow.txt")
    }

    #[test]
    fn reachable_allocations_are_flagged_with_witness() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn hot() { helper(); }\nfn helper() { let v: Vec<u32> = Vec::new(); }",
            )],
            "greenps_core::a::hot -- pair evaluation\n",
            "",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("Vec::new"));
        assert!(got[0].message.contains("pair evaluation"));
        assert!(got[0].message.contains("hot -> greenps_core::a::helper"));
    }

    #[test]
    fn stop_lines_cut_traversal() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn hot() { rebuild(); }\nfn rebuild() { let v = vec![1]; }",
            )],
            "greenps_core::a::hot -- hot\nstop greenps_core::a::rebuild -- amortized\n",
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn cold_code_is_out_of_scope() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn hot() {}\npub fn cold() { let s = format!(\"x\"); }",
            )],
            "greenps_core::a::hot -- hot\n",
            "",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn emit_with_arguments_are_exempt() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn hot(t: &Sink) { t.emit_with(|| format!(\"lazy {}\", 1)); let s = 2.to_string(); }",
            )],
            "greenps_core::a::hot -- hot\n",
            "",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("to_string"));
    }

    #[test]
    fn allowlist_covers_and_reports_stale() {
        let src = "pub fn hot() { let v: Vec<u32> = Vec::new(); }";
        let covered = pass(
            &[("crates/core/src/a.rs", src)],
            "greenps_core::a::hot -- hot\n",
            "crates/core/src/a.rs alloc Vec::new -- one-time warmup\n",
        );
        assert!(covered.is_empty(), "{covered:?}");
        let stale = pass(
            &[("crates/core/src/a.rs", "pub fn hot() {}")],
            "greenps_core::a::hot -- hot\n",
            "crates/core/src/a.rs alloc Vec::new -- gone\n",
        );
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert!(stale[0].message.contains("stale"));
    }

    #[test]
    fn unresolved_entries_and_malformed_lines_are_errors() {
        let got = pass(
            &[("crates/core/src/a.rs", "pub fn hot() {}")],
            "greenps_core::a::hot -- hot\ngreenps_core::a::missing -- gone\nbad line no marker\n",
            "",
        );
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().any(|f| f.message.contains("missing")));
        assert!(got.iter().any(|f| f.message.contains("` -- <label>`")));
    }

    #[test]
    fn collect_and_macros_fire() {
        let got = pass(
            &[(
                "crates/core/src/a.rs",
                "pub fn hot(xs: &[u32]) { let v: Vec<u32> = xs.iter().copied().collect(); let s = format!(\"{v:?}\"); }",
            )],
            "greenps_core::a::hot -- hot\n",
            "",
        );
        let whats: Vec<&str> = got
            .iter()
            .map(|f| f.message.split('`').nth(1).unwrap_or(""))
            .collect();
        assert_eq!(whats, vec![".collect()", "format!"], "{got:?}");
    }
}
