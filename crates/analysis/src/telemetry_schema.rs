//! Lint 6: telemetry name schema (DESIGN.md §9.1, §10).
//!
//! Every instrument name the runtime registers — `counter("…")`,
//! `gauge`, `histogram`, `ring`, `Span::enter(reg, "…")` and ring-event
//! kinds (`emit`/`emit_with("…")`) — must be declared in
//! `analysis/telemetry-schema.txt`, and every declared name must still
//! be registered somewhere. Three failure classes:
//!
//! - **unknown name**: a literal in code with no schema entry (the
//!   `registry.counter("typo.name")` drift class);
//! - **dead schema entry**: a declared name no code registers anymore;
//! - **unmatched dynamic name**: a `format!`-built name whose shape
//!   fits no `<var>` pattern entry (only `broker.b<id>`-style
//!   patterns are whitelisted in the schema).
//!
//! Schema file format, one entry per line (`#` comments allowed):
//!
//! ```text
//! <kind> <name>
//! counter simnet.delivered
//! gauge broker.b<id>.msgs_in      # <var> matches one dot-free segment
//! event msg.drop
//! benchkey subscriptions          # BENCH_cram.json keys; checked by
//!                                 # tests/experiments_smoke.rs, not here
//! ```

use crate::lexer::{self, Token, TokenKind};
use crate::{line_of, Finding, SourceFile};
use std::collections::BTreeMap;

/// Instrument kinds the schema may declare.
pub const KINDS: [&str; 7] = [
    "counter",
    "gauge",
    "histogram",
    "ring",
    "span",
    "event",
    "benchkey",
];

/// Crates exempt from extraction: `telemetry` defines the instruments
/// (its names are doc examples), `analysis` is this crate.
const EXEMPT_CRATES: [&str; 2] = ["telemetry", "analysis"];

/// One declared schema entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaEntry {
    /// Instrument kind (one of [`KINDS`]).
    pub kind: String,
    /// Declared name; `<var>` segments match one dot-free run.
    pub name: String,
    /// 1-based line in the schema file.
    pub line: usize,
}

impl SchemaEntry {
    /// True when the name contains `<var>` placeholders.
    pub fn is_pattern(&self) -> bool {
        self.name.contains('<')
    }
}

/// Parsed schema plus syntax errors.
#[derive(Debug, Default)]
pub struct Schema {
    /// Entries in file order.
    pub entries: Vec<SchemaEntry>,
    /// Findings for malformed lines.
    pub errors: Vec<Finding>,
}

impl Schema {
    /// Parses schema text; `path` labels error findings.
    pub fn parse(path: &str, text: &str) -> Self {
        let mut out = Schema::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (kind, name) = match (fields.next(), fields.next(), fields.next()) {
                (Some(k), Some(n), None) => (k, n),
                _ => {
                    out.errors.push(Finding {
                        lint: "telemetry-schema",
                        path: path.to_string(),
                        line: idx + 1,
                        message: "schema entry needs exactly `<kind> <name>`".to_string(),
                    });
                    continue;
                }
            };
            if !KINDS.contains(&kind) {
                out.errors.push(Finding {
                    lint: "telemetry-schema",
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!("unknown schema kind `{kind}`"),
                });
                continue;
            }
            out.entries.push(SchemaEntry {
                kind: kind.to_string(),
                name: name.to_string(),
                line: idx + 1,
            });
        }
        out
    }

    /// True when a concrete `name` of `kind` is declared: an exact entry
    /// or a `<var>` pattern entry that matches.
    pub fn matches(&self, kind: &str, name: &str) -> bool {
        self.entries.iter().any(|e| {
            e.kind == kind
                && if e.is_pattern() {
                    pattern_matches_name(&e.name, name)
                } else {
                    e.name == name
                }
        })
    }
}

/// Matches a `<var>` pattern against a concrete name: literal segments
/// match byte-for-byte, each `<…>` placeholder matches one or more
/// non-dot characters.
pub fn pattern_matches_name(pattern: &str, name: &str) -> bool {
    fn rec(p: &str, n: &str) -> bool {
        match p.find('<') {
            None => p == n,
            Some(at) => {
                let (lit, rest) = p.split_at(at);
                let Some(n) = n.strip_prefix(lit) else {
                    return false;
                };
                let Some(close) = rest.find('>') else {
                    return false;
                };
                let after = &rest[close + 1..];
                // Try every non-empty dot-free run for the placeholder.
                let run = n.find('.').unwrap_or(n.len());
                (1..=run).any(|take| rec(after, &n[take..]))
            }
        }
    }
    rec(pattern, name)
}

/// One telemetry name usage extracted from source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameSite {
    /// Instrument kind.
    pub kind: String,
    /// The literal (static sites) or format template (dynamic sites).
    pub name: String,
    /// True when the name came from a `format!` template: `{…}` holes
    /// must be matched against `<var>` pattern entries.
    pub dynamic: bool,
    /// Repo-relative path.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
}

/// Registration methods on `Registry` whose first argument names the
/// instrument.
const REGISTRY_METHODS: [&str; 4] = ["counter", "gauge", "histogram", "ring"];

/// Extracts every telemetry name site from one file's token stream.
pub fn extract(file: &SourceFile) -> Vec<NameSite> {
    let tokens = lexer::tokenize(&file.content);
    let code: Vec<&Token<'_>> = lexer::code(&tokens);
    let mut sites = Vec::new();
    let mut push = |kind: &str, tok: &Token<'_>, dynamic: bool, body: &str| {
        sites.push(NameSite {
            kind: kind.to_string(),
            name: body.to_string(),
            dynamic,
            path: file.path.clone(),
            line: line_of(&file.content, tok.start),
        });
    };

    for i in 0..code.len() {
        let t = code[i];
        // `.counter("…")` / `.gauge(&format!("…"))` / `.emit("…", …)`.
        if t.is_punct('.') && code.get(i + 2).is_some_and(|n| n.is_punct('(')) {
            if let Some(m) = code.get(i + 1).filter(|m| m.kind == TokenKind::Ident) {
                let kind = if REGISTRY_METHODS.contains(&m.text) {
                    Some(m.text)
                } else if m.text == "emit" || m.text == "emit_with" {
                    Some("event")
                } else {
                    None
                };
                if let Some(kind) = kind {
                    // Non-literal args (e.g. a local var) yield None and
                    // are skipped — only literal names are checkable.
                    if let Some((tok, body, dynamic)) = first_arg_name(&code, i + 3) {
                        push(kind, tok, dynamic, &body);
                    }
                }
            }
        }
        // `Span::enter(reg, "…")` / `Span::enter(reg, &format!("…"))` —
        // the name is the second argument; format templates become
        // dynamic sites matched against `<var>` pattern entries, the
        // same as registry-method names.
        if t.is_ident("Span")
            && code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 3).is_some_and(|n| n.is_ident("enter"))
            && code.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            // Find the comma separating the registry from the name
            // (argument depth 1), then read the name like a first arg.
            let mut depth = 1usize;
            let mut k = i + 5;
            while k < code.len() && depth > 0 {
                let c = code[k];
                if c.is_punct('(') {
                    depth += 1;
                } else if c.is_punct(')') {
                    depth -= 1;
                } else if depth == 1 && c.is_punct(',') {
                    if let Some((tok, body, dynamic)) = first_arg_name(&code, k + 1) {
                        push("span", tok, dynamic, &body);
                    }
                    break;
                }
                k += 1;
            }
        }
    }
    sites
}

/// Reads the first argument starting at token index `at`: a plain
/// string literal, or `&format!("…", …)` whose template becomes a
/// dynamic name. Returns `(token, name, dynamic)`.
fn first_arg_name<'a, 'b>(
    code: &'b [&'b Token<'a>],
    at: usize,
) -> Option<(&'b Token<'a>, String, bool)> {
    let mut k = at;
    // Skip leading `&`s.
    while code.get(k).is_some_and(|c| c.is_punct('&')) {
        k += 1;
    }
    let t = code.get(k)?;
    if let Some(body) = t.str_body() {
        return Some((t, body.to_string(), false));
    }
    if t.is_ident("format") && code.get(k + 1).is_some_and(|n| n.is_punct('!')) {
        let lit = code.get(k + 3)?;
        let body = lit.str_body()?;
        // A template with no holes is effectively static.
        let dynamic = body.contains('{');
        return Some((lit, body.to_string(), dynamic));
    }
    None
}

/// Converts a `format!` template into the schema's `<var>` shape:
/// `broker.b{}.msgs_in` → `broker.b<v>.msgs_in`, `{tag}.msgs_in` →
/// `<v>.msgs_in`.
fn template_to_shape(template: &str) -> String {
    let mut out = String::new();
    let mut rest = template;
    while let Some(at) = rest.find('{') {
        out.push_str(&rest[..at]);
        match rest[at..].find('}') {
            Some(close) => {
                out.push_str("<v>");
                rest = &rest[at + close + 1..];
            }
            None => {
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

/// True when a dynamic template can produce names matching `pattern`:
/// the template's literal tail must equal the pattern's, and the two
/// literal heads must agree up to the shorter one (a `{hole}` can then
/// supply the rest — e.g. `{tag}.msgs_in` built from
/// `tag = "broker.b42"` matches `broker.b<id>.msgs_in`).
pub fn template_matches_pattern(template: &str, pattern: &str) -> bool {
    let shape = template_to_shape(template);
    if !shape.contains("<v>") {
        return pattern_matches_name(pattern, &shape);
    }
    let t_head = shape.split("<v>").next().unwrap_or("");
    let t_tail = shape.rsplit("<v>").next().unwrap_or("");
    let p_head = pattern.split('<').next().unwrap_or("");
    let p_tail = pattern.rsplit('>').next().unwrap_or(pattern);
    t_tail == p_tail && (t_head.starts_with(p_head) || p_head.starts_with(t_head))
}

/// Runs the lint: extracts all name sites from in-scope files and
/// cross-checks them against the schema.
pub fn run(files: &[SourceFile], schema: &Schema, schema_path: &str) -> Vec<Finding> {
    let mut findings: Vec<Finding> = schema.errors.clone();
    let mut used = vec![false; schema.entries.len()];
    let mut sites: Vec<NameSite> = Vec::new();

    for file in files {
        let in_scope = file
            .crate_name()
            .is_some_and(|c| !EXEMPT_CRATES.contains(&c))
            && file.is_library_code();
        if in_scope {
            sites.extend(extract(file));
        }
    }

    for site in &sites {
        let mut covered = false;
        for (i, e) in schema.entries.iter().enumerate() {
            if e.kind != site.kind {
                continue;
            }
            let hit = if site.dynamic {
                e.is_pattern() && template_matches_pattern(&site.name, &e.name)
            } else if e.is_pattern() {
                pattern_matches_name(&e.name, &site.name)
            } else {
                e.name == site.name
            };
            if hit {
                used[i] = true;
                covered = true;
            }
        }
        if !covered {
            let what = if site.dynamic {
                format!(
                    "dynamic {} name `{}` matches no `<var>` pattern in {schema_path}",
                    site.kind, site.name
                )
            } else {
                format!(
                    "unknown {} name `{}` — declare it in {schema_path} or fix the typo",
                    site.kind, site.name
                )
            };
            findings.push(Finding {
                lint: "telemetry-schema",
                path: site.path.clone(),
                line: site.line,
                message: what,
            });
        }
    }

    // Dead entries: declared but never registered. `benchkey` entries
    // are validated by tests/experiments_smoke.rs instead.
    for (i, e) in schema.entries.iter().enumerate() {
        if !used[i] && e.kind != "benchkey" {
            findings.push(Finding {
                lint: "telemetry-schema",
                path: schema_path.to_string(),
                line: e.line,
                message: format!(
                    "dead schema entry: `{} {}` is registered nowhere in the workspace",
                    e.kind, e.name
                ),
            });
        }
    }
    findings
}

/// Per-kind tallies of extracted sites (used by `--format json`).
pub fn site_counts(sites: &[NameSite]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for s in sites {
        *counts.entry(s.kind.clone()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, schema_text: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new("crates/core/src/x.rs", src)];
        let schema = Schema::parse("schema.txt", schema_text);
        run(&files, &schema, "schema.txt")
    }

    #[test]
    fn known_names_pass_unknown_fail() {
        let src = "fn f(reg: &Registry) {\n    let c = reg.counter(\"cram.merges\");\n    let g = reg.gauge(\"cram.final_units\");\n    let bad = reg.counter(\"typo.name\");\n}\n";
        let schema = "counter cram.merges\ngauge cram.final_units\n";
        let got = lint(src, schema);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("typo.name"));
        assert_eq!(got[0].line, 4);
    }

    #[test]
    fn dead_entries_fail_benchkeys_exempt() {
        let src = "fn f(reg: &Registry) { reg.counter(\"a.b\"); }\n";
        let got = lint(src, "counter a.b\ncounter dead.name\nbenchkey speedup\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("dead.name"));
    }

    #[test]
    fn spans_events_and_rings_extract() {
        let src = "fn f(reg: &Registry) {\n    let _s = Span::enter(reg, \"cram.run\");\n    let ring = reg.ring(\"cram\", 64);\n    ring.emit_with(\"gif.merge\", || String::new());\n    ring.emit(\"pair.blacklist\", \"x\");\n}\n";
        let schema = "span cram.run\nring cram\nevent gif.merge\nevent pair.blacklist\n";
        let got = lint(src, schema);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn format_built_span_names_are_dynamic_sites() {
        let src = "fn f(reg: &Registry, z: u32) {\n    let _a = Span::enter(reg, &format!(\"zone.cram.z{z}\"));\n    let _b = Span::enter(reg, &format!(\"rogue.{z}.span\"));\n}\n";
        let got = lint(src, "span zone.cram.z<id>\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("rogue."), "{got:?}");
        assert!(got[0].message.contains("dynamic span name"), "{got:?}");
    }

    #[test]
    fn dynamic_names_need_a_pattern() {
        let src = "fn f(reg: &Registry, id: u32) {\n    let tag = format!(\"broker.b{id}\");\n    reg.gauge(&format!(\"{tag}.msgs_in\"));\n    reg.histogram(&format!(\"broker.b{}.delay_us\", id));\n    reg.gauge(&format!(\"rogue.{id}.thing\"));\n}\n";
        let schema = "gauge broker.b<id>.msgs_in\nhistogram broker.b<id>.delay_us\n";
        let got = lint(src, schema);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("rogue."), "{got:?}");
    }

    #[test]
    fn pattern_matching_rules() {
        assert!(pattern_matches_name(
            "broker.b<id>.msgs_in",
            "broker.b42.msgs_in"
        ));
        assert!(!pattern_matches_name(
            "broker.b<id>.msgs_in",
            "broker.b42.msgs_out"
        ));
        assert!(!pattern_matches_name(
            "broker.b<id>.msgs_in",
            "broker.b4.2.msgs_in"
        ));
        assert!(pattern_matches_name("plain.name", "plain.name"));
        assert!(template_matches_pattern(
            "{tag}.msgs_in",
            "broker.b<id>.msgs_in"
        ));
        assert!(template_matches_pattern(
            "broker.b{}.delay_us",
            "broker.b<id>.delay_us"
        ));
        assert!(!template_matches_pattern(
            "{tag}.msgs_out",
            "broker.b<id>.msgs_in"
        ));
    }

    #[test]
    fn comments_strings_and_test_code_do_not_extract() {
        // Extraction is token-level: a name in a doc comment or inside
        // another string cannot register.
        let src = "/// call reg.counter(\"doc.example\")\nfn f() -> &'static str { \"reg.gauge(\\\"fake.name\\\")\" }\n";
        let got = lint(src, "");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn exempt_crates_are_skipped() {
        let files = vec![SourceFile::new(
            "crates/telemetry/src/lib.rs",
            "fn f(reg: &Registry) { reg.counter(\"doc.example\"); }\n",
        )];
        let schema = Schema::parse("schema.txt", "");
        assert!(run(&files, &schema, "schema.txt").is_empty());
    }
}
