//! Justified allowlists (DESIGN.md §9).
//!
//! Format, one entry per line:
//!
//! ```text
//! <repo-relative-path> <kind> <substring-or-*> -- <justification>
//! ```
//!
//! The set of valid `kind`s and the entry budget are parameterized per
//! lint via [`AllowlistSpec`]: panic-freedom uses
//! `analysis/panic-allowlist.txt` (`unwrap`/`expect`/`index`/`panic`),
//! the determinism lint uses `analysis/determinism-allowlist.txt`
//! (`iter`/`wallclock`). The third field must occur on the flagged
//! source line (`*` matches any line in the file). The justification
//! after ` -- ` is mandatory: an entry is a documented invariant, not
//! an opt-out. Blank lines and `#` comments are ignored.

use crate::Finding;

/// Per-lint allowlist policy: which lint owns the file, which kinds are
/// legal, and how many entries the file may carry before the lint fails
/// outright (growth means problems accumulate faster than they are
/// remediated).
#[derive(Debug, Clone, Copy)]
pub struct AllowlistSpec {
    /// Lint name stamped on findings about the allowlist itself.
    pub lint: &'static str,
    /// The kinds entries may use.
    pub kinds: &'static [&'static str],
    /// Maximum number of entries the file may carry.
    pub budget: usize,
}

/// Policy for `analysis/panic-allowlist.txt`. The budget ratchets down
/// as entries are remediated — it was 15 when the lint landed, and the
/// PR-4 remediation pass brought the file to 8 entries.
pub const PANIC_SPEC: AllowlistSpec = AllowlistSpec {
    lint: "panic-freedom",
    kinds: &["unwrap", "expect", "index", "panic"],
    budget: 10,
};

/// Policy for `analysis/determinism-allowlist.txt`.
pub const DETERMINISM_SPEC: AllowlistSpec = AllowlistSpec {
    lint: "determinism",
    kinds: &["iter", "wallclock"],
    budget: 6,
};

/// The panic-freedom entry budget (kept for compatibility with callers
/// that predate [`AllowlistSpec`]).
pub const MAX_ENTRIES: usize = PANIC_SPEC.budget;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Repo-relative path the entry applies to.
    pub path: String,
    /// Finding kind, one of the owning spec's `kinds`.
    pub kind: String,
    /// Substring that must appear on the flagged line; `*` matches all.
    pub pattern: String,
    /// Why the finding is acceptable.
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// Parsed allowlist plus any syntax errors found while reading it.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Valid entries in file order.
    pub entries: Vec<Entry>,
    /// Findings for malformed lines.
    pub errors: Vec<Finding>,
}

impl Allowlist {
    /// Parses panic-freedom allowlist text; `path` is used in error
    /// findings.
    pub fn parse(path: &str, text: &str) -> Self {
        Self::parse_with(path, text, &PANIC_SPEC)
    }

    /// Parses allowlist text under a per-lint policy.
    pub fn parse_with(path: &str, text: &str, spec: &AllowlistSpec) -> Self {
        let mut out = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((head, justification)) = line.split_once(" -- ") else {
                out.errors.push(Finding {
                    lint: spec.lint,
                    path: path.to_string(),
                    line: idx + 1,
                    message: "allowlist entry missing ` -- <justification>`".to_string(),
                });
                continue;
            };
            let fields: Vec<&str> = head.split_whitespace().collect();
            if fields.len() != 3 {
                out.errors.push(Finding {
                    lint: spec.lint,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "allowlist entry needs `<path> <kind> <pattern>`, got {} fields",
                        fields.len()
                    ),
                });
                continue;
            }
            let kind = fields[1];
            if !spec.kinds.contains(&kind) {
                out.errors.push(Finding {
                    lint: spec.lint,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!("unknown allowlist kind `{kind}`"),
                });
                continue;
            }
            out.entries.push(Entry {
                path: fields[0].to_string(),
                kind: kind.to_string(),
                pattern: fields[2].to_string(),
                justification: justification.trim().to_string(),
                line: idx + 1,
            });
        }
        if out.entries.len() > spec.budget {
            out.errors.push(Finding {
                lint: spec.lint,
                path: path.to_string(),
                line: 0,
                message: format!(
                    "allowlist has {} entries; the budget is {} — remediate instead of allowlisting",
                    out.entries.len(),
                    spec.budget
                ),
            });
        }
        out
    }

    /// True when some entry covers a finding of `kind` at `path` whose
    /// source line text is `line_text`. Matching entries are marked used.
    pub fn covers(&self, used: &mut [bool], path: &str, kind: &str, line_text: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.path == path
                && e.kind == kind
                && (e.pattern == "*" || line_text.contains(&e.pattern))
            {
                used[i] = true;
                return true;
            }
        }
        false
    }

    /// Findings for entries that matched nothing (stale entries keep
    /// the budget hostage, so they are errors too).
    pub fn unused(&self, used: &[bool], allowlist_path: &str) -> Vec<Finding> {
        self.unused_with(used, allowlist_path, "panic-freedom")
    }

    /// Like [`Allowlist::unused`] with an explicit lint label.
    pub fn unused_with(
        &self,
        used: &[bool],
        allowlist_path: &str,
        lint: &'static str,
    ) -> Vec<Finding> {
        self.entries
            .iter()
            .zip(used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| Finding {
                lint,
                path: allowlist_path.to_string(),
                line: e.line,
                message: format!(
                    "stale allowlist entry: `{} {} {}` matched no finding",
                    e.path, e.kind, e.pattern
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_rejects_malformed() {
        let text = "\
# comment
crates/core/src/overlay.rs expect layer-not-empty -- layers built non-empty by construction

crates/profile/src/bitvec.rs index * -- word index bounded by len()/64
crates/core/src/cram.rs badkind x -- nope
missing-justification unwrap x
";
        let al = Allowlist::parse("analysis/panic-allowlist.txt", text);
        assert_eq!(al.entries.len(), 2);
        assert_eq!(al.errors.len(), 2);
        assert_eq!(al.entries[0].kind, "expect");
        assert_eq!(al.entries[1].pattern, "*");
    }

    #[test]
    fn kinds_are_per_spec() {
        let text = "crates/core/src/cram.rs wallclock Instant -- telemetry-only scan timer";
        let as_panic = Allowlist::parse("p.txt", text);
        assert_eq!(as_panic.entries.len(), 0);
        assert_eq!(as_panic.errors.len(), 1);
        let as_det = Allowlist::parse_with("d.txt", text, &DETERMINISM_SPEC);
        assert_eq!(as_det.entries.len(), 1);
        assert!(as_det.errors.is_empty());
        assert_eq!(as_det.errors.len(), 0);
    }

    #[test]
    fn covers_by_path_kind_and_pattern() {
        let al = Allowlist::parse(
            "a.txt",
            "crates/x/src/a.rs unwrap frob -- invariant\ncrates/x/src/b.rs index * -- bounded",
        );
        let mut used = vec![false; al.entries.len()];
        assert!(al.covers(
            &mut used,
            "crates/x/src/a.rs",
            "unwrap",
            "let y = frob().unwrap();"
        ));
        assert!(!al.covers(
            &mut used,
            "crates/x/src/a.rs",
            "unwrap",
            "let y = other().unwrap();"
        ));
        assert!(!al.covers(&mut used, "crates/x/src/a.rs", "expect", "frob"));
        assert!(al.covers(&mut used, "crates/x/src/b.rs", "index", "v[i] += 1;"));
        assert!(al.unused(&used, "a.txt").is_empty());
    }

    #[test]
    fn flags_stale_entries_and_budget() {
        let al = Allowlist::parse("a.txt", "crates/x/src/a.rs unwrap never -- unused");
        let used = vec![false; al.entries.len()];
        let stale = al.unused(&used, "a.txt");
        assert_eq!(stale.len(), 1);

        let many: String = (0..PANIC_SPEC.budget + 1)
            .map(|i| format!("crates/x/src/f{i}.rs unwrap * -- e{i}\n"))
            .collect();
        let al = Allowlist::parse("a.txt", &many);
        assert!(al.errors.iter().any(|f| f.message.contains("budget")));
    }
}
