//! Golden determinism test: the workspace call-graph export is
//! byte-stable — two independent loads and builds over the real tree
//! render identical `greenps-callgraph/1` JSON. CI re-checks the same
//! property across two process invocations.

use greenps_analysis::callgraph::CallGraph;
use greenps_analysis::{load_sources, workspace_root, SourceFile};
use std::path::Path;

fn first_party_sources() -> Vec<SourceFile> {
    let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR");
    let mut files = load_sources(&root, "crates").expect("load crates/");
    files.extend(load_sources(&root, "src").expect("load src/"));
    files.retain(|f| f.path.starts_with("crates/") || f.path.starts_with("src/"));
    files.sort_by(|a, b| a.path.cmp(&b.path));
    files
}

#[test]
fn callgraph_json_is_byte_stable() {
    let a = CallGraph::build(&first_party_sources()).to_json();
    let b = CallGraph::build(&first_party_sources()).to_json();
    assert_eq!(
        a, b,
        "two builds over the same tree must render identically"
    );
    assert!(a.starts_with("{\n  \"schema\": \"greenps-callgraph/1\""));
}

#[test]
fn callgraph_covers_the_known_hot_entries() {
    let g = CallGraph::build(&first_party_sources());
    for entry in [
        "greenps_core::cram::Engine::attempt",
        "greenps_simnet::network::Network::dispatch",
        "greenps_pubsub::matching::BucketMatcher::matches_into",
    ] {
        assert!(
            !g.find_suffix(entry).is_empty(),
            "hot-paths.txt entry `{entry}` must resolve in the graph"
        );
    }
}
