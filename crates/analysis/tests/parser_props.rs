//! Property-based test of the item parser: inserting comments and
//! whitespace between tokens must never change the parsed structure.
//!
//! Trivia is only inserted where the original source already separates
//! two tokens — splitting an adjacent pair would legitimately change
//! the token stream (`-` `>` is only an arrow when the bytes touch).

use greenps_analysis::lexer::tokenize;
use greenps_analysis::parser::{parse_file, Callee, FnItem, ParsedFile};
use greenps_analysis::SourceFile;
use proptest::prelude::*;

/// Realistic snippets covering the parser's item shapes: modules, impl
/// blocks, traits, closures, turbofish, nested fns, typed lets.
const SOURCES: &[&str] = &[
    "pub fn top() {}\nmod inner { pub(crate) fn deep(a: u64) -> usize { a as usize } }",
    r#"
    pub struct Pool { cache: Cache, names: Vec<String> }
    pub struct Cache;
    impl Cache { pub fn get(&self) -> u64 { 7 } }
    impl Pool {
        pub fn run(&mut self, c: &Cache) -> u64 {
            let d: Cache = make();
            self.cache.get() + c.get() + d.get()
        }
    }
    pub fn make() -> Cache { Cache }
    "#,
    r#"
    pub trait Closeness { fn closeness(&self, a: u64, b: u64) -> f64; }
    pub struct Ios;
    impl Closeness for Ios {
        fn closeness(&self, a: u64, b: u64) -> f64 { (a.min(b)) as f64 }
    }
    pub fn drive(m: &dyn Closeness) -> f64 { m.closeness(1, 2) }
    "#,
    r#"
    pub fn fan(items: &[u64], threads: usize) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::<u64>::with_capacity(items.len());
        items.iter().for_each(|x| out.push(helper(*x, threads)));
        fn helper(v: u64, t: usize) -> u64 { v + t as u64 }
        format!("{}", out.len());
        out
    }
    "#,
    r#"
    #[cfg(test)]
    mod tests {
        pub fn only_in_tests() { crate::fan(&[], 0); }
    }
    pub fn outside() -> bool { true }
    "#,
];

/// Trivia variants that are safe anywhere two tokens are already
/// separated: every line comment terminates itself with a newline.
const TRIVIA: &[&str] = &[
    " ",
    "\n",
    "\t\t",
    "/* inserted */",
    "// inserted\n",
    "/* multi\n   line */ ",
];

/// Re-renders `src` with extra trivia inside every pre-existing
/// inter-token gap, chosen by cycling through `seed`.
fn insert_trivia(src: &str, seed: &[u8]) -> String {
    let toks = tokenize(src);
    let mut out = String::with_capacity(src.len() * 2);
    let mut prev_end = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.start > prev_end {
            out.push_str(&src[prev_end..t.start]);
            let pick = seed[i % seed.len()] as usize % TRIVIA.len();
            out.push_str(TRIVIA[pick]);
        }
        out.push_str(t.text);
        prev_end = t.end;
    }
    out.push_str(&src[prev_end..]);
    out
}

/// Offset- and line-independent projection of one parsed function.
fn fn_summary(f: &FnItem) -> String {
    let calls: Vec<String> = f
        .calls
        .iter()
        .map(|c| match &c.callee {
            Callee::Path(segs) => format!("path:{}", segs.join("::")),
            Callee::Method { name, receiver } => format!("method:{name}:{receiver:?}"),
        })
        .collect();
    let macros: Vec<&str> = f.macros.iter().map(|m| m.name.as_str()).collect();
    format!(
        "{} self_ty={:?} trait={:?} has_self={} vis={:?} params={:?} ret={:?} lets={:?} \
         calls={calls:?} macros={macros:?} test={} has_body={}",
        f.qualified,
        f.self_ty,
        f.trait_name,
        f.has_self,
        f.vis,
        f.params,
        f.ret,
        f.lets,
        f.is_test,
        f.body.is_some(),
    )
}

fn summary(p: &ParsedFile) -> Vec<String> {
    let mut out: Vec<String> = p.fns.iter().map(fn_summary).collect();
    out.extend(
        p.types
            .iter()
            .map(|t| format!("type {:?} {} fields={:?}", t.kind, t.name, t.fields)),
    );
    out
}

proptest! {
    /// Parsing is invariant under comment/whitespace insertion at
    /// token boundaries that the source already separates.
    #[test]
    fn parse_stable_under_trivia(
        src_idx in 0usize..SOURCES.len(),
        seed in proptest::collection::vec(0u8..u8::MAX, 1..48),
    ) {
        let src = SOURCES.get(src_idx).expect("index drawn from range");
        let mutated = insert_trivia(src, &seed);
        let base = parse_file(&SourceFile::new("crates/core/src/m.rs", src));
        let got = parse_file(&SourceFile::new("crates/core/src/m.rs", &mutated));
        prop_assert_eq!(summary(&base), summary(&got));
    }
}

/// The trivia re-renderer really changes the text (sanity check that
/// the property is not vacuous).
#[test]
fn trivia_insertion_changes_the_text() {
    let src = SOURCES.first().expect("non-empty corpus");
    let mutated = insert_trivia(src, &[3]);
    assert_ne!(*src, mutated);
    assert!(mutated.contains("/* inserted */"));
}
