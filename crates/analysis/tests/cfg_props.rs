//! Property-based test of the CFG builder: inserting comments and
//! whitespace between tokens must never change the graph. Block ranges
//! index into the comment-stripped code-token slice, so the projection
//! compares token indices, successor edges, and loop structure — all
//! byte-offset-independent.
//!
//! Trivia is only inserted where the original source already separates
//! two tokens; splitting an adjacent pair would legitimately change
//! the token stream.

use greenps_analysis::cfg::Cfg;
use greenps_analysis::lexer::{code, tokenize};
use greenps_analysis::parser::parse_file;
use greenps_analysis::SourceFile;
use proptest::prelude::*;

/// Snippets covering the builder's control-flow shapes: branches,
/// loop flavors, `break`/`continue` (labelled and not), `match` arms,
/// `?` early exits, and nesting.
const SOURCES: &[&str] = &[
    r#"
    pub fn branches(a: u64) -> u64 {
        if a > 3 { helper(a) } else { a + 1 }
    }
    pub fn helper(v: u64) -> u64 { v }
    "#,
    r#"
    pub fn loops(items: &[u64]) -> u64 {
        let mut total = 0;
        for x in items {
            if *x == 0 { continue; }
            total += x;
        }
        while total > 100 { total /= 2; }
        loop {
            if total == 0 { break; }
            total -= 1;
        }
        total
    }
    "#,
    r#"
    pub fn nested(rows: &[Vec<u64>]) -> u64 {
        let mut hits = 0;
        'outer: for row in rows {
            for v in row {
                if *v > 9 { break 'outer; }
                hits += 1;
            }
        }
        hits
    }
    "#,
    r#"
    pub fn questions(s: &str) -> Result<u64, std::num::ParseIntError> {
        let a: u64 = s.parse()?;
        let b: u64 = "7".parse()?;
        Ok(a + b)
    }
    "#,
    r#"
    pub fn matches(k: u64) -> u64 {
        match k {
            0 => 1,
            1 | 2 => { let t = k * 2; t }
            _ => {
                let mut v = k;
                while v > 10 { v -= 3; }
                v
            }
        }
    }
    "#,
];

/// Trivia variants that are safe anywhere two tokens are already
/// separated: every line comment terminates itself with a newline.
const TRIVIA: &[&str] = &[
    " ",
    "\n",
    "\t\t",
    "/* inserted */",
    "// inserted\n",
    "/* multi\n   line */ ",
];

/// Re-renders `src` with extra trivia inside every pre-existing
/// inter-token gap, chosen by cycling through `seed`.
fn insert_trivia(src: &str, seed: &[u8]) -> String {
    let toks = tokenize(src);
    let mut out = String::with_capacity(src.len() * 2);
    let mut prev_end = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.start > prev_end {
            out.push_str(&src[prev_end..t.start]);
            let pick = seed[i % seed.len()] as usize % TRIVIA.len();
            out.push_str(TRIVIA[pick]);
        }
        out.push_str(t.text);
        prev_end = t.end;
    }
    out.push_str(&src[prev_end..]);
    out
}

/// Byte-offset-independent projection: per function, every block's
/// code-token index ranges and successors, the exit index, and each
/// loop's kind and head block. Code-token indices are stable under
/// comment/whitespace insertion because trivia never produces a code
/// token.
fn cfg_summaries(src: &str) -> Vec<String> {
    let file = SourceFile {
        path: "props.rs".into(),
        content: src.to_string(),
    };
    let parsed = parse_file(&file);
    let toks = tokenize(src);
    let code = code(&toks);
    parsed
        .fns
        .iter()
        .filter_map(|f| f.body.map(|b| (f, b)))
        .map(|(f, body)| {
            let cfg = Cfg::build(&code, body, src);
            let blocks: Vec<String> = cfg
                .blocks
                .iter()
                .map(|b| format!("ranges={:?} succs={:?}", b.ranges, b.succs))
                .collect();
            let loops: Vec<String> = cfg
                .loops
                .iter()
                .map(|l| format!("{:?}@{}", l.kind, l.head))
                .collect();
            format!(
                "{} exit={} blocks={blocks:?} loops={loops:?}",
                f.qualified, cfg.exit
            )
        })
        .collect()
}

proptest! {
    /// The CFG is invariant under comment/whitespace insertion at
    /// token boundaries the source already separates.
    #[test]
    fn cfg_stable_under_trivia(
        src_idx in 0usize..SOURCES.len(),
        seed in proptest::collection::vec(0u8..u8::MAX, 1..48),
    ) {
        let src = SOURCES.get(src_idx).expect("index drawn from range");
        let mutated = insert_trivia(src, &seed);
        prop_assert!(&mutated != src, "trivia insertion must change the bytes");
        let base = cfg_summaries(src);
        prop_assert!(!base.is_empty(), "every snippet parses at least one fn");
        prop_assert_eq!(base, cfg_summaries(&mutated));
    }
}
