//! Hierarchical phase spans.
//!
//! A [`Span`] times one phase of a reconfiguration run. Spans are named
//! with dotted paths (`phase2.allocation.cram`); the exporter folds the
//! flat path → stat map into a tree, so nesting is expressed in the
//! name rather than in thread-local ambient state — deterministic even
//! when phases run on worker threads.
//!
//! Timing is recorded once, when the span ends (explicit
//! [`Span::finish`] or drop), with a single short-lived lock on the
//! registry's span table; entering a span on the hot path costs one
//! `Instant::now()`. Spans from a disabled registry skip even that.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Flat span-path → stat table shared with the registry.
pub(crate) type SpanTable = Mutex<BTreeMap<String, SpanStat>>;

/// Accumulated timing for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Total wall time spent inside the span, in nanoseconds.
    pub wall_nanos: u64,
    /// Number of times the span was entered and finished.
    pub count: u64,
}

/// An in-flight phase timer; records into the registry when it ends.
#[derive(Debug, Default)]
pub struct Span {
    live: Option<(Arc<SpanTable>, String, Instant)>,
}

impl Span {
    /// Starts timing `path` (dotted, e.g. `"phase1.gathering"`) against
    /// `registry`. Returns a no-op span when the registry is disabled.
    pub fn enter(registry: &crate::Registry, path: &str) -> Span {
        Span {
            live: registry
                .span_table()
                .map(|table| (table, path.to_string(), Instant::now())),
        }
    }

    /// A detached no-op span.
    pub fn noop() -> Span {
        Span { live: None }
    }

    /// True when this span will record on finish.
    pub fn is_enabled(&self) -> bool {
        self.live.is_some()
    }

    /// The dotted path being timed, if enabled.
    pub fn path(&self) -> Option<&str> {
        self.live.as_ref().map(|(_, p, _)| p.as_str())
    }

    /// Starts a child span `"<self>.<name>"`; timing is independent of
    /// the parent (children may outlive it).
    pub fn child(&self, name: &str) -> Span {
        Span {
            live: self.live.as_ref().map(|(table, path, _)| {
                (Arc::clone(table), format!("{path}.{name}"), Instant::now())
            }),
        }
    }

    /// Ends the span now, recording its wall time. Dropping the span
    /// does the same; `finish` just makes the end point explicit.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some((table, path, start)) = self.live.take() {
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut table = table.lock();
            let stat = table.entry(path).or_default();
            stat.wall_nanos = stat.wall_nanos.saturating_add(elapsed);
            stat.count += 1;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// One node of the folded span tree (see [`span_tree`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Stats recorded directly at this path (zero for pure ancestors).
    pub stat: SpanStat,
    /// Child spans keyed by their next path segment.
    pub children: BTreeMap<String, SpanNode>,
}

/// Folds a flat `path → stat` map into a tree by splitting paths on
/// `.`. Intermediate nodes that were never entered themselves get a
/// zero [`SpanStat`].
pub(crate) fn span_tree(flat: &BTreeMap<String, SpanStat>) -> SpanNode {
    let mut root = SpanNode::default();
    for (path, stat) in flat {
        let mut node = &mut root;
        for segment in path.split('.') {
            node = node.children.entry(segment.to_string()).or_default();
        }
        node.stat = *stat;
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop_and_finish() {
        let reg = crate::Registry::new();
        {
            let s = Span::enter(&reg, "a.b");
            assert!(s.is_enabled());
            assert_eq!(s.path(), Some("a.b"));
            s.finish();
        }
        {
            let _s = Span::enter(&reg, "a.b");
        }
        let snap = reg.snapshot();
        let stat = snap.spans.get("a.b").copied().unwrap_or_default();
        assert_eq!(stat.count, 2);
    }

    #[test]
    fn child_extends_path() {
        let reg = crate::Registry::new();
        let parent = Span::enter(&reg, "phase2");
        let child = parent.child("cram");
        assert_eq!(child.path(), Some("phase2.cram"));
        child.finish();
        parent.finish();
        let snap = reg.snapshot();
        assert!(snap.spans.contains_key("phase2.cram"));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let reg = crate::Registry::disabled();
        let s = Span::enter(&reg, "x");
        assert!(!s.is_enabled());
        assert_eq!(s.path(), None);
        let c = s.child("y");
        assert!(!c.is_enabled());
        drop(c);
        drop(s);
        assert!(reg.snapshot().spans.is_empty());
    }

    #[test]
    fn tree_folds_dotted_paths() {
        let mut flat = BTreeMap::new();
        flat.insert(
            "a".to_string(),
            SpanStat {
                wall_nanos: 5,
                count: 1,
            },
        );
        flat.insert(
            "a.b.c".to_string(),
            SpanStat {
                wall_nanos: 2,
                count: 3,
            },
        );
        let tree = span_tree(&flat);
        let a = tree.children.get("a").unwrap();
        assert_eq!(a.stat.count, 1);
        let b = a.children.get("b").unwrap();
        assert_eq!(b.stat, SpanStat::default());
        assert_eq!(b.children.get("c").unwrap().stat.wall_nanos, 2);
    }
}
