//! Deterministic snapshot serializers.
//!
//! Both exporters walk a [`Snapshot`] — whose collections are all
//! `BTreeMap`s — so two snapshots with equal contents always serialize
//! to byte-identical output, with no dependency on hash ordering or
//! locale. JSON is hand-rolled (the workspace builds offline against
//! std-only stubs); the grammar subset used here is plain RFC 8259.

use crate::registry::Snapshot;
use crate::span::SpanNode;
use std::fmt::Write as _;

/// Serializes a [`Snapshot`] as pretty-printed JSON.
///
/// Schema (all maps sorted by key):
///
/// ```json
/// {
///   "schema": "greenps-telemetry/1",
///   "counters": {"name": 0},
///   "gauges": {"name": 0},
///   "histograms": {"name": {"count": 0, "sum": 0, "min": 0, "max": 0,
///                           "buckets": [[upper_bound, count]]}},
///   "spans": {"phase": {"wall_ns": 0, "count": 0, "children": {}}},
///   "events": {"ring": {"dropped": 0,
///                       "events": [{"seq": 1, "kind": "k", "detail": "d"}]}}
/// }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonExporter;

impl JsonExporter {
    /// Renders `snapshot` to a JSON string.
    pub fn export(snapshot: &Snapshot) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"greenps-telemetry/1\",\n");

        out.push_str("  \"counters\": ");
        write_scalar_map(&mut out, 1, snapshot.counters.iter());
        out.push_str(",\n  \"gauges\": ");
        write_scalar_map(&mut out, 1, snapshot.gauges.iter());

        out.push_str(",\n  \"histograms\": ");
        write_map(&mut out, 1, snapshot.histograms.iter(), |out, indent, h| {
            out.push('{');
            let _ = write!(
                out,
                "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            );
            for (i, (bound, count)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bound}, {count}]");
            }
            out.push_str("]}");
            let _ = indent;
        });

        out.push_str(",\n  \"spans\": ");
        let tree = snapshot.span_tree();
        write_span_children(&mut out, 1, &tree);

        out.push_str(",\n  \"events\": ");
        write_map(&mut out, 1, snapshot.rings.iter(), |out, indent, ring| {
            out.push('{');
            let _ = write!(out, "\"dropped\": {}, \"events\": [", ring.dropped);
            for (i, event) in ring.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 2);
                let _ = write!(out, "{{\"seq\": {}, \"kind\": ", event.seq);
                push_json_string(out, &event.kind);
                out.push_str(", \"detail\": ");
                push_json_string(out, &event.detail);
                out.push('}');
            }
            if !ring.events.is_empty() {
                out.push('\n');
                push_indent(out, indent + 1);
            }
            out.push_str("]}");
        });

        out.push_str("\n}\n");
        out
    }
}

/// Serializes a [`Snapshot`] as flat CSV with a
/// `section,name,field,value` header — convenient for spreadsheets and
/// quick `grep`s over many runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvExporter;

impl CsvExporter {
    /// Renders `snapshot` to a CSV string.
    pub fn export(snapshot: &Snapshot) -> String {
        let mut out = String::from("section,name,field,value\n");
        for (name, v) in &snapshot.counters {
            push_row(&mut out, "counter", name, "value", &v.to_string());
        }
        for (name, v) in &snapshot.gauges {
            push_row(&mut out, "gauge", name, "value", &v.to_string());
        }
        for (name, h) in &snapshot.histograms {
            push_row(&mut out, "histogram", name, "count", &h.count.to_string());
            push_row(&mut out, "histogram", name, "sum", &h.sum.to_string());
            push_row(&mut out, "histogram", name, "min", &h.min.to_string());
            push_row(&mut out, "histogram", name, "max", &h.max.to_string());
            for (bound, count) in &h.buckets {
                push_row(
                    &mut out,
                    "histogram",
                    name,
                    &format!("le_{bound}"),
                    &count.to_string(),
                );
            }
        }
        for (path, stat) in &snapshot.spans {
            push_row(
                &mut out,
                "span",
                path,
                "wall_nanos",
                &stat.wall_nanos.to_string(),
            );
            push_row(&mut out, "span", path, "count", &stat.count.to_string());
        }
        for (name, ring) in &snapshot.rings {
            push_row(&mut out, "ring", name, "dropped", &ring.dropped.to_string());
            for event in &ring.events {
                push_row(
                    &mut out,
                    "event",
                    name,
                    &format!("{}:{}", event.seq, event.kind),
                    &event.detail,
                );
            }
        }
        out
    }
}

fn push_row(out: &mut String, section: &str, name: &str, field: &str, value: &str) {
    for (i, cell) in [section, name, field, value].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_csv_cell(out, cell);
    }
    out.push('\n');
}

fn push_csv_cell(out: &mut String, cell: &str) {
    if cell.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in cell.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `{"name": value, ...}` with one entry per line.
fn write_scalar_map<'a, I>(out: &mut String, indent: usize, entries: I)
where
    I: Iterator<Item = (&'a String, &'a u64)>,
{
    write_map(out, indent, entries, |out, _indent, v| {
        let _ = write!(out, "{v}");
    });
}

/// Writes `{"name": <rendered value>, ...}` with one entry per line,
/// delegating value rendering to `render`.
fn write_map<'a, K, V, I, F>(out: &mut String, indent: usize, entries: I, render: F)
where
    K: AsRef<str> + 'a,
    V: 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
    F: Fn(&mut String, usize, &V),
{
    let mut first = true;
    for (name, value) in entries {
        out.push_str(if first { "{\n" } else { ",\n" });
        first = false;
        push_indent(out, indent + 1);
        push_json_string(out, name.as_ref());
        out.push_str(": ");
        render(out, indent + 1, value);
    }
    if first {
        out.push_str("{}");
    } else {
        out.push('\n');
        push_indent(out, indent);
        out.push('}');
    }
}

/// Writes a span node's children as a JSON object of
/// `{"segment": {"wall_ns": .., "count": .., "children": {..}}}`.
fn write_span_children(out: &mut String, indent: usize, node: &SpanNode) {
    write_map(out, indent, node.children.iter(), |out, indent, child| {
        let _ = write!(
            out,
            "{{\"wall_ns\": {}, \"count\": {}, \"children\": ",
            child.stat.wall_nanos, child.stat.count
        );
        write_span_children(out, indent, child);
        out.push('}');
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, Span};

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("cram.closeness_computations").add(280_000);
        reg.gauge("core.pair_cache.hit_rate_pct").set(93);
        reg.histogram("simnet.delivery_delay_us").record(700);
        Span::enter(&reg, "phase2.allocation").finish();
        reg.ring("cram").emit("gif.merge", "g1+g2");
        reg.snapshot()
    }

    #[test]
    fn json_is_deterministic_and_contains_all_sections() {
        let a = JsonExporter::export(&sample());
        let b = JsonExporter::export(&{
            let mut s = sample();
            // Wall time differs run to run; normalize it like the
            // identity proptest does before comparing.
            for stat in s.spans.values_mut() {
                stat.wall_nanos = 0;
            }
            s
        });
        let mut a_norm = sample();
        for stat in a_norm.spans.values_mut() {
            stat.wall_nanos = 0;
        }
        assert_eq!(JsonExporter::export(&a_norm), b);
        assert!(a.contains("\"cram.closeness_computations\": 280000"));
        assert!(a.contains("\"phase2\""));
        assert!(a.contains("\"allocation\""));
        assert!(a.contains("\"gif.merge\""));
        assert!(a.contains("\"simnet.delivery_delay_us\""));
        assert!(a.contains("\"schema\": \"greenps-telemetry/1\""));
    }

    #[test]
    fn json_escapes_strings() {
        let reg = Registry::new();
        reg.ring("r").emit("quote\"kind", "tab\there\nline");
        let json = JsonExporter::export(&reg.snapshot());
        assert!(json.contains("quote\\\"kind"));
        assert!(json.contains("tab\\there\\nline"));
    }

    #[test]
    fn empty_snapshot_exports_empty_maps() {
        let json = JsonExporter::export(&Snapshot::default());
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": {}"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = CsvExporter::export(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("section,name,field,value"));
        assert!(csv.contains("counter,cram.closeness_computations,value,280000"));
        assert!(csv.contains("span,phase2.allocation,count,1"));
        assert!(csv.contains("ring,cram,dropped,0"));
        assert!(csv.contains("event,cram,1:gif.merge,g1+g2"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut out = String::new();
        push_csv_cell(&mut out, "a,b\"c");
        assert_eq!(out, "\"a,b\"\"c\"");
    }
}
