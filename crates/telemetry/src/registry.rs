//! The registry: named instruments, spans and rings behind one handle.
//!
//! A [`Registry`] is a cheap clonable handle (`Arc` inside). Looking an
//! instrument up by name takes a short registry lock; the returned
//! handle then records lock-free, so callers register once and record
//! many times. [`Registry::disabled`] produces a registry whose handles
//! are all no-ops behind the identical API — the zero-cost-off switch
//! used by every instrumented greenps code path.

use crate::metrics::{Counter, Gauge, Histogram, HistogramCore, HistogramSnapshot};
use crate::ring::{EventSink, RingCore, RingSnapshot, DEFAULT_RING_CAPACITY};
use crate::span::{span_tree, SpanNode, SpanStat, SpanTable};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    /// Global event sequence shared by every ring (causal interleave).
    seq: Arc<AtomicU64>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    spans: Arc<SpanTable>,
    rings: Mutex<BTreeMap<String, Arc<RingCore>>>,
}

/// Handle to a run's telemetry state; clone freely, clones share state.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Registry {
    /// Creates an enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                seq: Arc::new(AtomicU64::new(0)),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Arc::new(Mutex::new(BTreeMap::new())),
                rings: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Creates a disabled registry: every handle it yields is a no-op
    /// and [`Registry::snapshot`] is empty. This is also the `Default`.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// True when instruments from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Gets or creates the event ring `name` with the default capacity
    /// ([`DEFAULT_RING_CAPACITY`]).
    pub fn ring(&self, name: &str) -> EventSink {
        self.ring_with_capacity(name, DEFAULT_RING_CAPACITY)
    }

    /// Gets or creates the event ring `name`. The capacity applies only
    /// on creation; an existing ring keeps its original bound.
    pub fn ring_with_capacity(&self, name: &str, capacity: usize) -> EventSink {
        EventSink {
            core: self.inner.as_ref().map(|inner| {
                let ring = Arc::clone(
                    inner
                        .rings
                        .lock()
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(RingCore::new(capacity))),
                );
                (ring, Arc::clone(&inner.seq))
            }),
        }
    }

    /// The shared span table, for [`crate::Span`] only.
    pub(crate) fn span_table(&self) -> Option<Arc<SpanTable>> {
        self.inner.as_ref().map(|inner| Arc::clone(&inner.spans))
    }

    /// Captures a point-in-time snapshot of every instrument. Disabled
    /// registries snapshot empty.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        Snapshot {
            counters: inner
                .counters
                .lock()
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .lock()
                .iter()
                .map(|(name, core)| (name.clone(), core.snapshot()))
                .collect(),
            spans: inner.spans.lock().clone(),
            rings: inner
                .rings
                .lock()
                .iter()
                .map(|(name, ring)| (name.clone(), ring.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time view of a whole registry, ready for export.
///
/// Every collection is a `BTreeMap`, so iteration — and therefore the
/// JSON/CSV output built from it — is deterministically ordered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Flat span stats by dotted path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Event-ring snapshots by ring name.
    pub rings: BTreeMap<String, RingSnapshot>,
}

impl Snapshot {
    /// Folds the flat span paths into a tree (see [`SpanNode`]).
    pub fn span_tree(&self) -> SpanNode {
        span_tree(&self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_a_cell() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().counters.get("x"), Some(&3));
    }

    #[test]
    fn disabled_registry_yields_noop_handles() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.inc();
        let h = reg.histogram("h");
        h.record(1);
        let s = reg.ring("r");
        s.emit("k", "d");
        assert_eq!(reg.snapshot(), Snapshot::default());
    }

    #[test]
    fn snapshot_collects_all_sections() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(5);
        reg.histogram("h").record(100);
        reg.ring("r").emit("kind", "detail");
        crate::Span::enter(&reg, "p.q").finish();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("c"), Some(&1));
        assert_eq!(snap.gauges.get("g"), Some(&5));
        assert_eq!(snap.histograms.get("h").map(|h| h.count), Some(1));
        assert_eq!(snap.rings.get("r").map(|r| r.events.len()), Some(1));
        assert_eq!(snap.spans.get("p.q").map(|s| s.count), Some(1));
        let tree = snap.span_tree();
        assert!(tree
            .children
            .get("p")
            .is_some_and(|p| p.children.contains_key("q")));
    }

    #[test]
    fn clones_share_state() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("shared").add(7);
        assert_eq!(reg.snapshot().counters.get("shared"), Some(&7));
    }
}
