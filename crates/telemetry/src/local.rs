//! Single-writer measurement accumulators: [`Summary`] and
//! [`BucketHistogram`].
//!
//! Unlike the atomic instruments in [`crate::metrics`], these are plain
//! values for code that already owns its data single-threaded — the
//! discrete-event simulator, experiment reducers — where atomics would
//! buy nothing. `greenps-simnet`'s public `Summary`/`Histogram` types
//! are thin adapters over these, so the bookkeeping logic lives in
//! exactly one place.

/// Online count/sum/min/max accumulator over `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Fixed-bucket histogram over explicit ascending upper bounds, with an
/// implicit overflow bucket above the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    summary: Summary,
}

impl BucketHistogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| matches!(w, &[a, b] if a < b)),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            summary: Summary::new(),
        }
    }

    /// Records an observation.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.summary.record(value as f64);
    }

    /// The aggregate summary of all recorded values.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate value at a quantile in `[0, 1]`, using bucket upper
    /// bounds. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.summary.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Past the last bound is the overflow bucket: report
                // the observed max instead of a bound.
                return Some(
                    self.bounds
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| self.summary.max().unwrap_or_default() as u64),
                );
            }
        }
        None
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final entry uses
    /// `u64::MAX` as the overflow bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for v in [2.0, 4.0, 6.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));

        let mut t = Summary::new();
        t.record(10.0);
        s.merge(&t);
        assert_eq!(s.count(), 4);
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn bucket_histogram_quantiles() {
        let mut h = BucketHistogram::new(vec![10, 100, 1000]);
        for v in [5, 9, 50, 500, 5000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (1000, 1), (u64::MAX, 1)]);
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(1.0), Some(5000)); // overflow reports max
        assert_eq!(h.summary().count(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bucket_histogram_rejects_unsorted_bounds() {
        let _ = BucketHistogram::new(vec![10, 10]);
    }
}
