//! Lock-free metric instruments: counters, gauges and log-bucketed
//! histograms.
//!
//! Every record path is a handful of atomic read-modify-write
//! operations on `Arc`-shared cells — no locks are taken while
//! recording, so instruments can be hammered from simulator loops,
//! broker threads and CRAM shard workers alike. Handles obtained from a
//! disabled [`crate::Registry`] carry no cell at all and every
//! operation is a no-op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Cheap to clone; clones share the same underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what disabled registries hand out).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// True when increments actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op counters).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge with a monotone-max variant.
///
/// Values are unsigned; callers that need signed readings should offset
/// them at the call site (none of the greenps gauges do).
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// True when updates actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Sets the gauge to `v` rounded to the nearest integer.
    ///
    /// This is the one blessed float→integer conversion for metric
    /// readings: `as` saturates (NaN → 0, out-of-range clamps), so any
    /// finite or non-finite reading maps to a representable gauge value.
    pub fn set_f64(&self, v: f64) {
        self.set(v.round() as u64);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn observe_max(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op gauges).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets a histogram holds: one per possible
/// `u64` bit width plus the zero bucket.
pub(crate) const HISTOGRAM_BUCKETS: usize = 65;

/// Shared storage behind [`Histogram`] handles.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if let Some(bucket) = self.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((bucket_bound(i), c))
                })
                .collect(),
        }
    }
}

/// Log-bucket index of a value: 0 for 0, otherwise its bit width, so
/// bucket `i` covers `[2^(i-1), 2^i - 1]`.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A histogram with power-of-two buckets, lock-free on the record path.
///
/// The value domain is the caller's choice; greenps uses microseconds
/// for every duration histogram (suffix `_us` in the metric name).
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// True when observations actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// Records a wall-clock duration in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Starts a wall-clock timer gated on this histogram being enabled.
    ///
    /// Disabled histograms never read the clock, so deterministic code
    /// can time itself without mentioning `Instant` directly: the only
    /// wall-clock read lives here, behind the registry's enabled state.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            started: self.is_enabled().then(std::time::Instant::now),
            hist: self.clone(),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.count.load(Ordering::Relaxed))
    }
}

/// A running wall-clock timer from [`Histogram::start_timer`].
///
/// Holds `None` when the histogram is disabled, in which case both the
/// start and the stop are free of clock reads.
#[derive(Debug)]
pub struct HistogramTimer {
    hist: Histogram,
    started: Option<std::time::Instant>,
}

impl HistogramTimer {
    /// Stops the timer, recording the elapsed wall time in microseconds
    /// (a no-op for disabled histograms).
    pub fn stop(self) {
        if let Some(started) = self.started {
            self.hist.record_duration(started.elapsed());
        }
    }

    /// True when a clock was actually started.
    pub fn is_running(&self) -> bool {
        self.started.is_some()
    }
}

/// Point-in-time view of one histogram, as exported in snapshots.
///
/// `buckets` lists only non-empty buckets as `(inclusive upper bound,
/// count)` pairs, in ascending bound order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (wrapping on overflow).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty `(upper_bound, count)` buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter(Some(Arc::new(AtomicU64::new(0))));
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(c.is_enabled());

        let g = Gauge(Some(Arc::new(AtomicU64::new(0))));
        g.set(7);
        g.observe_max(3);
        assert_eq!(g.get(), 7);
        g.observe_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = Gauge::noop();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.record(9);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_log_buckets() {
        let core = Arc::new(HistogramCore::new());
        let h = Histogram(Some(core));
        for v in [0, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = h.0.as_ref().unwrap().snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        // 0 -> bound 0; 1 -> bound 1; 2,3 -> bound 3; 1000 -> bound 1023;
        // u64::MAX -> bound u64::MAX.
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (3, 2), (1023, 1), (u64::MAX, 1)]
        );
    }

    #[test]
    fn bucket_bounds_are_inclusive_powers() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn gauge_set_f64_rounds_and_saturates() {
        let g = Gauge(Some(Arc::new(AtomicU64::new(0))));
        g.set_f64(41.6);
        assert_eq!(g.get(), 42);
        g.set_f64(-3.0);
        assert_eq!(g.get(), 0);
        g.set_f64(f64::NAN);
        assert_eq!(g.get(), 0);
        g.set_f64(f64::INFINITY);
        assert_eq!(g.get(), u64::MAX);
    }

    #[test]
    fn histogram_timer_records_only_when_enabled() {
        let h = Histogram::noop();
        let t = h.start_timer();
        assert!(!t.is_running());
        t.stop();
        assert_eq!(h.count(), 0);

        let h = Histogram(Some(Arc::new(HistogramCore::new())));
        let t = h.start_timer();
        assert!(t.is_running());
        t.stop();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let core = HistogramCore::new();
        let snap = core.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.mean(), 0.0);
    }
}
