//! Bounded structured event rings.
//!
//! Each ring is a drop-oldest buffer of [`Event`]s intended for a
//! single writer (one component or worker thread), so its internal
//! mutex is uncontended in practice; the registry only locks it again
//! at snapshot time. Overflow never blocks and never grows memory: the
//! oldest event is discarded and a drop counter — exported with the
//! snapshot — records how many were lost.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// One structured trace event.
///
/// `seq` is a registry-global sequence number, so events from different
/// rings can be interleaved into one causal order after the fact
/// (wall-clock timestamps would make snapshots nondeterministic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Registry-global sequence number (1-based, allocation order).
    pub seq: u64,
    /// Short machine-readable kind, e.g. `gif.merge` or `queue.stall`.
    pub kind: String,
    /// Free-form detail for humans and tests.
    pub detail: String,
}

/// Shared storage behind [`EventSink`] handles.
#[derive(Debug)]
pub(crate) struct RingCore {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingCore {
    pub(crate) fn new(capacity: usize) -> Self {
        RingCore {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, event: Event) {
        let mut buf = self.buf.lock();
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    pub(crate) fn snapshot(&self) -> RingSnapshot {
        RingSnapshot {
            dropped: self.dropped.load(Ordering::Relaxed),
            events: self.buf.lock().iter().cloned().collect(),
        }
    }
}

/// Writer handle for one event ring.
///
/// Obtained from [`crate::Registry::ring`]; handles from a disabled
/// registry discard everything without formatting it.
#[derive(Clone, Debug, Default)]
pub struct EventSink {
    pub(crate) core: Option<(Arc<RingCore>, Arc<AtomicU64>)>,
}

impl EventSink {
    /// A detached no-op sink.
    pub fn noop() -> Self {
        EventSink { core: None }
    }

    /// True when emitted events actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Emits an event with a pre-built detail string.
    pub fn emit(&self, kind: &str, detail: impl Into<String>) {
        if let Some((ring, seq)) = &self.core {
            ring.push(Event {
                seq: seq.fetch_add(1, Ordering::Relaxed) + 1,
                kind: kind.to_string(),
                detail: detail.into(),
            });
        }
    }

    /// Emits an event, building the detail string only when enabled —
    /// use this on hot paths so disabled telemetry skips the `format!`.
    pub fn emit_with(&self, kind: &str, detail: impl FnOnce() -> String) {
        if self.is_enabled() {
            self.emit(kind, detail());
        }
    }
}

/// Point-in-time view of one ring, as exported in snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingSnapshot {
    /// Events discarded because the ring was full.
    pub dropped: u64,
    /// Surviving events, oldest first.
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(capacity: usize) -> EventSink {
        EventSink {
            core: Some((
                Arc::new(RingCore::new(capacity)),
                Arc::new(AtomicU64::new(0)),
            )),
        }
    }

    #[test]
    fn ring_keeps_insertion_order() {
        let s = sink(8);
        s.emit("a", "1");
        s.emit_with("b", || "2".to_string());
        let snap = s.core.as_ref().unwrap().0.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(
            snap.events,
            vec![
                Event {
                    seq: 1,
                    kind: "a".into(),
                    detail: "1".into()
                },
                Event {
                    seq: 2,
                    kind: "b".into(),
                    detail: "2".into()
                },
            ]
        );
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let s = sink(2);
        s.emit("k", "1");
        s.emit("k", "2");
        s.emit("k", "3");
        let snap = s.core.as_ref().unwrap().0.snapshot();
        assert_eq!(snap.dropped, 1);
        let details: Vec<_> = snap.events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["2", "3"]);
    }

    #[test]
    fn noop_sink_skips_formatting() {
        let s = EventSink::noop();
        let mut called = false;
        s.emit_with("k", || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert!(!s.is_enabled());
    }
}
