//! # greenps-telemetry
//!
//! The workspace-wide tracing + metrics plane for reconfiguration runs
//! (DESIGN.md §10). Every headline number in the paper — 92% message-rate
//! reduction, 91% broker reduction, 5,000,000 → 280,000 closeness
//! computations — is a *measurement*; this crate makes those measurements
//! first-class, queryable values instead of ad-hoc printlns.
//!
//! Four building blocks:
//!
//! * [`Registry`] — a named collection of [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s. Record paths are single atomic
//!   operations (`fetch_add`/`fetch_max`): no locks are ever taken while
//!   recording, so the lock-hygiene lint's hot-path rules stay clean and
//!   instrumented code can record from any thread.
//! * [`Span`] — hierarchical phase timers (`Span::enter(&reg,
//!   "phase1.gathering")`) whose dotted paths nest into a tree with
//!   wall-time and entry counts in the exported snapshot.
//! * [`EventSink`] — bounded, drop-oldest structured event rings for
//!   trace events (GIF merges, pair-cache hits, broker queue stalls),
//!   one ring per component/thread, with an exposed drop counter.
//! * [`JsonExporter`] / [`CsvExporter`] — deterministic whole-run
//!   snapshot serialization (`BTreeMap` ordering throughout).
//!
//! ## Zero cost when disabled
//!
//! [`Registry::disabled()`] yields a registry whose handles are all
//! no-ops behind the same API: instrumented code is written once and the
//! disabled path reduces to a branch on an `Option` that is `None`.
//! Instrumentation must never perturb the decisions of the code it
//! observes — allocations are bit-identical with telemetry on or off
//! (property-tested in `tests/telemetry_identity.rs` at the workspace
//! root).
//!
//! ## Example
//!
//! ```
//! use greenps_telemetry::{JsonExporter, Registry, Span};
//!
//! let reg = Registry::new();
//! let computations = reg.counter("cram.closeness_computations");
//! {
//!     let _span = Span::enter(&reg, "phase2.allocation");
//!     computations.add(280_000);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters.get("cram.closeness_computations"), Some(&280_000));
//! let json = JsonExporter::export(&snap);
//! assert!(json.contains("\"cram.closeness_computations\": 280000"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod local;
pub mod metrics;
pub mod registry;
pub mod ring;
pub mod span;

pub use export::{CsvExporter, JsonExporter};
pub use local::{BucketHistogram, Summary};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramTimer};
pub use registry::{Registry, Snapshot};
pub use ring::{Event, EventSink, RingSnapshot, DEFAULT_RING_CAPACITY};
pub use span::{Span, SpanNode, SpanStat};
