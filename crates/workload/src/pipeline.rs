//! The workload half of the reconfiguration pipeline: Gather, Deploy
//! and Measure phases over a [`Scenario`], composed with the core
//! Allocate/BuildOverlay phases into one checkpointable
//! [`ReconfigPipeline`].
//!
//! Every phase output is a serializable [`Artifact`], so an interrupted
//! run exports its [`CheckpointStore`] as JSON and a later process
//! resumes bit-identically from the last completed phase (see
//! DESIGN.md §11).

use crate::runner::{Approach, Outcome, RunConfig};
use crate::scenario::Scenario;
use crate::topology::{
    automatic, deploy, from_allocation, from_plan, manual, net_scenario, Placement,
};
use greenps_broker::{
    BrokerConfig, Deployment, NetDeployError, NetDeployment, RunMetrics, TopologySpec,
};
use greenps_core::cram::CramBuilder;
use greenps_core::croc::{
    AllocatePhase, BuildOverlayPhase, PlanConfig, PlannedAllocation, ReconfigurationPlan,
};
use greenps_core::grape::{place_publishers, GrapeConfig, InterestTree};
use greenps_core::model::{AllocError, AllocationInput};
use greenps_core::pairwise::{pairwise_k, pairwise_n};
use greenps_core::pipeline::artifact::{
    self, arr_field, f64_field, ids_from_json, ids_to_json, linear_fn_from_json, linear_fn_to_json,
    str_field, u64_field, usize_field,
};
use greenps_core::pipeline::json::JsonValue;
use greenps_core::pipeline::{
    Artifact, ArtifactError, CheckpointStore, Phase, PhaseKind, Pipeline, PipelineError,
    ReconfigContext, TransportChoice,
};
use greenps_net::TcpTransport;
use greenps_profile::{ClosenessMetric, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, BrokerId};
use greenps_simnet::{LinkSpec, SimDuration};
use greenps_telemetry::Span;
use std::collections::BTreeMap;
use std::time::Duration;

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

fn broker_config_to_json(b: &BrokerConfig) -> JsonValue {
    JsonValue::obj()
        .field("id", JsonValue::U64(b.id.raw()))
        .field("url", JsonValue::string(&b.url))
        .field("matching_delay", linear_fn_to_json(&b.matching_delay))
        .field("out_bandwidth", JsonValue::from_f64(b.out_bandwidth))
        .field("profile_bits", JsonValue::U64(b.profile_bits as u64))
}

fn broker_config_from_json(value: &JsonValue) -> Result<BrokerConfig, ArtifactError> {
    Ok(BrokerConfig {
        id: BrokerId::new(u64_field(value, "id")?),
        url: str_field(value, "url")?.to_string(),
        matching_delay: linear_fn_from_json(artifact::field(value, "matching_delay")?)?,
        out_bandwidth: f64_field(value, "out_bandwidth")?,
        profile_bits: usize_field(value, "profile_bits")?,
    })
}

fn link_to_json(l: &LinkSpec) -> JsonValue {
    let obj = JsonValue::obj().field("latency_us", JsonValue::U64(l.latency.as_micros()));
    match l.bandwidth {
        Some(bw) => obj.field("bandwidth", JsonValue::from_f64(bw)),
        None => obj,
    }
}

fn link_from_json(value: &JsonValue) -> Result<LinkSpec, ArtifactError> {
    Ok(LinkSpec {
        latency: SimDuration::from_micros(u64_field(value, "latency_us")?),
        bandwidth: match value.get("bandwidth") {
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| ArtifactError::new("field `bandwidth` is not a float string"))?,
            ),
            None => None,
        },
    })
}

fn placement_to_json(p: &Placement) -> JsonValue {
    JsonValue::obj()
        .field(
            "spec",
            JsonValue::obj()
                .field(
                    "brokers",
                    JsonValue::Arr(p.spec.brokers.iter().map(broker_config_to_json).collect()),
                )
                .field(
                    "edges",
                    JsonValue::Arr(
                        p.spec
                            .edges
                            .iter()
                            .map(|&(a, b)| {
                                JsonValue::Arr(vec![
                                    JsonValue::U64(a.raw()),
                                    JsonValue::U64(b.raw()),
                                ])
                            })
                            .collect(),
                    ),
                )
                .field("link", link_to_json(&p.spec.link)),
        )
        .field(
            "publisher_homes",
            ids_to_json(p.publisher_homes.iter().copied()),
        )
        .field(
            "subscriber_homes",
            ids_to_json(p.subscriber_homes.iter().copied()),
        )
}

fn placement_from_json(value: &JsonValue) -> Result<Placement, ArtifactError> {
    let spec = artifact::field(value, "spec")?;
    let edges = arr_field(spec, "edges")?
        .iter()
        .map(|pair| {
            let ids = pair
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| ArtifactError::new("edge is not a two-element array"))?;
            let ends = ids_from_json::<BrokerId>(ids)?;
            Ok((ends[0], ends[1]))
        })
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    Ok(Placement {
        spec: TopologySpec {
            brokers: arr_field(spec, "brokers")?
                .iter()
                .map(broker_config_from_json)
                .collect::<Result<_, _>>()?,
            edges,
            link: link_from_json(artifact::field(spec, "link")?)?,
        },
        publisher_homes: ids_from_json(arr_field(value, "publisher_homes")?)?,
        subscriber_homes: ids_from_json(arr_field(value, "subscriber_homes")?)?,
    })
}

/// Phase-1 output: the profiled MANUAL placement plus the gathered
/// allocation input.
#[derive(Debug, Clone)]
pub struct GatherOut {
    /// The MANUAL placement the scenario was profiled on.
    pub placement: Placement,
    /// The gathered Phase-2 input (broker specs, subscription profiles,
    /// publisher profiles).
    pub input: AllocationInput,
}

impl Artifact for GatherOut {
    const KIND: &'static str = "gathered";

    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("placement", placement_to_json(&self.placement))
            .field("input", self.input.to_json())
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        Ok(GatherOut {
            placement: placement_from_json(artifact::field(value, "placement")?)?,
            input: AllocationInput::from_json(artifact::field(value, "input")?)?,
        })
    }
}

/// Deploy-phase output: the placement the measurement runs against.
#[derive(Debug, Clone)]
pub struct PlacementOut(pub Placement);

impl Artifact for PlacementOut {
    const KIND: &'static str = "placement";

    fn to_json(&self) -> JsonValue {
        placement_to_json(&self.0)
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        placement_from_json(value).map(PlacementOut)
    }
}

/// Measure-phase output: the deployment-wide metrics.
#[derive(Debug, Clone)]
pub struct MeasureOut(pub RunMetrics);

impl Artifact for MeasureOut {
    const KIND: &'static str = "run-metrics";

    fn to_json(&self) -> JsonValue {
        let m = &self.0;
        JsonValue::obj()
            .field("window_us", JsonValue::U64(m.window.as_micros()))
            .field(
                "broker_msg_rates",
                JsonValue::Arr(
                    m.broker_msg_rates
                        .iter()
                        .map(|&(b, r)| {
                            JsonValue::Arr(vec![JsonValue::U64(b.raw()), JsonValue::from_f64(r)])
                        })
                        .collect(),
                ),
            )
            .field(
                "avg_broker_msg_rate",
                JsonValue::from_f64(m.avg_broker_msg_rate),
            )
            .field(
                "avg_active_broker_msg_rate",
                JsonValue::from_f64(m.avg_active_broker_msg_rate),
            )
            .field("total_msgs", JsonValue::U64(m.total_msgs))
            .field("deliveries", JsonValue::U64(m.deliveries))
            .field("mean_hops", JsonValue::from_f64(m.mean_hops))
            .field("mean_delay_s", JsonValue::from_f64(m.mean_delay_s))
    }

    fn from_json(value: &JsonValue) -> Result<Self, ArtifactError> {
        let broker_msg_rates = arr_field(value, "broker_msg_rates")?
            .iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| ArtifactError::new("rate is not a two-element array"))?;
                let broker = items[0]
                    .as_u64()
                    .ok_or_else(|| ArtifactError::new("rate broker is not an integer"))?;
                let rate = items[1]
                    .as_f64()
                    .ok_or_else(|| ArtifactError::new("rate is not a float string"))?;
                Ok((BrokerId::new(broker), rate))
            })
            .collect::<Result<Vec<_>, ArtifactError>>()?;
        Ok(MeasureOut(RunMetrics {
            window: SimDuration::from_micros(u64_field(value, "window_us")?),
            broker_msg_rates,
            avg_broker_msg_rate: f64_field(value, "avg_broker_msg_rate")?,
            avg_active_broker_msg_rate: f64_field(value, "avg_active_broker_msg_rate")?,
            total_msgs: u64_field(value, "total_msgs")?,
            deliveries: u64_field(value, "deliveries")?,
            mean_hops: f64_field(value, "mean_hops")?,
            mean_delay_s: f64_field(value, "mean_delay_s")?,
        }))
    }
}

// ---------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------

/// Phase 1: deploy MANUAL, warm up, profile, and gather BIAs.
#[derive(Debug)]
pub struct GatherPhase<'a> {
    /// The scenario to profile.
    pub scenario: &'a Scenario,
    /// Timing knobs (warmup/profile windows, placement seed).
    pub cfg: RunConfig,
}

impl Phase for GatherPhase<'_> {
    type Input = ();
    type Output = GatherOut;
    const KIND: PhaseKind = PhaseKind::Gather;

    fn run(&mut self, _input: (), ctx: &ReconfigContext) -> Result<GatherOut, PipelineError> {
        let placement = manual(self.scenario, self.cfg.seed);
        let mut d = deploy(self.scenario, &placement);
        d.set_telemetry(ctx.registry());
        d.run_for(self.cfg.warmup);
        d.run_for(self.cfg.profile);
        // The aggregated BIA grows with the subscription count (~200 B
        // per subscription) and is serialized through each broker's
        // output limiter like any other message, so large gathers take
        // minutes of *simulated* time — cheap to simulate, fatal to
        // time out on.
        let infos = d
            .gather(SimDuration::from_secs(1800))
            .map_err(|e| PipelineError::Phase {
                phase: PhaseKind::Gather,
                message: e.to_string(),
            })?;
        Ok(GatherOut {
            placement,
            input: Deployment::allocation_input(infos),
        })
    }
}

/// The pairwise related-work baselines as an Allocate stage.
#[derive(Debug)]
pub struct PairwisePhase<'a> {
    /// The gathered Phase-1 input.
    pub input: &'a AllocationInput,
    /// `true` for PAIRWISE-K (K = CRAM-XOR's cluster count), `false`
    /// for PAIRWISE-N.
    pub use_cram_k: bool,
    /// Seed for the clustering order.
    pub seed: u64,
}

impl Phase for PairwisePhase<'_> {
    type Input = ();
    type Output = PlannedAllocation;
    const KIND: PhaseKind = PhaseKind::Allocate;

    fn run(
        &mut self,
        _input: (),
        ctx: &ReconfigContext,
    ) -> Result<PlannedAllocation, PipelineError> {
        let result = if self.use_cram_k {
            let (_, stats) = CramBuilder::new(ClosenessMetric::Xor)
                .telemetry(ctx.registry())
                .threads(ctx.threads())
                .run(self.input)
                .map_err(|e| PipelineError::Phase {
                    phase: PhaseKind::Allocate,
                    message: format!("CRAM-XOR for K failed: {e}"),
                })?;
            pairwise_k(
                self.input,
                stats.final_units,
                self.seed,
                &ctx.cancel_token(),
            )
        } else {
            pairwise_n(self.input, self.seed, &ctx.cancel_token())
        };
        let result = result.map_err(|e| match e {
            AllocError::Cancelled => PipelineError::Cancelled {
                phase: PhaseKind::Allocate,
            },
            other => PipelineError::Phase {
                phase: PhaseKind::Allocate,
                message: other.to_string(),
            },
        })?;
        Ok(PlannedAllocation {
            allocation: result.allocation,
            cram_stats: None,
        })
    }
}

/// Which placement the Deploy stage computes.
#[derive(Debug)]
enum DeployMode {
    /// MANUAL or AUTOMATIC over the full pool.
    Baseline { automatic: bool },
    /// GRAPE publisher relocation on the profiled MANUAL topology.
    GrapeOnly,
    /// AUTOMATIC-style overlay over a bare allocation (pairwise).
    FromAllocation,
    /// The CROC plan's own overlay and homes.
    FromPlan,
}

/// Deploy input: whichever upstream artifact the mode consumes.
#[derive(Debug)]
pub enum DeployInput {
    /// Baselines start from the scenario alone.
    None,
    /// GRAPE-only relocation starts from the gathered MANUAL state.
    Gathered(GatherOut),
    /// Pairwise baselines start from a bare allocation.
    Planned(PlannedAllocation),
    /// Planner approaches start from a full plan.
    Plan(ReconfigurationPlan),
}

/// Phase 3b: compute the placement the measurement deploys.
#[derive(Debug)]
pub struct DeployPhase<'a> {
    scenario: &'a Scenario,
    seed: u64,
    mode: DeployMode,
}

impl Phase for DeployPhase<'_> {
    type Input = DeployInput;
    type Output = PlacementOut;
    const KIND: PhaseKind = PhaseKind::Deploy;

    fn run(
        &mut self,
        input: DeployInput,
        _ctx: &ReconfigContext,
    ) -> Result<PlacementOut, PipelineError> {
        let bad_input = |expected: &str| PipelineError::Phase {
            phase: PhaseKind::Deploy,
            message: format!("deploy mode expected {expected} input"),
        };
        let placement = match (&self.mode, input) {
            (DeployMode::Baseline { automatic: false }, DeployInput::None) => {
                manual(self.scenario, self.seed)
            }
            (DeployMode::Baseline { automatic: true }, DeployInput::None) => {
                automatic(self.scenario, self.seed)
            }
            (DeployMode::GrapeOnly, DeployInput::Gathered(gathered)) => {
                relocate_publishers_only(self.scenario, gathered)
            }
            (DeployMode::FromAllocation, DeployInput::Planned(planned)) => {
                from_allocation(self.scenario, &planned.allocation, self.seed)
            }
            (DeployMode::FromPlan, DeployInput::Plan(plan)) => from_plan(self.scenario, &plan),
            (DeployMode::Baseline { .. }, _) => return Err(bad_input("no")),
            (DeployMode::GrapeOnly, _) => return Err(bad_input("gathered")),
            (DeployMode::FromAllocation, _) => return Err(bad_input("planned-allocation")),
            (DeployMode::FromPlan, _) => return Err(bad_input("reconfiguration-plan")),
        };
        Ok(PlacementOut(placement))
    }
}

/// The §II-B limitation experiment: build the interest tree of the
/// *existing* MANUAL topology from the gathered profiles and relocate
/// publishers only.
fn relocate_publishers_only(scenario: &Scenario, gathered: GatherOut) -> Placement {
    let GatherOut {
        mut placement,
        input,
    } = gathered;
    let mut locals: BTreeMap<_, SubscriptionProfile> = placement
        .spec
        .brokers
        .iter()
        .map(|b| (b.id, SubscriptionProfile::new()))
        .collect();
    for (i, sub) in scenario.subs.iter().enumerate() {
        if let Some(entry) = input.subscriptions.iter().find(|e| e.id == sub.id) {
            locals
                .get_mut(&placement.subscriber_homes[i])
                .expect("home broker")
                .or_assign(&entry.profile);
        }
    }
    let tree = InterestTree::new(locals.into_iter().collect(), &placement.spec.edges);
    let homes = place_publishers(&tree, &input.publishers, GrapeConfig::minimize_load());
    for (i, home) in placement.publisher_homes.iter_mut().enumerate() {
        if let Some(b) = homes.get(&AdvId::new(i as u64 + 1)) {
            *home = *b;
        }
    }
    placement
}

/// Final stage: deploy the placement, warm up, and measure; the pool
/// average is renormalized to the scenario's full broker pool.
///
/// The transport backend comes from
/// [`ReconfigContext::transport`]: the default
/// [`TransportChoice::Sim`] path runs the discrete-event deployment
/// bit-identically to every previous release, while
/// [`TransportChoice::TcpLoopback`] replays a pre-generated slice of
/// the workload over real loopback sockets via
/// [`greenps_broker::NetDeployment`].
#[derive(Debug)]
pub struct MeasurePhase<'a> {
    /// The scenario being measured.
    pub scenario: &'a Scenario,
    /// Timing knobs (warmup and measurement windows).
    pub cfg: RunConfig,
}

/// Cap on materialized publications per publisher for loopback runs:
/// the stream is generated up front, so a long simulated measurement
/// window must not translate into an unbounded allocation.
const TCP_PUBS_CAP: u64 = 200;

impl MeasurePhase<'_> {
    /// The simulator path — unchanged semantics, virtual time.
    fn measure_sim(&self, placement: &Placement, ctx: &ReconfigContext) -> RunMetrics {
        let registry = ctx.registry();
        let mut d = {
            let _span = Span::enter(registry, "phase3.deployment");
            let mut d = deploy(self.scenario, placement);
            d.set_telemetry(registry);
            d.run_for(self.cfg.warmup);
            d
        };
        d.measure(self.cfg.measure)
    }

    /// The loopback path: the measurement window is mapped onto a
    /// pre-generated publication stream (one publication per publish
    /// period, capped) and replayed over TCP; wall-clock readings take
    /// the place of the virtual clock.
    fn measure_tcp(
        &self,
        placement: &Placement,
        ctx: &ReconfigContext,
    ) -> Result<RunMetrics, PipelineError> {
        let period = self.scenario.publish_period.as_micros().max(1);
        let per_publisher = (self.cfg.measure.as_micros() / period).clamp(1, TCP_PUBS_CAP);
        let net = net_scenario(self.scenario, placement, per_publisher as usize);
        let mut transport = TcpTransport::with_telemetry(ctx.registry());
        let _span = Span::enter(ctx.registry(), "phase3.deployment");
        let report = NetDeployment::build(&mut transport, &net)
            .and_then(|d| d.run(&ctx.cancel_token()))
            .map_err(|e| match e {
                NetDeployError::Cancelled => PipelineError::Cancelled {
                    phase: PhaseKind::Measure,
                },
                other => PipelineError::Phase {
                    phase: PhaseKind::Measure,
                    message: other.to_string(),
                },
            })?;
        Ok(net_run_metrics(&report))
    }
}

/// Folds a transport deployment report into the simulator's metric
/// shape so downstream reporting is backend-agnostic.
fn net_run_metrics(report: &greenps_broker::NetDeployReport) -> RunMetrics {
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    let broker_msg_rates: Vec<(BrokerId, f64)> = report
        .broker_stats
        .iter()
        .map(|(&b, s)| (b, s.matched as f64 / secs))
        .collect();
    let total_rate: f64 = broker_msg_rates.iter().map(|(_, r)| r).sum();
    let active = broker_msg_rates.len().max(1) as f64;
    let lat_sum: u64 = report.latency_us_by_broker.values().flatten().sum();
    let lat_n = report
        .latency_us_by_broker
        .values()
        .map(|v| v.len() as u64)
        .sum::<u64>();
    RunMetrics {
        window: SimDuration::from_micros(
            u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX),
        ),
        avg_broker_msg_rate: total_rate / active,
        avg_active_broker_msg_rate: total_rate / active,
        broker_msg_rates,
        total_msgs: report.broker_stats.values().map(|s| s.matched).sum(),
        deliveries: report.total_delivered(),
        mean_hops: report.mean_hops.unwrap_or(0.0),
        mean_delay_s: if lat_n == 0 {
            0.0
        } else {
            lat_sum as f64 / lat_n as f64 / 1e6
        },
    }
}

impl Phase for MeasurePhase<'_> {
    type Input = PlacementOut;
    type Output = MeasureOut;
    const KIND: PhaseKind = PhaseKind::Measure;

    fn run(
        &mut self,
        placement: PlacementOut,
        ctx: &ReconfigContext,
    ) -> Result<MeasureOut, PipelineError> {
        let mut m = match ctx.transport() {
            TransportChoice::Sim => self.measure_sim(&placement.0, ctx),
            TransportChoice::TcpLoopback => self.measure_tcp(&placement.0, ctx)?,
        };
        m.rescale_to_pool(self.scenario.broker_count());
        Ok(MeasureOut(m))
    }
}

// ---------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------

/// What the pipeline plans with.
#[derive(Debug, Clone)]
enum Mode {
    /// One of the paper's compared approaches.
    Approach(Approach),
    /// A fully custom plan configuration (ablations such as the GRAPE
    /// priority sweep).
    Custom { label: String, config: PlanConfig },
}

/// One end-to-end reconfiguration run over a scenario, checkpointable
/// at every phase boundary.
///
/// ```no_run
/// use greenps_core::pipeline::{PhaseKind, ReconfigContext};
/// use greenps_workload::pipeline::ReconfigPipeline;
/// use greenps_workload::{Approach, RunConfig, ScenarioBuilder, Topology};
///
/// let scenario = ScenarioBuilder::new(Topology::Homogeneous).build();
/// let run = ReconfigPipeline::approach(&scenario, Approach::Manual, RunConfig::default());
/// let ctx = ReconfigContext::new();
/// // Interrupt after the Deploy phase checkpoints…
/// let store = run.run_until(&ctx, PhaseKind::Deploy)?;
/// let json = store.to_json(); // …persist, then later:
/// let outcome = run.resume(
///     &ctx,
///     greenps_core::pipeline::CheckpointStore::from_json(&json)?,
/// )?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReconfigPipeline<'a> {
    scenario: &'a Scenario,
    cfg: RunConfig,
    mode: Mode,
}

impl<'a> ReconfigPipeline<'a> {
    /// A run of one of the paper's approaches.
    pub fn approach(scenario: &'a Scenario, approach: Approach, cfg: RunConfig) -> Self {
        Self {
            scenario,
            cfg,
            mode: Mode::Approach(approach),
        }
    }

    /// A run of a custom plan configuration, labeled for reports.
    pub fn custom_plan(
        scenario: &'a Scenario,
        label: &str,
        config: &PlanConfig,
        cfg: RunConfig,
    ) -> Self {
        Self {
            scenario,
            cfg,
            mode: Mode::Custom {
                label: label.to_string(),
                config: *config,
            },
        }
    }

    /// Runs the pipeline straight through.
    ///
    /// # Errors
    /// Propagates the first phase failure.
    pub fn run(&self, ctx: &ReconfigContext) -> Result<Outcome, PipelineError> {
        let mut pipeline = Pipeline::new(ctx.clone());
        self.drive(&mut pipeline)
    }

    /// Runs until `stop_after` checkpoints, then cancels — the
    /// interruption half of an interrupt/resume cycle. Returns the
    /// checkpoints accumulated so far; the context's cancellation flag
    /// is cleared on return so the same context can resume.
    ///
    /// # Errors
    /// Propagates phase failures other than the requested cancellation.
    pub fn run_until(
        &self,
        ctx: &ReconfigContext,
        stop_after: PhaseKind,
    ) -> Result<CheckpointStore, PipelineError> {
        let mut pipeline = Pipeline::new(ctx.clone()).stop_after(stop_after);
        let result = self.drive(&mut pipeline);
        ctx.clear_cancel();
        match result {
            Ok(_) | Err(PipelineError::Cancelled { .. }) => Ok(pipeline.into_store()),
            Err(e) => Err(e),
        }
    }

    /// Resumes from a checkpoint store: completed phases replay
    /// bit-identically without executing, the rest run live.
    ///
    /// # Errors
    /// Propagates phase failures and checkpoint decode failures.
    pub fn resume(
        &self,
        ctx: &ReconfigContext,
        store: CheckpointStore,
    ) -> Result<Outcome, PipelineError> {
        let mut pipeline = Pipeline::resume(ctx.clone(), store);
        self.drive(&mut pipeline)
    }

    /// Drives every phase of the selected mode through `pipeline`.
    fn drive(&self, pipeline: &mut Pipeline) -> Result<Outcome, PipelineError> {
        let label = match &self.mode {
            Mode::Approach(a) => a.label(),
            Mode::Custom { label, .. } => label.clone(),
        };
        let seed = self.cfg.seed;
        let scenario = self.scenario;

        let (placement, cram_stats, overlay_stats) = match &self.mode {
            Mode::Approach(Approach::Manual | Approach::Automatic) => {
                let is_auto = matches!(self.mode, Mode::Approach(Approach::Automatic));
                let placement = pipeline.run_phase(
                    &mut DeployPhase {
                        scenario,
                        seed,
                        mode: DeployMode::Baseline { automatic: is_auto },
                    },
                    DeployInput::None,
                )?;
                (placement, None, None)
            }
            Mode::Approach(Approach::GrapeOnly) => {
                let gathered = pipeline.run_phase(
                    &mut GatherPhase {
                        scenario,
                        cfg: self.cfg,
                    },
                    (),
                )?;
                let placement = pipeline.run_phase(
                    &mut DeployPhase {
                        scenario,
                        seed,
                        mode: DeployMode::GrapeOnly,
                    },
                    DeployInput::Gathered(gathered),
                )?;
                (placement, None, None)
            }
            Mode::Approach(Approach::PairwiseK | Approach::PairwiseN) => {
                let gathered = pipeline.run_phase(
                    &mut GatherPhase {
                        scenario,
                        cfg: self.cfg,
                    },
                    (),
                )?;
                let planned = pipeline.run_phase(
                    &mut PairwisePhase {
                        input: &gathered.input,
                        use_cram_k: matches!(self.mode, Mode::Approach(Approach::PairwiseK)),
                        seed,
                    },
                    (),
                )?;
                let placement = pipeline.run_phase(
                    &mut DeployPhase {
                        scenario,
                        seed,
                        mode: DeployMode::FromAllocation,
                    },
                    DeployInput::Planned(planned),
                )?;
                (placement, None, None)
            }
            _ => {
                // FBF / BIN PACKING / CRAM, or a custom plan config.
                let config = match &self.mode {
                    Mode::Custom { config, .. } => *config,
                    Mode::Approach(Approach::Fbf) => PlanConfig::fbf(seed),
                    Mode::Approach(Approach::BinPacking) => PlanConfig::bin_packing(),
                    Mode::Approach(Approach::Cram(m)) => PlanConfig::cram(*m),
                    Mode::Approach(_) => unreachable!("handled above"),
                };
                let gathered = pipeline.run_phase(
                    &mut GatherPhase {
                        scenario,
                        cfg: self.cfg,
                    },
                    (),
                )?;
                let planned = pipeline.run_phase(
                    &mut AllocatePhase {
                        input: &gathered.input,
                        config,
                    },
                    (),
                )?;
                let plan = pipeline.run_phase(
                    &mut BuildOverlayPhase {
                        input: &gathered.input,
                        config,
                    },
                    planned,
                )?;
                let cram_stats = plan.cram_stats;
                let overlay_stats = Some(plan.overlay.stats);
                let placement = pipeline.run_phase(
                    &mut DeployPhase {
                        scenario,
                        seed,
                        mode: DeployMode::FromPlan,
                    },
                    DeployInput::Plan(plan),
                )?;
                (placement, cram_stats, overlay_stats)
            }
        };

        let allocated_brokers = placement.0.spec.brokers.len();
        let metrics = pipeline.run_phase(
            &mut MeasurePhase {
                scenario,
                cfg: self.cfg,
            },
            placement,
        )?;
        // Replayed phases report zero, so a resumed run only counts the
        // planning work it actually re-did.
        let plan_nanos = pipeline.phase_nanos(PhaseKind::Allocate)
            + pipeline.phase_nanos(PhaseKind::BuildOverlay)
            + pipeline.phase_nanos(PhaseKind::Deploy);
        Ok(Outcome {
            approach: label,
            scenario: scenario.name.clone(),
            subscriptions: scenario.sub_count(),
            allocated_brokers,
            metrics: metrics.0,
            plan_time: Duration::from_nanos(plan_nanos),
            cram_stats,
            overlay_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, Topology};

    fn small() -> (Scenario, RunConfig) {
        let mut s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(80)
            .seed(11)
            .build();
        s.brokers.truncate(12);
        let cfg = RunConfig {
            warmup: SimDuration::from_secs(2),
            profile: SimDuration::from_secs(40),
            measure: SimDuration::from_secs(40),
            seed: 11,
        };
        (s, cfg)
    }

    #[test]
    fn interrupt_resume_is_bit_identical_for_cram() {
        let (s, cfg) = small();
        let run = ReconfigPipeline::approach(&s, Approach::Cram(ClosenessMetric::Ios), cfg);
        let ctx = ReconfigContext::new();
        let straight = run.run(&ctx).expect("straight run");

        let store = run
            .run_until(&ctx, PhaseKind::BuildOverlay)
            .expect("interrupted run");
        assert_eq!(
            store.completed(),
            vec![
                PhaseKind::Gather,
                PhaseKind::Allocate,
                PhaseKind::BuildOverlay
            ]
        );
        let json = store.to_json();
        let reloaded = CheckpointStore::from_json(&json).expect("reload");
        let resumed = run.resume(&ctx, reloaded).expect("resumed run");

        assert_eq!(resumed.allocated_brokers, straight.allocated_brokers);
        assert_eq!(resumed.metrics.deliveries, straight.metrics.deliveries);
        assert_eq!(resumed.metrics.total_msgs, straight.metrics.total_msgs);
        assert_eq!(resumed.cram_stats, straight.cram_stats);
        assert_eq!(
            resumed.metrics.avg_broker_msg_rate.to_bits(),
            straight.metrics.avg_broker_msg_rate.to_bits(),
            "pool average is bit-identical"
        );
    }

    #[test]
    fn placement_artifact_round_trips() {
        let (s, cfg) = small();
        let placement = manual(&s, cfg.seed);
        let out = PlacementOut(placement);
        let json = out.to_json();
        let back = PlacementOut::from_json(&json).expect("decode");
        assert_eq!(back.to_json(), json, "re-encode is byte-identical");
        assert_eq!(back.0.spec.brokers, out.0.spec.brokers);
        assert_eq!(back.0.spec.edges, out.0.spec.edges);
        assert_eq!(back.0.publisher_homes, out.0.publisher_homes);
        assert_eq!(back.0.subscriber_homes, out.0.subscriber_homes);
    }

    #[test]
    fn measure_phase_tcp_loopback_delivers() {
        let mut s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(16)
            .seed(3)
            .build();
        s.brokers.truncate(4);
        let cfg = RunConfig {
            warmup: SimDuration::from_secs(1),
            profile: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(5),
            seed: 3,
        };
        let placement = manual(&s, 3);
        let ctx = ReconfigContext::new().with_transport(TransportChoice::TcpLoopback);
        let out = MeasurePhase { scenario: &s, cfg }
            .run(PlacementOut(placement), &ctx)
            .expect("tcp measure phase");
        let m = out.0;
        assert!(m.deliveries > 0, "loopback overlay carried traffic");
        assert!(m.window.as_micros() > 0, "wall-clock window recorded");
        assert!(m.total_msgs > 0);
    }

    #[test]
    fn deploy_phase_rejects_mismatched_input() {
        let (s, cfg) = small();
        let mut phase = DeployPhase {
            scenario: &s,
            seed: cfg.seed,
            mode: DeployMode::FromPlan,
        };
        let err = phase
            .run(DeployInput::None, &ReconfigContext::new())
            .expect_err("wrong input kind");
        assert!(err.to_string().contains("reconfiguration-plan"));
    }
}
