//! The end-to-end experiment runner: deploy MANUAL, profile, gather,
//! plan with an approach, redeploy, measure — the pipeline behind every
//! figure in the evaluation.

use crate::scenario::Scenario;
use crate::topology::{automatic, deploy, from_allocation, from_plan, manual, Placement};
use greenps_broker::{Deployment, RunMetrics};
use greenps_core::cram::{CramBuilder, CramStats};
use greenps_core::croc::{plan_with_telemetry, PlanConfig};
use greenps_core::grape::{place_publishers, GrapeConfig, InterestTree};
use greenps_core::model::AllocationInput;
use greenps_core::overlay::OverlayStats;
use greenps_core::pairwise::{pairwise_k, pairwise_n};
use greenps_profile::{ClosenessMetric, SubscriptionProfile};
use greenps_pubsub::ids::AdvId;
use greenps_simnet::SimDuration;
use greenps_telemetry::{Registry, Span};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The approaches compared in the evaluation (paper §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Baseline: fan-out-2 tree, capacity-aware manual placement.
    Manual,
    /// Baseline: random tree, random placement.
    Automatic,
    /// Related work: pairwise clustering, K = CRAM-XOR's cluster count.
    PairwiseK,
    /// Related work: pairwise clustering, one cluster per broker.
    PairwiseN,
    /// Fastest Broker First.
    Fbf,
    /// BIN PACKING.
    BinPacking,
    /// CRAM with a closeness metric.
    Cram(ClosenessMetric),
    /// Publisher relocation only (GRAPE on the MANUAL topology) — the
    /// §II-B limitation experiment.
    GrapeOnly,
}

impl Approach {
    /// Every approach in the paper's comparison, in presentation order.
    pub const ALL_PAPER: [Approach; 10] = [
        Approach::Manual,
        Approach::Automatic,
        Approach::PairwiseK,
        Approach::PairwiseN,
        Approach::Fbf,
        Approach::BinPacking,
        Approach::Cram(ClosenessMetric::Intersect),
        Approach::Cram(ClosenessMetric::Xor),
        Approach::Cram(ClosenessMetric::Ios),
        Approach::Cram(ClosenessMetric::Iou),
    ];

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Approach::Manual => "MANUAL".into(),
            Approach::Automatic => "AUTOMATIC".into(),
            Approach::PairwiseK => "PAIRWISE-K".into(),
            Approach::PairwiseN => "PAIRWISE-N".into(),
            Approach::Fbf => "FBF".into(),
            Approach::BinPacking => "BINPACKING".into(),
            Approach::Cram(m) => format!("CRAM-{m}"),
            Approach::GrapeOnly => "GRAPE-ONLY".into(),
        }
    }
}

/// Timing knobs of one run (simulated durations).
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Warm-up before profiling (advertisements/subscriptions settle).
    pub warmup: SimDuration,
    /// Profiling window (fills bit vectors).
    pub profile: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Seed for placements and FBF order.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            warmup: SimDuration::from_secs(5),
            profile: SimDuration::from_secs(120),
            measure: SimDuration::from_secs(120),
            seed: 1,
        }
    }
}

/// The outcome of running one approach on one scenario.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which approach.
    pub approach: String,
    /// Scenario label.
    pub scenario: String,
    /// Total subscriptions.
    pub subscriptions: usize,
    /// Brokers deployed after reconfiguration (pool size for the
    /// baselines).
    pub allocated_brokers: usize,
    /// Measured deployment metrics.
    pub metrics: RunMetrics,
    /// Wall-clock time spent computing the allocation + overlay.
    pub plan_time: Duration,
    /// CRAM counters, when CRAM ran.
    pub cram_stats: Option<CramStats>,
    /// Overlay-construction counters, when Phase 3 ran.
    pub overlay_stats: Option<OverlayStats>,
}

/// Runs Phase 1 against a fresh MANUAL deployment of the scenario and
/// returns the gathered input (the starting point of every
/// reconfiguring approach).
pub fn profile_and_gather(scenario: &Scenario, cfg: &RunConfig) -> (Placement, AllocationInput) {
    profile_and_gather_with_telemetry(scenario, cfg, &Registry::disabled())
}

/// [`profile_and_gather`] with the deployment's instruments (including
/// the `phase1.gathering` span) recorded into `registry`.
pub fn profile_and_gather_with_telemetry(
    scenario: &Scenario,
    cfg: &RunConfig,
    registry: &Registry,
) -> (Placement, AllocationInput) {
    let placement = manual(scenario, cfg.seed);
    let mut d = deploy(scenario, &placement);
    d.set_telemetry(registry);
    d.run_for(cfg.warmup);
    d.run_for(cfg.profile);
    // The aggregated BIA grows with the subscription count (~200 B per
    // subscription) and is serialized through each broker's output
    // limiter like any other message, so large gathers take minutes of
    // *simulated* time — cheap to simulate, fatal to time out on.
    let infos = d
        .gather(SimDuration::from_secs(1800))
        .expect("phase 1 gather completed");
    (placement, Deployment::allocation_input(infos))
}

/// Deploys a placement and measures it; the pool average is
/// renormalized to the scenario's full broker pool.
fn deploy_and_measure(
    scenario: &Scenario,
    placement: &Placement,
    cfg: &RunConfig,
    registry: &Registry,
) -> RunMetrics {
    let mut d = {
        let _span = Span::enter(registry, "phase3.deployment");
        let mut d = deploy(scenario, placement);
        d.set_telemetry(registry);
        d.run_for(cfg.warmup);
        d
    };
    let mut m = d.measure(cfg.measure);
    m.rescale_to_pool(scenario.broker_count());
    m
}

/// Runs a fully custom plan configuration end to end (profiling on the
/// MANUAL topology, then plan, redeploy, measure) — used by ablations
/// such as the GRAPE priority sweep.
///
/// # Panics
/// Panics when planning fails or Phase 1 does not complete.
pub fn run_custom_plan(
    scenario: &Scenario,
    label: &str,
    plan_config: &PlanConfig,
    cfg: &RunConfig,
) -> Outcome {
    run_custom_plan_with_telemetry(scenario, label, plan_config, cfg, &Registry::disabled())
}

/// [`run_custom_plan`] with every pipeline stage (Phase-1 gather,
/// Phase-2 allocation, Phase-3 overlay + deployment, GRAPE, the
/// measurement window) traced into `registry`.
///
/// # Panics
/// Same as [`run_custom_plan`].
pub fn run_custom_plan_with_telemetry(
    scenario: &Scenario,
    label: &str,
    plan_config: &PlanConfig,
    cfg: &RunConfig,
    registry: &Registry,
) -> Outcome {
    let (_, input) = profile_and_gather_with_telemetry(scenario, cfg, registry);
    let t0 = Instant::now();
    let p = plan_with_telemetry(&input, plan_config, registry).expect("planning succeeded");
    let plan_time = t0.elapsed();
    let placement = from_plan(scenario, &p);
    let metrics = deploy_and_measure(scenario, &placement, cfg, registry);
    Outcome {
        approach: label.to_string(),
        scenario: scenario.name.clone(),
        subscriptions: scenario.sub_count(),
        allocated_brokers: p.broker_count(),
        metrics,
        plan_time,
        cram_stats: p.cram_stats,
        overlay_stats: Some(p.overlay.stats),
    }
}

/// Runs one approach end to end.
///
/// # Panics
/// Panics when planning fails (the scenario's broker pool cannot host
/// the workload) or Phase 1 does not complete.
pub fn run_approach(scenario: &Scenario, approach: Approach, cfg: &RunConfig) -> Outcome {
    run_approach_with_telemetry(scenario, approach, cfg, &Registry::disabled())
}

/// [`run_approach`] with the whole pipeline traced into `registry`:
/// phase spans (`phase1.gathering`, `phase2.allocation`,
/// `phase3.overlay`, `phase3.deployment`, `grape`, `measure.window`),
/// CRAM counters, pair-cache hit rates, and the simulator's queue/drop
/// instruments. Telemetry is observation only — the outcome is
/// bit-identical with any registry.
///
/// # Panics
/// Same as [`run_approach`].
pub fn run_approach_with_telemetry(
    scenario: &Scenario,
    approach: Approach,
    cfg: &RunConfig,
    registry: &Registry,
) -> Outcome {
    let mut outcome = Outcome {
        approach: approach.label(),
        scenario: scenario.name.clone(),
        subscriptions: scenario.sub_count(),
        allocated_brokers: scenario.broker_count(),
        metrics: RunMetrics::default(),
        plan_time: Duration::ZERO,
        cram_stats: None,
        overlay_stats: None,
    };
    match approach {
        Approach::Manual => {
            let placement = manual(scenario, cfg.seed);
            outcome.metrics = deploy_and_measure(scenario, &placement, cfg, registry);
        }
        Approach::Automatic => {
            let placement = automatic(scenario, cfg.seed);
            outcome.metrics = deploy_and_measure(scenario, &placement, cfg, registry);
        }
        Approach::GrapeOnly => {
            let (mut placement, input) = profile_and_gather_with_telemetry(scenario, cfg, registry);
            let t0 = Instant::now();
            // Build the interest tree of the *existing* MANUAL topology
            // from the gathered profiles and relocate publishers only.
            let mut locals: BTreeMap<_, SubscriptionProfile> = placement
                .spec
                .brokers
                .iter()
                .map(|b| (b.id, SubscriptionProfile::new()))
                .collect();
            for (i, sub) in scenario.subs.iter().enumerate() {
                if let Some(entry) = input.subscriptions.iter().find(|e| e.id == sub.id) {
                    locals
                        .get_mut(&placement.subscriber_homes[i])
                        .expect("home broker")
                        .or_assign(&entry.profile);
                }
            }
            let tree = InterestTree::new(locals.into_iter().collect(), &placement.spec.edges);
            let homes = place_publishers(&tree, &input.publishers, GrapeConfig::minimize_load());
            for (i, home) in placement.publisher_homes.iter_mut().enumerate() {
                if let Some(b) = homes.get(&AdvId::new(i as u64 + 1)) {
                    *home = *b;
                }
            }
            outcome.plan_time = t0.elapsed();
            outcome.metrics = deploy_and_measure(scenario, &placement, cfg, registry);
        }
        Approach::PairwiseK | Approach::PairwiseN => {
            let (_, input) = profile_and_gather_with_telemetry(scenario, cfg, registry);
            let t0 = Instant::now();
            let result = if approach == Approach::PairwiseK {
                let (_, stats) = CramBuilder::new(ClosenessMetric::Xor)
                    .telemetry(registry)
                    .run(&input)
                    .expect("CRAM-XOR for K");
                pairwise_k(&input, stats.final_units, cfg.seed)
            } else {
                pairwise_n(&input, cfg.seed)
            };
            outcome.plan_time = t0.elapsed();
            outcome.allocated_brokers = result.allocation.broker_count();
            let placement = from_allocation(scenario, &result.allocation, cfg.seed);
            outcome.metrics = deploy_and_measure(scenario, &placement, cfg, registry);
        }
        Approach::Fbf | Approach::BinPacking | Approach::Cram(_) => {
            let (_, input) = profile_and_gather_with_telemetry(scenario, cfg, registry);
            let plan_config = match approach {
                Approach::Fbf => PlanConfig::fbf(cfg.seed),
                Approach::BinPacking => PlanConfig::bin_packing(),
                Approach::Cram(m) => PlanConfig::cram(m),
                _ => unreachable!(),
            };
            let t0 = Instant::now();
            let p =
                plan_with_telemetry(&input, &plan_config, registry).expect("planning succeeded");
            outcome.plan_time = t0.elapsed();
            outcome.allocated_brokers = p.broker_count();
            outcome.cram_stats = p.cram_stats;
            outcome.overlay_stats = Some(p.overlay.stats);
            let placement = from_plan(scenario, &p);
            outcome.metrics = deploy_and_measure(scenario, &placement, cfg, registry);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, Topology};

    fn small() -> (Scenario, RunConfig) {
        let mut s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(120)
            .seed(7)
            .build();
        s.brokers.truncate(16);
        let cfg = RunConfig {
            warmup: SimDuration::from_secs(3),
            profile: SimDuration::from_secs(60),
            measure: SimDuration::from_secs(60),
            seed: 7,
        };
        (s, cfg)
    }

    #[test]
    fn manual_baseline_runs() {
        let (s, cfg) = small();
        let o = run_approach(&s, Approach::Manual, &cfg);
        assert_eq!(o.approach, "MANUAL");
        assert_eq!(o.allocated_brokers, 16);
        assert!(o.metrics.deliveries > 0);
    }

    #[test]
    fn cram_reduces_brokers_and_message_rate_vs_manual() {
        let (s, cfg) = small();
        let base = run_approach(&s, Approach::Manual, &cfg);
        let cram = run_approach(&s, Approach::Cram(ClosenessMetric::Ios), &cfg);
        assert!(cram.allocated_brokers < base.allocated_brokers);
        assert!(
            cram.metrics.avg_broker_msg_rate < base.metrics.avg_broker_msg_rate,
            "cram {} vs manual {}",
            cram.metrics.avg_broker_msg_rate,
            base.metrics.avg_broker_msg_rate
        );
        assert!(cram.cram_stats.is_some());
        // Deliveries are preserved (same workload, same windows; allow
        // small edge effects).
        let ratio = cram.metrics.deliveries as f64 / base.metrics.deliveries as f64;
        assert!((0.8..1.25).contains(&ratio), "delivery ratio {ratio}");
    }

    #[test]
    fn bin_packing_and_fbf_run() {
        let (s, cfg) = small();
        let bp = run_approach(&s, Approach::BinPacking, &cfg);
        let fbf = run_approach(&s, Approach::Fbf, &cfg);
        assert!(bp.allocated_brokers <= fbf.allocated_brokers);
        assert!(bp.metrics.deliveries > 0 && fbf.metrics.deliveries > 0);
    }

    #[test]
    fn pairwise_baselines_run() {
        let (s, cfg) = small();
        let pk = run_approach(&s, Approach::PairwiseK, &cfg);
        let pn = run_approach(&s, Approach::PairwiseN, &cfg);
        assert!(pk.metrics.deliveries > 0);
        assert!(pn.metrics.deliveries > 0);
        assert!(pn.allocated_brokers <= 16);
    }

    #[test]
    fn telemetry_traces_the_pipeline_without_changing_it() {
        let (s, cfg) = small();
        let registry = Registry::new();
        let traced = run_approach_with_telemetry(&s, Approach::Manual, &cfg, &registry);
        let plain = run_approach(&s, Approach::Manual, &cfg);
        assert_eq!(
            traced.metrics.deliveries, plain.metrics.deliveries,
            "telemetry must not perturb the simulation"
        );
        let snap = registry.snapshot();
        assert!(snap.spans.contains_key("phase3.deployment"));
        assert!(snap.spans.contains_key("measure.window"));
        assert!(snap.counters.get("simnet.delivered").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(Approach::Cram(ClosenessMetric::Iou).label(), "CRAM-IOU");
        assert_eq!(Approach::ALL_PAPER.len(), 10);
    }
}
