//! The end-to-end experiment runner: deploy MANUAL, profile, gather,
//! plan with an approach, redeploy, measure — the pipeline behind every
//! figure in the evaluation.
//!
//! These are thin, panicking conveniences over
//! [`crate::pipeline::ReconfigPipeline`]; drive the pipeline directly
//! when you need checkpointing, resume, or typed errors.

use crate::pipeline::{GatherPhase, ReconfigPipeline};
use crate::scenario::Scenario;
use crate::topology::Placement;
use greenps_broker::RunMetrics;
use greenps_core::cram::CramStats;
use greenps_core::croc::PlanConfig;
use greenps_core::model::AllocationInput;
use greenps_core::overlay::OverlayStats;
use greenps_core::pipeline::{Phase, ReconfigContext};
use greenps_profile::ClosenessMetric;
use greenps_simnet::SimDuration;
use std::time::Duration;

/// The approaches compared in the evaluation (paper §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Baseline: fan-out-2 tree, capacity-aware manual placement.
    Manual,
    /// Baseline: random tree, random placement.
    Automatic,
    /// Related work: pairwise clustering, K = CRAM-XOR's cluster count.
    PairwiseK,
    /// Related work: pairwise clustering, one cluster per broker.
    PairwiseN,
    /// Fastest Broker First.
    Fbf,
    /// BIN PACKING.
    BinPacking,
    /// CRAM with a closeness metric.
    Cram(ClosenessMetric),
    /// Publisher relocation only (GRAPE on the MANUAL topology) — the
    /// §II-B limitation experiment.
    GrapeOnly,
}

impl Approach {
    /// Every approach in the paper's comparison, in presentation order.
    pub const ALL_PAPER: [Approach; 10] = [
        Approach::Manual,
        Approach::Automatic,
        Approach::PairwiseK,
        Approach::PairwiseN,
        Approach::Fbf,
        Approach::BinPacking,
        Approach::Cram(ClosenessMetric::Intersect),
        Approach::Cram(ClosenessMetric::Xor),
        Approach::Cram(ClosenessMetric::Ios),
        Approach::Cram(ClosenessMetric::Iou),
    ];

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Approach::Manual => "MANUAL".into(),
            Approach::Automatic => "AUTOMATIC".into(),
            Approach::PairwiseK => "PAIRWISE-K".into(),
            Approach::PairwiseN => "PAIRWISE-N".into(),
            Approach::Fbf => "FBF".into(),
            Approach::BinPacking => "BINPACKING".into(),
            Approach::Cram(m) => format!("CRAM-{m}"),
            Approach::GrapeOnly => "GRAPE-ONLY".into(),
        }
    }
}

/// Timing knobs of one run (simulated durations).
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Warm-up before profiling (advertisements/subscriptions settle).
    pub warmup: SimDuration,
    /// Profiling window (fills bit vectors).
    pub profile: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Seed for placements and FBF order.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            warmup: SimDuration::from_secs(5),
            profile: SimDuration::from_secs(120),
            measure: SimDuration::from_secs(120),
            seed: 1,
        }
    }
}

/// The outcome of running one approach on one scenario.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which approach.
    pub approach: String,
    /// Scenario label.
    pub scenario: String,
    /// Total subscriptions.
    pub subscriptions: usize,
    /// Brokers deployed after reconfiguration (pool size for the
    /// baselines).
    pub allocated_brokers: usize,
    /// Measured deployment metrics.
    pub metrics: RunMetrics,
    /// Wall-clock time spent computing the allocation + overlay +
    /// placement (zero for phases replayed from checkpoints).
    pub plan_time: Duration,
    /// CRAM counters, when CRAM ran.
    pub cram_stats: Option<CramStats>,
    /// Overlay-construction counters, when Phase 3 ran.
    pub overlay_stats: Option<OverlayStats>,
}

/// Runs Phase 1 against a fresh MANUAL deployment of the scenario and
/// returns the gathered input (the starting point of every
/// reconfiguring approach). The deployment's instruments (including the
/// `phase1.gathering` span) record into the context's registry.
///
/// # Panics
/// Panics when Phase 1 does not complete.
pub fn profile_and_gather(
    scenario: &Scenario,
    cfg: &RunConfig,
    ctx: &ReconfigContext,
) -> (Placement, AllocationInput) {
    let out = GatherPhase {
        scenario,
        cfg: *cfg,
    }
    .run((), ctx)
    .expect("phase 1 gather completed");
    (out.placement, out.input)
}

/// Runs a fully custom plan configuration end to end (profiling on the
/// MANUAL topology, then plan, redeploy, measure) — used by ablations
/// such as the GRAPE priority sweep. Every pipeline stage traces into
/// the context's registry.
///
/// # Panics
/// Panics when planning fails or Phase 1 does not complete.
pub fn run_custom_plan(
    scenario: &Scenario,
    label: &str,
    plan_config: &PlanConfig,
    cfg: &RunConfig,
    ctx: &ReconfigContext,
) -> Outcome {
    ReconfigPipeline::custom_plan(scenario, label, plan_config, *cfg)
        .run(ctx)
        .expect("custom plan run completed")
}

/// Runs one approach end to end, with the whole pipeline traced into
/// the context's registry: phase spans (`pipeline.phase.*`,
/// `phase1.gathering`, `phase2.allocation`, `phase3.overlay`,
/// `phase3.deployment`, `grape`, `measure.window`), CRAM counters,
/// pair-cache hit rates, and the simulator's queue/drop instruments.
/// Telemetry is observation only — the outcome is bit-identical with
/// any registry, including the disabled default of
/// [`ReconfigContext::new`].
///
/// # Panics
/// Panics when planning fails (the scenario's broker pool cannot host
/// the workload) or Phase 1 does not complete.
pub fn run_approach(
    scenario: &Scenario,
    approach: Approach,
    cfg: &RunConfig,
    ctx: &ReconfigContext,
) -> Outcome {
    ReconfigPipeline::approach(scenario, approach, *cfg)
        .run(ctx)
        .expect("approach run completed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, Topology};
    use greenps_telemetry::Registry;

    fn small() -> (Scenario, RunConfig) {
        let mut s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(120)
            .seed(7)
            .build();
        s.brokers.truncate(16);
        let cfg = RunConfig {
            warmup: SimDuration::from_secs(3),
            profile: SimDuration::from_secs(60),
            measure: SimDuration::from_secs(60),
            seed: 7,
        };
        (s, cfg)
    }

    #[test]
    fn manual_baseline_runs() {
        let (s, cfg) = small();
        let o = run_approach(&s, Approach::Manual, &cfg, &ReconfigContext::new());
        assert_eq!(o.approach, "MANUAL");
        assert_eq!(o.allocated_brokers, 16);
        assert!(o.metrics.deliveries > 0);
    }

    #[test]
    fn cram_reduces_brokers_and_message_rate_vs_manual() {
        let (s, cfg) = small();
        let ctx = ReconfigContext::new();
        let base = run_approach(&s, Approach::Manual, &cfg, &ctx);
        let cram = run_approach(&s, Approach::Cram(ClosenessMetric::Ios), &cfg, &ctx);
        assert!(cram.allocated_brokers < base.allocated_brokers);
        assert!(
            cram.metrics.avg_broker_msg_rate < base.metrics.avg_broker_msg_rate,
            "cram {} vs manual {}",
            cram.metrics.avg_broker_msg_rate,
            base.metrics.avg_broker_msg_rate
        );
        assert!(cram.cram_stats.is_some());
        // Deliveries are preserved (same workload, same windows; allow
        // small edge effects).
        let ratio = cram.metrics.deliveries as f64 / base.metrics.deliveries as f64;
        assert!((0.8..1.25).contains(&ratio), "delivery ratio {ratio}");
    }

    #[test]
    fn bin_packing_and_fbf_run() {
        let (s, cfg) = small();
        let ctx = ReconfigContext::new();
        let bp = run_approach(&s, Approach::BinPacking, &cfg, &ctx);
        let fbf = run_approach(&s, Approach::Fbf, &cfg, &ctx);
        assert!(bp.allocated_brokers <= fbf.allocated_brokers);
        assert!(bp.metrics.deliveries > 0 && fbf.metrics.deliveries > 0);
    }

    #[test]
    fn pairwise_baselines_run() {
        let (s, cfg) = small();
        let ctx = ReconfigContext::new();
        let pk = run_approach(&s, Approach::PairwiseK, &cfg, &ctx);
        let pn = run_approach(&s, Approach::PairwiseN, &cfg, &ctx);
        assert!(pk.metrics.deliveries > 0);
        assert!(pn.metrics.deliveries > 0);
        assert!(pn.allocated_brokers <= 16);
    }

    #[test]
    fn telemetry_traces_the_pipeline_without_changing_it() {
        let (s, cfg) = small();
        let registry = Registry::new();
        let ctx = ReconfigContext::new().with_registry(&registry);
        let traced = run_approach(&s, Approach::Manual, &cfg, &ctx);
        let plain = run_approach(&s, Approach::Manual, &cfg, &ReconfigContext::new());
        assert_eq!(
            traced.metrics.deliveries, plain.metrics.deliveries,
            "telemetry must not perturb the simulation"
        );
        let snap = registry.snapshot();
        assert!(snap.spans.contains_key("phase3.deployment"));
        assert!(snap.spans.contains_key("measure.window"));
        assert!(snap.spans.contains_key("pipeline.phase.deploy"));
        assert!(snap.spans.contains_key("pipeline.phase.measure"));
        assert!(
            snap.counters
                .get("pipeline.checkpoint.misses")
                .copied()
                .unwrap_or(0)
                > 0
        );
        assert!(snap.counters.get("simnet.delivered").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(Approach::Cram(ClosenessMetric::Iou).label(), "CRAM-IOU");
        assert_eq!(Approach::ALL_PAPER.len(), 10);
    }
}
