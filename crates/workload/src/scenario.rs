//! Experiment scenarios (paper §VI-A).
//!
//! * **Homogeneous cluster**: 80 brokers of equal capacity, 40
//!   publishers at 70 msg/min, 2,000–8,000 subscriptions total.
//! * **Heterogeneous cluster**: 15 brokers at 100% network capacity, 25
//!   at 50%, 40 at 25%; the i-th publisher has `Ns / i` subscriptions,
//!   `Ns ∈ {50, 100, 150, 200}`.
//! * **SciNet**: 400 brokers / 72 publishers and 1,000 brokers / 100
//!   publishers with 225 subscriptions per publisher, publisher counts
//!   chosen to initially saturate the MANUAL deployment.

use crate::stock::{symbols, StockSeries};
use crate::subs::{generate, GeneratedSub};
use greenps_broker::BrokerConfig;
use greenps_core::model::LinearFn;
use greenps_pubsub::ids::BrokerId;
use greenps_simnet::SimDuration;

/// Full broker network capacity in the cluster experiments (bytes/s of
/// output bandwidth). Chosen so that ~2,000 subscriptions pack into a
/// handful of brokers while the 80-broker MANUAL deployment runs near
/// its comfortable load — the paper's 1 Gbps testbed scaled to the
/// workload the same way its bandwidth limiter scales broker capacity.
pub const FULL_BANDWIDTH: f64 = 48_000.0;

/// The paper's publication rate: 70 messages per minute.
pub const PUBLISH_PERIOD_US: u64 = 60_000_000 / 70;

/// Matching-delay model used by every broker: 0.2 ms base plus 50 ns
/// per stored subscription.
pub fn default_matching_delay() -> LinearFn {
    LinearFn::new(0.0002, 5e-8)
}

/// A complete experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (used in reports).
    pub name: String,
    /// Broker pool with capacities.
    pub brokers: Vec<BrokerConfig>,
    /// One stock series per publisher; publisher `i` publishes stock
    /// `stocks[i]` under advertisement id `i + 1`.
    pub stocks: Vec<StockSeries>,
    /// Publication period (common to all publishers).
    pub publish_period: SimDuration,
    /// The subscription workload.
    pub subs: Vec<GeneratedSub>,
    /// Master seed for placements.
    pub seed: u64,
}

impl Scenario {
    /// Total subscriptions.
    pub fn sub_count(&self) -> usize {
        self.subs.len()
    }

    /// Number of publishers.
    pub fn publisher_count(&self) -> usize {
        self.stocks.len()
    }

    /// Number of brokers in the pool.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }
}

fn broker(id: u64, bandwidth: f64) -> BrokerConfig {
    BrokerConfig::new(BrokerId::new(id), default_matching_delay(), bandwidth)
}

fn stocks_for(publishers: usize, seed: u64) -> Vec<StockSeries> {
    symbols(publishers)
        .into_iter()
        .enumerate()
        .map(|(i, s)| StockSeries::generate(s, seed.wrapping_add(i as u64), 252))
        .collect()
}

/// The homogeneous cluster scenario: 80 equal brokers, 40 publishers,
/// `total_subs` subscriptions split evenly.
pub fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
    let publishers = 40;
    let stocks = stocks_for(publishers, seed);
    let per = total_subs / publishers;
    let mut counts = vec![per; publishers];
    for slot in counts.iter_mut().take(total_subs - per * publishers) {
        *slot += 1;
    }
    let subs = generate(&stocks, &counts, seed ^ 0x50b5);
    Scenario {
        name: format!("homogeneous-{total_subs}"),
        brokers: (0..80).map(|i| broker(i, FULL_BANDWIDTH)).collect(),
        stocks,
        publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
        subs,
        seed,
    }
}

/// The heterogeneous cluster scenario: 15 full / 25 half / 40 quarter
/// capacity brokers; subscriber counts ramp down linearly from `ns` for
/// the first publisher to `ns / 40` for the last — which reproduces the
/// paper's worked numbers exactly ("with Ns set to 200, the total
/// number of subscriptions is 4,100, and the lowest and highest number
/// of subscribers for a publisher are 5 and 200").
pub fn heterogeneous(ns: usize, seed: u64) -> Scenario {
    let publishers = 40;
    let stocks = stocks_for(publishers, seed);
    let top = ns as f64;
    let bottom = ns as f64 / publishers as f64;
    let step = (top - bottom) / (publishers - 1) as f64;
    let counts: Vec<usize> = (0..publishers)
        .map(|i| ((top - step * i as f64).round() as usize).max(1))
        .collect();
    let subs = generate(&stocks, &counts, seed ^ 0xbe7);
    let mut brokers = Vec::with_capacity(80);
    for i in 0..15 {
        brokers.push(broker(i, FULL_BANDWIDTH));
    }
    for i in 15..40 {
        brokers.push(broker(i, FULL_BANDWIDTH * 0.5));
    }
    for i in 40..80 {
        brokers.push(broker(i, FULL_BANDWIDTH * 0.25));
    }
    Scenario {
        name: format!("heterogeneous-Ns{ns}"),
        brokers,
        stocks,
        publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
        subs,
        seed,
    }
}

/// The SciNet large-scale scenario: `brokers` ∈ {400, 1000} with 72 or
/// 100 publishers respectively and 225 subscriptions per publisher.
pub fn scinet(brokers: usize, seed: u64) -> Scenario {
    let publishers = if brokers >= 1000 { 100 } else { 72 };
    scinet_custom(brokers, publishers, 225, seed)
}

/// SciNet with explicit publisher and per-publisher subscription counts
/// (reduced scales for quick runs).
pub fn scinet_custom(
    brokers: usize,
    publishers: usize,
    subs_per_publisher: usize,
    seed: u64,
) -> Scenario {
    let stocks = stocks_for(publishers, seed);
    let counts = vec![subs_per_publisher; publishers];
    let subs = generate(&stocks, &counts, seed ^ 0x5c1e);
    Scenario {
        name: format!("scinet-{brokers}"),
        brokers: (0..brokers as u64)
            .map(|i| broker(i, FULL_BANDWIDTH))
            .collect(),
        stocks,
        publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
        subs,
        seed,
    }
}

/// The adversarial scenario of §II-B / experiment E6: every broker
/// hosts at least one subscriber with the *same* subscription, so
/// relocating publishers alone cannot reduce the message rate.
pub fn every_broker_subscribes(brokers: usize, seed: u64) -> Scenario {
    let stocks = stocks_for(1, seed);
    // One template subscription per broker (identical interests).
    let counts = vec![brokers];
    let mut subs = generate(&stocks, &counts, seed);
    for s in &mut subs {
        s.filter = greenps_pubsub::filter::stock_template(&stocks[0].symbol);
    }
    Scenario {
        name: format!("every-broker-subscribes-{brokers}"),
        brokers: (0..brokers as u64)
            .map(|i| broker(i, FULL_BANDWIDTH))
            .collect(),
        stocks,
        publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
        subs,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_matches_paper_parameters() {
        let s = homogeneous(2000, 1);
        assert_eq!(s.broker_count(), 80);
        assert_eq!(s.publisher_count(), 40);
        assert_eq!(s.sub_count(), 2000);
        assert!(s.brokers.iter().all(|b| b.out_bandwidth == FULL_BANDWIDTH));
        // 70 msg/min
        assert_eq!(s.publish_period.as_micros(), 857_142);
    }

    #[test]
    fn heterogeneous_capacity_tiers() {
        let s = heterogeneous(200, 2);
        assert_eq!(s.broker_count(), 80);
        let full = s
            .brokers
            .iter()
            .filter(|b| b.out_bandwidth == FULL_BANDWIDTH)
            .count();
        let half = s
            .brokers
            .iter()
            .filter(|b| b.out_bandwidth == FULL_BANDWIDTH * 0.5)
            .count();
        let quarter = s
            .brokers
            .iter()
            .filter(|b| b.out_bandwidth == FULL_BANDWIDTH * 0.25)
            .count();
        assert_eq!((full, half, quarter), (15, 25, 40));
        // "with Ns set to 200, the total number of subscriptions is
        // 4,100, and the lowest and highest number of subscribers for a
        // publisher are 5 and 200"
        assert_eq!(s.sub_count(), 4_100);
        let first = s.subs.iter().filter(|x| x.publisher_index == 0).count();
        let last = s.subs.iter().filter(|x| x.publisher_index == 39).count();
        assert_eq!(first, 200);
        assert_eq!(last, 5);
    }

    #[test]
    fn scinet_parameters() {
        let s = scinet(400, 3);
        assert_eq!(s.broker_count(), 400);
        assert_eq!(s.publisher_count(), 72);
        assert_eq!(s.sub_count(), 72 * 225);
        let s = scinet(1000, 3);
        assert_eq!(s.publisher_count(), 100);
    }

    #[test]
    fn adversarial_scenario_has_identical_subs() {
        let s = every_broker_subscribes(10, 4);
        assert_eq!(s.sub_count(), 10);
        let first = s.subs[0].filter.canonical_key();
        assert!(s.subs.iter().all(|x| x.filter.canonical_key() == first));
    }
}
