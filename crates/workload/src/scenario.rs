//! Experiment scenarios (paper §VI-A).
//!
//! * **Homogeneous cluster**: 80 brokers of equal capacity, 40
//!   publishers at 70 msg/min, 2,000–8,000 subscriptions total.
//! * **Heterogeneous cluster**: 15 brokers at 100% network capacity, 25
//!   at 50%, 40 at 25%; the i-th publisher has `Ns / i` subscriptions,
//!   `Ns ∈ {50, 100, 150, 200}`.
//! * **SciNet**: 400 brokers / 72 publishers and 1,000 brokers / 100
//!   publishers with 225 subscriptions per publisher, publisher counts
//!   chosen to initially saturate the MANUAL deployment.

use crate::stock::{symbols, StockSeries};
use crate::subs::{generate, GeneratedSub};
use greenps_broker::BrokerConfig;
use greenps_core::model::LinearFn;
use greenps_pubsub::ids::BrokerId;
use greenps_simnet::SimDuration;

/// Full broker network capacity in the cluster experiments (bytes/s of
/// output bandwidth). Chosen so that ~2,000 subscriptions pack into a
/// handful of brokers while the 80-broker MANUAL deployment runs near
/// its comfortable load — the paper's 1 Gbps testbed scaled to the
/// workload the same way its bandwidth limiter scales broker capacity.
pub const FULL_BANDWIDTH: f64 = 48_000.0;

/// The paper's publication rate: 70 messages per minute.
pub const PUBLISH_PERIOD_US: u64 = 60_000_000 / 70;

/// Matching-delay model used by every broker: 0.2 ms base plus 50 ns
/// per stored subscription.
pub fn default_matching_delay() -> LinearFn {
    LinearFn::new(0.0002, 5e-8)
}

/// A complete experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (used in reports).
    pub name: String,
    /// Broker pool with capacities.
    pub brokers: Vec<BrokerConfig>,
    /// One stock series per publisher; publisher `i` publishes stock
    /// `stocks[i]` under advertisement id `i + 1`.
    pub stocks: Vec<StockSeries>,
    /// Publication period (common to all publishers).
    pub publish_period: SimDuration,
    /// The subscription workload.
    pub subs: Vec<GeneratedSub>,
    /// Master seed for placements.
    pub seed: u64,
}

impl Scenario {
    /// Total subscriptions.
    pub fn sub_count(&self) -> usize {
        self.subs.len()
    }

    /// Number of publishers.
    pub fn publisher_count(&self) -> usize {
        self.stocks.len()
    }

    /// Number of brokers in the pool.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }
}

pub(crate) fn broker(id: u64, bandwidth: f64) -> BrokerConfig {
    BrokerConfig::new(BrokerId::new(id), default_matching_delay(), bandwidth)
}

pub(crate) fn stocks_for(publishers: usize, seed: u64) -> Vec<StockSeries> {
    symbols(publishers)
        .into_iter()
        .enumerate()
        .map(|(i, s)| StockSeries::generate(s, seed.wrapping_add(i as u64), 252))
        .collect()
}

/// The four workload shapes of §VI-A, selected via [`ScenarioBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// 80 equal-capacity brokers, 40 publishers, subscriptions split
    /// evenly across publishers.
    Homogeneous,
    /// Three capacity tiers (15 full / 25 half / 40 quarter); subscriber
    /// counts ramp down linearly from `Ns` to `Ns / 40`.
    Heterogeneous,
    /// The SciNet large-scale deployment: equal brokers, a fixed number
    /// of subscriptions per publisher.
    Scinet,
    /// The adversarial §II-B workload: every broker hosts the *same*
    /// subscription, so publisher relocation alone cannot help.
    EveryBrokerSubscribes,
    /// Zone-sharded workload for the hierarchical allocation path
    /// (DESIGN.md §12): `zones` locality groups, each with its own
    /// publishers, where zone `z` receives a subscription share
    /// weighted by `(zones - z)^skew` (`skew = 0` → uniform). Every
    /// generated subscription carries `locality = Some(zone)`.
    Zoned {
        /// Number of locality zones (≥ 1).
        zones: usize,
        /// Integer skew exponent for the per-zone subscription weights.
        skew: u32,
    },
}

/// One fluent entry point for every experiment scenario.
///
/// Replaces the `homogeneous` / `heterogeneous` / `scinet` /
/// `scinet_custom` / `every_broker_subscribes` constructor zoo: pick a
/// [`Topology`], override what the experiment varies, and `build()`.
/// Unset knobs keep the paper's §VI-A parameters, so
/// `ScenarioBuilder::new(Topology::Homogeneous).total_subs(n).seed(s).build()`
/// is byte-identical to the old `homogeneous(n, s)`.
///
/// ```
/// use greenps_workload::scenario::{ScenarioBuilder, Topology};
///
/// let s = ScenarioBuilder::new(Topology::Scinet)
///     .brokers(40)
///     .publishers(8)
///     .subs_per_publisher(25)
///     .seed(7)
///     .build();
/// assert_eq!(s.broker_count(), 40);
/// assert_eq!(s.sub_count(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    topology: Topology,
    brokers: Option<usize>,
    total_subs: usize,
    ns: usize,
    publishers: Option<usize>,
    subs_per_publisher: usize,
    capacity_scale: f64,
    seed: u64,
}

impl ScenarioBuilder {
    /// A builder for `topology` with the paper's default parameters.
    pub fn new(topology: Topology) -> Self {
        ScenarioBuilder {
            topology,
            brokers: None,
            total_subs: 2000,
            ns: 200,
            publishers: None,
            subs_per_publisher: 225,
            capacity_scale: 1.0,
            seed: 0,
        }
    }

    /// Broker pool size. Defaults: 80 (cluster topologies), 400
    /// (SciNet). For [`Topology::Heterogeneous`] the 15/25/40 tier
    /// split is scaled proportionally.
    #[must_use]
    pub fn brokers(mut self, n: usize) -> Self {
        self.brokers = Some(n);
        self
    }

    /// Total subscriptions ([`Topology::Homogeneous`] only; the other
    /// topologies derive their counts from their own knobs).
    #[must_use]
    pub fn total_subs(mut self, n: usize) -> Self {
        self.total_subs = n;
        self
    }

    /// The heterogeneous `Ns` parameter (first publisher's subscriber
    /// count; the paper evaluates 50–200).
    #[must_use]
    pub fn ns(mut self, ns: usize) -> Self {
        self.ns = ns;
        self
    }

    /// Publisher count ([`Topology::Scinet`] only). Default follows the
    /// paper: 100 when the pool has ≥1,000 brokers, else 72.
    #[must_use]
    pub fn publishers(mut self, n: usize) -> Self {
        self.publishers = Some(n);
        self
    }

    /// Subscriptions per publisher ([`Topology::Scinet`] only;
    /// default 225).
    #[must_use]
    pub fn subs_per_publisher(mut self, n: usize) -> Self {
        self.subs_per_publisher = n;
        self
    }

    /// Multiplies every broker's output bandwidth — the capacity-tier
    /// knob (e.g. `2.0` doubles each tier, preserving the tier ratios).
    #[must_use]
    pub fn capacity_scale(mut self, factor: f64) -> Self {
        self.capacity_scale = factor;
        self
    }

    /// Master seed for stock series, subscription generation, and
    /// placements.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the scenario.
    pub fn build(&self) -> Scenario {
        let mut s = match self.topology {
            Topology::Homogeneous => self.build_homogeneous(),
            Topology::Heterogeneous => self.build_heterogeneous(),
            Topology::Scinet => self.build_scinet(),
            Topology::EveryBrokerSubscribes => self.build_every_broker_subscribes(),
            Topology::Zoned { zones, skew } => self.build_zoned(zones, skew),
        };
        if self.capacity_scale != 1.0 {
            for b in &mut s.brokers {
                b.out_bandwidth *= self.capacity_scale;
            }
        }
        s
    }

    fn build_homogeneous(&self) -> Scenario {
        let total_subs = self.total_subs;
        let seed = self.seed;
        let publishers = 40;
        let stocks = stocks_for(publishers, seed);
        let per = total_subs / publishers;
        let mut counts = vec![per; publishers];
        for slot in counts.iter_mut().take(total_subs - per * publishers) {
            *slot += 1;
        }
        let subs = generate(&stocks, &counts, seed ^ 0x50b5);
        let broker_count = self.brokers.unwrap_or(80) as u64;
        Scenario {
            name: format!("homogeneous-{total_subs}"),
            brokers: (0..broker_count)
                .map(|i| broker(i, FULL_BANDWIDTH))
                .collect(),
            stocks,
            publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
            subs,
            seed,
        }
    }

    fn build_heterogeneous(&self) -> Scenario {
        let ns = self.ns;
        let seed = self.seed;
        let publishers = 40;
        let stocks = stocks_for(publishers, seed);
        let top = ns as f64;
        let bottom = ns as f64 / publishers as f64;
        let step = (top - bottom) / (publishers - 1) as f64;
        let counts: Vec<usize> = (0..publishers)
            .map(|i| ((top - step * i as f64).round() as usize).max(1))
            .collect();
        let subs = generate(&stocks, &counts, seed ^ 0xbe7);
        // The paper's 15/25/40 tier split, scaled to the pool size.
        let total = self.brokers.unwrap_or(80);
        let full = total * 15 / 80;
        let half = total * 25 / 80;
        let mut brokers = Vec::with_capacity(total);
        for i in 0..total as u64 {
            let bw = if (i as usize) < full {
                FULL_BANDWIDTH
            } else if (i as usize) < full + half {
                FULL_BANDWIDTH * 0.5
            } else {
                FULL_BANDWIDTH * 0.25
            };
            brokers.push(broker(i, bw));
        }
        Scenario {
            name: format!("heterogeneous-Ns{ns}"),
            brokers,
            stocks,
            publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
            subs,
            seed,
        }
    }

    fn build_scinet(&self) -> Scenario {
        let brokers = self.brokers.unwrap_or(400);
        let seed = self.seed;
        let publishers = self
            .publishers
            .unwrap_or(if brokers >= 1000 { 100 } else { 72 });
        let stocks = stocks_for(publishers, seed);
        let counts = vec![self.subs_per_publisher; publishers];
        let subs = generate(&stocks, &counts, seed ^ 0x5c1e);
        Scenario {
            name: format!("scinet-{brokers}"),
            brokers: (0..brokers as u64)
                .map(|i| broker(i, FULL_BANDWIDTH))
                .collect(),
            stocks,
            publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
            subs,
            seed,
        }
    }

    fn build_zoned(&self, zones: usize, skew: u32) -> Scenario {
        let zones = zones.max(1);
        let seed = self.seed;
        let pubs_per_zone = self
            .publishers
            .map(|p| (p / zones).max(1))
            .unwrap_or(crate::zones::DEFAULT_PUBS_PER_ZONE);
        let spec = crate::zones::ZonedSpec {
            zones,
            skew,
            total_subs: self.total_subs,
            pubs_per_zone,
            seed,
        };
        let stocks = stocks_for(spec.total_publishers(), seed);
        let mut subs = Vec::with_capacity(self.total_subs);
        for z in 0..zones {
            subs.extend(spec.zone_subs(z, &stocks));
        }
        let broker_count = self.brokers.unwrap_or((self.total_subs / 50).max(80)) as u64;
        Scenario {
            name: format!("zoned-{zones}x{}-skew{skew}", self.total_subs),
            brokers: (0..broker_count)
                .map(|i| broker(i, FULL_BANDWIDTH))
                .collect(),
            stocks,
            publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
            subs,
            seed,
        }
    }

    fn build_every_broker_subscribes(&self) -> Scenario {
        let brokers = self.brokers.unwrap_or(80);
        let seed = self.seed;
        let stocks = stocks_for(1, seed);
        // One template subscription per broker (identical interests).
        let counts = vec![brokers];
        let mut subs = generate(&stocks, &counts, seed);
        if let Some(first) = stocks.first() {
            let template = greenps_pubsub::filter::stock_template(&first.symbol);
            for s in &mut subs {
                s.filter = template.clone();
            }
        }
        Scenario {
            name: format!("every-broker-subscribes-{brokers}"),
            brokers: (0..brokers as u64)
                .map(|i| broker(i, FULL_BANDWIDTH))
                .collect(),
            stocks,
            publish_period: SimDuration::from_micros(PUBLISH_PERIOD_US),
            subs,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_matches_paper_parameters() {
        let s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(2000)
            .seed(1)
            .build();
        assert_eq!(s.broker_count(), 80);
        assert_eq!(s.publisher_count(), 40);
        assert_eq!(s.sub_count(), 2000);
        assert!(s.brokers.iter().all(|b| b.out_bandwidth == FULL_BANDWIDTH));
        // 70 msg/min
        assert_eq!(s.publish_period.as_micros(), 857_142);
    }

    #[test]
    fn heterogeneous_capacity_tiers() {
        let s = ScenarioBuilder::new(Topology::Heterogeneous)
            .ns(200)
            .seed(2)
            .build();
        assert_eq!(s.broker_count(), 80);
        let full = s
            .brokers
            .iter()
            .filter(|b| b.out_bandwidth == FULL_BANDWIDTH)
            .count();
        let half = s
            .brokers
            .iter()
            .filter(|b| b.out_bandwidth == FULL_BANDWIDTH * 0.5)
            .count();
        let quarter = s
            .brokers
            .iter()
            .filter(|b| b.out_bandwidth == FULL_BANDWIDTH * 0.25)
            .count();
        assert_eq!((full, half, quarter), (15, 25, 40));
        // "with Ns set to 200, the total number of subscriptions is
        // 4,100, and the lowest and highest number of subscribers for a
        // publisher are 5 and 200"
        assert_eq!(s.sub_count(), 4_100);
        let first = s.subs.iter().filter(|x| x.publisher_index == 0).count();
        let last = s.subs.iter().filter(|x| x.publisher_index == 39).count();
        assert_eq!(first, 200);
        assert_eq!(last, 5);
    }

    #[test]
    fn scinet_parameters() {
        let s = ScenarioBuilder::new(Topology::Scinet).seed(3).build();
        assert_eq!(s.broker_count(), 400);
        assert_eq!(s.publisher_count(), 72);
        assert_eq!(s.sub_count(), 72 * 225);
        let s = ScenarioBuilder::new(Topology::Scinet)
            .brokers(1000)
            .seed(3)
            .build();
        assert_eq!(s.publisher_count(), 100);
    }

    #[test]
    fn adversarial_scenario_has_identical_subs() {
        let s = ScenarioBuilder::new(Topology::EveryBrokerSubscribes)
            .brokers(10)
            .seed(4)
            .build();
        assert_eq!(s.sub_count(), 10);
        let first = s.subs[0].filter.canonical_key();
        assert!(s.subs.iter().all(|x| x.filter.canonical_key() == first));
    }

    #[test]
    fn capacity_scale_multiplies_every_tier() {
        let base = ScenarioBuilder::new(Topology::Heterogeneous)
            .seed(5)
            .build();
        let scaled = ScenarioBuilder::new(Topology::Heterogeneous)
            .seed(5)
            .capacity_scale(2.0)
            .build();
        for (a, b) in base.brokers.iter().zip(&scaled.brokers) {
            assert_eq!(b.out_bandwidth, a.out_bandwidth * 2.0);
        }
    }

    #[test]
    fn homogeneous_broker_override() {
        let s = ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(400)
            .brokers(320)
            .seed(6)
            .build();
        assert_eq!(s.broker_count(), 320);
        assert_eq!(s.sub_count(), 400);
    }
}
