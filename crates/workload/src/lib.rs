//! # greenps-workload
//!
//! The evaluation workload and experiment harness: synthetic stockquote
//! series (the paper's Yahoo! Finance substitute), the 40%/60%
//! subscription template workload, the homogeneous / heterogeneous /
//! SciNet scenarios, the MANUAL and AUTOMATIC baseline topologies, and
//! the end-to-end runner that deploys, profiles, reconfigures and
//! measures each approach.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod pipeline;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod stock;
pub mod subs;
pub mod topology;
pub mod zones;

pub use pipeline::ReconfigPipeline;
pub use runner::{run_approach, Approach, Outcome, RunConfig};
pub use scenario::{Scenario, ScenarioBuilder, Topology};
pub use stock::{symbols, StockSeries};
pub use topology::{automatic, deploy, from_allocation, from_plan, manual, Placement};
pub use zones::{ZonedSpec, ZonedStreamFeed, DEFAULT_PUBS_PER_ZONE};
