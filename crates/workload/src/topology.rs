//! Topology builders: the MANUAL and AUTOMATIC baselines, and
//! deployment of a CROC reconfiguration plan.

use crate::scenario::Scenario;
use greenps_broker::{
    BrokerConfig, Deployment, NetPublisher, NetScenario, NetSubscriber, TopologySpec,
};
use greenps_core::croc::ReconfigurationPlan;
use greenps_core::model::Allocation;
use greenps_pubsub::filter::stock_advertisement;
use greenps_pubsub::ids::{AdvId, BrokerId, ClientId, MsgId, SubId};
use greenps_pubsub::message::{Advertisement, Subscription};
use greenps_simnet::{LinkSpec, SimDuration};
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use std::collections::BTreeMap;

/// A topology plus client placements, ready to deploy.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Brokers and overlay edges.
    pub spec: TopologySpec,
    /// Broker each publisher connects to (indexed like
    /// `scenario.stocks`).
    pub publisher_homes: Vec<BrokerId>,
    /// Broker each subscription connects to (indexed like
    /// `scenario.subs`).
    pub subscriber_homes: Vec<BrokerId>,
}

/// LAN link used in all cluster deployments.
pub fn cluster_link() -> LinkSpec {
    LinkSpec {
        latency: SimDuration::from_micros(500),
        bandwidth: None,
    }
}

/// The MANUAL baseline: fan-out-2 tree over the full broker pool.
///
/// Homogeneous pools get random client placement; heterogeneous pools
/// put the most resourceful brokers at the top of the tree and allocate
/// subscriber counts proportional to broker capacity (paper §VI).
pub fn manual(scenario: &Scenario, seed: u64) -> Placement {
    let mut rng = StdRng::seed_from_u64(seed);
    // Sort brokers by capacity descending → tree positions 0.. (for a
    // homogeneous pool this is the identity order).
    let mut brokers: Vec<BrokerConfig> = scenario.brokers.clone();
    brokers.sort_by(|a, b| {
        b.out_bandwidth
            .total_cmp(&a.out_bandwidth)
            .then(a.id.cmp(&b.id))
    });
    let edges: Vec<(BrokerId, BrokerId)> = (1..brokers.len())
        .map(|i| (brokers[(i - 1) / 2].id, brokers[i].id))
        .collect();

    let publisher_homes: Vec<BrokerId> = (0..scenario.publisher_count())
        .map(|_| brokers[rng.gen_range(0..brokers.len())].id)
        .collect();

    let heterogeneous = brokers
        .first()
        .zip(brokers.last())
        .is_some_and(|(a, b)| a.out_bandwidth != b.out_bandwidth);
    let subscriber_homes: Vec<BrokerId> = if heterogeneous {
        // Weighted draw proportional to broker capacity.
        let total: f64 = brokers.iter().map(|b| b.out_bandwidth).sum();
        (0..scenario.sub_count())
            .map(|_| {
                let mut x = rng.gen_range(0.0..total);
                for b in &brokers {
                    if x < b.out_bandwidth {
                        return b.id;
                    }
                    x -= b.out_bandwidth;
                }
                brokers[brokers.len() - 1].id
            })
            .collect()
    } else {
        (0..scenario.sub_count())
            .map(|_| brokers[rng.gen_range(0..brokers.len())].id)
            .collect()
    };

    Placement {
        spec: TopologySpec {
            brokers,
            edges,
            link: cluster_link(),
        },
        publisher_homes,
        subscriber_homes,
    }
}

/// The AUTOMATIC baseline: random tree, random client placement.
pub fn automatic(scenario: &Scenario, seed: u64) -> Placement {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut brokers: Vec<BrokerConfig> = scenario.brokers.clone();
    brokers.shuffle(&mut rng);
    let edges: Vec<(BrokerId, BrokerId)> = (1..brokers.len())
        .map(|i| (brokers[rng.gen_range(0..i)].id, brokers[i].id))
        .collect();
    let publisher_homes = (0..scenario.publisher_count())
        .map(|_| brokers[rng.gen_range(0..brokers.len())].id)
        .collect();
    let subscriber_homes = (0..scenario.sub_count())
        .map(|_| brokers[rng.gen_range(0..brokers.len())].id)
        .collect();
    Placement {
        spec: TopologySpec {
            brokers,
            edges,
            link: cluster_link(),
        },
        publisher_homes,
        subscriber_homes,
    }
}

/// Converts a CROC plan into a deployable placement.
///
/// # Panics
/// Panics if the plan references brokers or subscriptions missing from
/// the scenario.
pub fn from_plan(scenario: &Scenario, plan: &ReconfigurationPlan) -> Placement {
    let by_id: BTreeMap<BrokerId, &BrokerConfig> =
        scenario.brokers.iter().map(|b| (b.id, b)).collect();
    let brokers: Vec<BrokerConfig> = plan
        .overlay
        .nodes()
        .map(|n| by_id[&n.broker].clone())
        .collect();
    let edges: Vec<(BrokerId, BrokerId)> = plan.overlay.edges().collect();
    let publisher_homes: Vec<BrokerId> = (0..scenario.publisher_count())
        .map(|i| {
            let adv = AdvId::new(i as u64 + 1);
            plan.publisher_homes
                .get(&adv)
                .copied()
                .unwrap_or_else(|| plan.overlay.root())
        })
        .collect();
    let subscriber_homes: Vec<BrokerId> = scenario
        .subs
        .iter()
        .map(|s| plan.subscription_homes[&s.id])
        .collect();
    Placement {
        spec: TopologySpec {
            brokers,
            edges,
            link: cluster_link(),
        },
        publisher_homes,
        subscriber_homes,
    }
}

/// Converts a bare allocation (the pairwise baselines) into a placement
/// with an AUTOMATIC (random-tree, random-publisher) overlay over the
/// allocated brokers.
pub fn from_allocation(scenario: &Scenario, alloc: &Allocation, seed: u64) -> Placement {
    let mut rng = StdRng::seed_from_u64(seed);
    let by_id: BTreeMap<BrokerId, &BrokerConfig> =
        scenario.brokers.iter().map(|b| (b.id, b)).collect();
    let brokers: Vec<BrokerConfig> = alloc
        .loads
        .iter()
        .map(|l| by_id[&l.broker].clone())
        .collect();
    let edges: Vec<(BrokerId, BrokerId)> = (1..brokers.len())
        .map(|i| (brokers[rng.gen_range(0..i)].id, brokers[i].id))
        .collect();
    let publisher_homes = (0..scenario.publisher_count())
        .map(|_| brokers[rng.gen_range(0..brokers.len())].id)
        .collect();
    let mut subscriber_homes = vec![brokers[0].id; scenario.sub_count()];
    for load in &alloc.loads {
        for sub in load.sub_ids() {
            // Sub ids are dense indices into the scenario's
            // subscription list; a checked conversion plus `get_mut`
            // quietly skips any id outside it.
            let slot = usize::try_from(sub.raw())
                .ok()
                .and_then(|i| subscriber_homes.get_mut(i));
            if let Some(home) = slot {
                *home = load.broker;
            }
        }
    }
    Placement {
        spec: TopologySpec {
            brokers,
            edges,
            link: cluster_link(),
        },
        publisher_homes,
        subscriber_homes,
    }
}

/// Instantiates a placement: brokers, links, publishers and one
/// subscriber client per subscription.
pub fn deploy(scenario: &Scenario, placement: &Placement) -> Deployment {
    let mut d = Deployment::build(&placement.spec)
        .expect("placement edges reference only allocated brokers");
    for (i, stock) in scenario.stocks.iter().enumerate() {
        let stock = stock.clone();
        let adv = AdvId::new(i as u64 + 1);
        d.attach_publisher(
            ClientId::new(1_000_000 + i as u64),
            adv,
            stock_advertisement(&stock.symbol),
            scenario.publish_period,
            placement.publisher_homes[i],
            Box::new(move |adv, msg| stock.publication(adv, msg)),
        )
        .expect("publisher homes come from the placement's own brokers");
    }
    for (i, sub) in scenario.subs.iter().enumerate() {
        d.attach_subscriber(
            ClientId::new(2_000_000 + sub.id.raw()),
            placement.subscriber_homes[i],
            vec![Subscription::new(sub.id, sub.filter.clone())],
        )
        .expect("subscriber homes come from the placement's own brokers");
    }
    d
}

/// Converts a placement into a pre-generated transport scenario for
/// [`greenps_broker::NetDeployment`]: the same brokers, edges and
/// client homes, with each publisher's stream materialized up front
/// (`per_publisher` publications from its stock series) so the run can
/// be replayed identically over any transport backend.
pub(crate) fn net_scenario(
    scenario: &Scenario,
    placement: &Placement,
    per_publisher: usize,
) -> NetScenario {
    let publishers = scenario
        .stocks
        .iter()
        .enumerate()
        .map(|(i, stock)| {
            let adv = AdvId::new(i as u64 + 1);
            NetPublisher {
                client: ClientId::new(1_000_000 + i as u64),
                broker: placement.publisher_homes[i],
                advertisement: Advertisement::new(adv, stock_advertisement(&stock.symbol)),
                publications: (0..per_publisher as u64)
                    .map(|m| stock.publication(adv, MsgId::new(m)))
                    .collect(),
            }
        })
        .collect();
    let subscribers = scenario
        .subs
        .iter()
        .enumerate()
        .map(|(i, sub)| NetSubscriber {
            client: ClientId::new(2_000_000 + sub.id.raw()),
            broker: placement.subscriber_homes[i],
            subscription: Subscription::new(sub.id, sub.filter.clone()),
        })
        .collect();
    NetScenario {
        brokers: placement.spec.brokers.clone(),
        edges: placement.spec.edges.clone(),
        publishers,
        subscribers,
    }
}

/// Sanity helper for tests: the set of subscription ids in a placement.
pub fn placed_sub_ids(scenario: &Scenario) -> Vec<SubId> {
    scenario.subs.iter().map(|s| s.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioBuilder, Topology};

    fn homogeneous(total_subs: usize, seed: u64) -> Scenario {
        ScenarioBuilder::new(Topology::Homogeneous)
            .total_subs(total_subs)
            .seed(seed)
            .build()
    }

    fn heterogeneous(ns: usize, seed: u64) -> Scenario {
        ScenarioBuilder::new(Topology::Heterogeneous)
            .ns(ns)
            .seed(seed)
            .build()
    }

    #[test]
    fn manual_is_a_fanout_two_tree() {
        let s = homogeneous(200, 1);
        let p = manual(&s, 1);
        assert_eq!(p.spec.brokers.len(), 80);
        assert_eq!(p.spec.edges.len(), 79);
        // Max fan-out of 2 children per broker.
        let mut children: BTreeMap<BrokerId, usize> = BTreeMap::new();
        for (parent, _) in &p.spec.edges {
            *children.entry(*parent).or_default() += 1;
        }
        assert!(children.values().all(|&c| c <= 2));
        assert_eq!(p.publisher_homes.len(), 40);
        assert_eq!(p.subscriber_homes.len(), 200);
    }

    #[test]
    fn heterogeneous_manual_puts_big_brokers_on_top() {
        let s = heterogeneous(100, 2);
        let p = manual(&s, 2);
        // Root (position 0 in sorted order) is a full-capacity broker.
        let root = &p.spec.brokers[0];
        assert_eq!(root.out_bandwidth, crate::scenario::FULL_BANDWIDTH);
        // Big brokers get proportionally more subscribers.
        let full_ids: Vec<BrokerId> = p
            .spec
            .brokers
            .iter()
            .filter(|b| b.out_bandwidth == crate::scenario::FULL_BANDWIDTH)
            .map(|b| b.id)
            .collect();
        let on_full = p
            .subscriber_homes
            .iter()
            .filter(|b| full_ids.contains(b))
            .count() as f64
            / p.subscriber_homes.len() as f64;
        // Full brokers hold 15×48k of 15×48k+25×24k+40×12k = 40% of
        // capacity; expect roughly that share of subscribers.
        assert!((0.30..0.52).contains(&on_full), "share {on_full}");
    }

    #[test]
    fn automatic_is_a_spanning_tree() {
        let s = homogeneous(100, 3);
        let p = automatic(&s, 3);
        assert_eq!(p.spec.edges.len(), 79);
        // Connectivity: union-find over edges.
        let mut parent: BTreeMap<BrokerId, BrokerId> =
            p.spec.brokers.iter().map(|b| (b.id, b.id)).collect();
        fn find(parent: &mut BTreeMap<BrokerId, BrokerId>, x: BrokerId) -> BrokerId {
            let p = parent[&x];
            if p == x {
                x
            } else {
                let r = find(parent, p);
                parent.insert(x, r);
                r
            }
        }
        for &(a, b) in &p.spec.edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent.insert(ra, rb);
        }
        let roots: std::collections::BTreeSet<BrokerId> = p
            .spec
            .brokers
            .iter()
            .map(|b| find(&mut parent, b.id))
            .collect();
        assert_eq!(roots.len(), 1, "tree is connected");
    }

    #[test]
    fn deploy_small_scenario_delivers() {
        let mut s = homogeneous(40, 4);
        s.brokers.truncate(8);
        let p = manual(&s, 4);
        let mut d = deploy(&s, &p);
        d.run_for(SimDuration::from_secs(5));
        let m = d.measure(SimDuration::from_secs(30));
        assert!(m.deliveries > 0, "publications flow end to end");
        assert_eq!(placed_sub_ids(&s).len(), 40);
    }

    #[test]
    fn placements_are_deterministic() {
        let s = homogeneous(100, 5);
        let a = manual(&s, 9);
        let b = manual(&s, 9);
        assert_eq!(a.publisher_homes, b.publisher_homes);
        assert_eq!(a.subscriber_homes, b.subscriber_homes);
        let c = automatic(&s, 9);
        let d = automatic(&s, 9);
        assert_eq!(c.subscriber_homes, d.subscriber_homes);
    }
}
