//! Zoned workload generation and the streaming zone feed
//! (DESIGN.md §12).
//!
//! Two layers share one generator:
//!
//! * [`crate::scenario::Topology::Zoned`] materializes a full
//!   [`crate::Scenario`] by concatenating [`ZonedSpec::zone_subs`] over
//!   every zone — right for tests and moderate sizes;
//! * [`ZonedStreamFeed`] implements [`greenps_core::zones::ZoneFeed`]
//!   directly over the same spec, generating each zone's subscriptions
//!   and evaluating their profiles *on demand*. Nothing outside the
//!   zone being fed is ever materialized, so a 1M-subscription run's
//!   peak RSS tracks the largest zone — the path `experiments --
//!   scale-report` exercises.
//!
//! Both paths generate byte-identical subscriptions for the same spec:
//! zone `z` draws from its own RNG stream (`seed ^ ZONE_SUB_SALT ^ z`)
//! over its own publishers, so generating a zone never requires
//! generating any other.

use crate::scenario::{
    broker, default_matching_delay, stocks_for, FULL_BANDWIDTH, PUBLISH_PERIOD_US,
};
use crate::stock::StockSeries;
use crate::subs::{generate, GeneratedSub};
use greenps_core::model::{AllocError, BrokerSpec, Unit};
use greenps_core::pipeline::CancelToken;
use greenps_core::zones::{StreamingGifBuilder, ZoneFeed};
use greenps_profile::{PublisherProfile, PublisherTable, SubscriptionProfile};
use greenps_pubsub::ids::{AdvId, MsgId, SubId};
use greenps_pubsub::Publication;

/// Publishers per zone when the builder does not override the count.
pub const DEFAULT_PUBS_PER_ZONE: usize = 4;

/// Salt mixed into each zone's subscription-generation seed.
const ZONE_SUB_SALT: u64 = 0x20ed;

/// The generation parameters of a zoned workload — the pure-data core
/// shared by the materializing and streaming paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZonedSpec {
    /// Number of locality zones (≥ 1).
    pub zones: usize,
    /// Integer skew exponent: zone `z` is weighted `(zones - z)^skew`
    /// (0 → uniform). Capped at 8 to keep the integer weights exact.
    pub skew: u32,
    /// Total subscriptions across all zones.
    pub total_subs: usize,
    /// Publishers per zone; publisher `z * pubs_per_zone + j` belongs
    /// to zone `z`.
    pub pubs_per_zone: usize,
    /// Master seed.
    pub seed: u64,
}

impl ZonedSpec {
    /// Total publishers across all zones.
    pub fn total_publishers(&self) -> usize {
        self.zones.max(1) * self.pubs_per_zone.max(1)
    }

    /// Subscriptions per zone: integer weights `(zones - z)^skew`,
    /// remainders distributed to the lowest zones. Deterministic and
    /// exactly `total_subs` in sum.
    pub fn zone_sub_counts(&self) -> Vec<usize> {
        let zones = self.zones.max(1);
        let exp = self.skew.min(8);
        let weights: Vec<u128> = (0..zones).map(|z| ((zones - z) as u128).pow(exp)).collect();
        let total_weight: u128 = weights.iter().sum();
        let mut counts: Vec<usize> = weights
            .iter()
            .map(|w| ((self.total_subs as u128 * w) / total_weight) as usize)
            .collect();
        let assigned: usize = counts.iter().sum();
        for i in 0..self.total_subs - assigned {
            if let Some(slot) = counts.get_mut(i % zones) {
                *slot += 1;
            }
        }
        counts
    }

    /// Generates zone `zone`'s subscriptions only: globally-sequential
    /// ids (offset by the preceding zones' counts), publisher indices
    /// into the global stock list, and `locality = Some(zone)`.
    ///
    /// `stocks` must cover [`ZonedSpec::total_publishers`] series (the
    /// global list — only the zone's own slice is read).
    pub fn zone_subs(&self, zone: usize, stocks: &[StockSeries]) -> Vec<GeneratedSub> {
        let counts = self.zone_sub_counts();
        let base: u64 = counts[..zone].iter().sum::<usize>() as u64;
        let n = counts[zone];
        let ppz = self.pubs_per_zone.max(1);
        let per = n / ppz;
        let mut zone_counts = vec![per; ppz];
        for slot in zone_counts.iter_mut().take(n - per * ppz) {
            *slot += 1;
        }
        let zone_stocks = &stocks[zone * ppz..(zone + 1) * ppz];
        let mut subs = generate(
            zone_stocks,
            &zone_counts,
            self.seed ^ ZONE_SUB_SALT ^ zone as u64,
        );
        for s in &mut subs {
            s.id = SubId::new(s.id.raw() + base);
            s.publisher_index += zone * ppz;
            s.locality = Some(u32::try_from(zone).unwrap_or(u32::MAX));
        }
        subs
    }
}

/// A streaming [`ZoneFeed`] over a [`ZonedSpec`]: holds the stock
/// series, the per-publisher publication window and the publisher
/// table (all `O(publishers)`), and materializes one zone's
/// subscriptions at a time inside [`ZoneFeed::feed`].
#[derive(Debug)]
pub struct ZonedStreamFeed {
    spec: ZonedSpec,
    stocks: Vec<StockSeries>,
    streams: Vec<Vec<Publication>>,
    publishers: PublisherTable,
}

impl ZonedStreamFeed {
    /// Builds the feed: generates the stock series and evaluates the
    /// first `window` publications of every publisher (the profile
    /// window — `greenps_bench::PROFILE_WINDOW`-compatible).
    pub fn new(spec: ZonedSpec, window: u64) -> Self {
        let stocks = stocks_for(spec.total_publishers(), spec.seed);
        let rate = 1e6 / PUBLISH_PERIOD_US as f64;
        let mut publishers = PublisherTable::new();
        let mut streams = Vec::with_capacity(stocks.len());
        for (i, stock) in stocks.iter().enumerate() {
            let adv = AdvId::new(i as u64 + 1);
            let pubs: Vec<Publication> = (0..window)
                .map(|m| stock.publication(adv, MsgId::new(m)))
                .collect();
            let mean_size =
                pubs.iter().map(|p| p.wire_size()).sum::<usize>() as f64 / pubs.len() as f64;
            publishers.insert(PublisherProfile::new(
                adv,
                rate,
                rate * mean_size,
                MsgId::new(window - 1),
            ));
            streams.push(pubs);
        }
        ZonedStreamFeed {
            spec,
            stocks,
            streams,
            publishers,
        }
    }

    /// The generation parameters.
    pub fn spec(&self) -> &ZonedSpec {
        &self.spec
    }

    /// The publisher table every zone run shares.
    pub fn publishers(&self) -> &PublisherTable {
        &self.publishers
    }

    /// A homogeneous broker pool sized for this workload, matching the
    /// cluster scenarios' full-bandwidth brokers.
    pub fn broker_pool(&self, count: usize) -> Vec<BrokerSpec> {
        (0..count as u64)
            .map(|i| {
                let cfg = broker(i, FULL_BANDWIDTH);
                BrokerSpec::new(cfg.id, cfg.url, cfg.matching_delay, cfg.out_bandwidth)
            })
            .collect()
    }
}

impl ZoneFeed for ZonedStreamFeed {
    fn zone_count(&self) -> usize {
        self.spec.zones.max(1)
    }

    fn feed(
        &mut self,
        zone: usize,
        builder: &mut StreamingGifBuilder,
        cancel: &CancelToken,
    ) -> Result<(), AllocError> {
        for sub in self.spec.zone_subs(zone, &self.stocks) {
            if cancel.is_cancelled_hot() {
                return Err(AllocError::Cancelled);
            }
            let stream = &self.streams[sub.publisher_index];
            let mut profile = SubscriptionProfile::new();
            for p in stream {
                if sub.filter.matches(p) {
                    profile.record(p.adv_id, p.msg_id);
                }
            }
            let load = profile.estimate_load(&self.publishers);
            builder.push(Unit {
                subs: vec![sub.id],
                profile,
                out_bandwidth: load.bandwidth,
            });
        }
        Ok(())
    }
}

/// The default matching-delay model, re-exported for callers building
/// broker pools outside a [`crate::Scenario`].
pub fn zone_broker_delay() -> greenps_core::model::LinearFn {
    default_matching_delay()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, Topology};
    use greenps_core::model::AllocationInput;
    use greenps_core::zones::{zoned_allocate, InputZoneFeed, ZonePlan, ZonedConfig};
    use greenps_profile::ClosenessMetric;
    use greenps_telemetry::Registry;
    use std::collections::BTreeMap;

    const WINDOW: u64 = 120;

    fn spec() -> ZonedSpec {
        ZonedSpec {
            zones: 3,
            skew: 1,
            total_subs: 300,
            pubs_per_zone: 2,
            seed: 11,
        }
    }

    #[test]
    fn zone_sub_counts_are_exact_and_skewed() {
        let s = spec();
        let counts = s.zone_sub_counts();
        assert_eq!(counts.iter().sum::<usize>(), 300);
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
        // skew 0 is uniform
        let uniform = ZonedSpec { skew: 0, ..s }.zone_sub_counts();
        assert_eq!(uniform, vec![100, 100, 100]);
    }

    #[test]
    fn zone_subs_have_global_ids_and_locality_tags() {
        let s = spec();
        let stocks = stocks_for(s.total_publishers(), s.seed);
        let counts = s.zone_sub_counts();
        let mut next_id = 0u64;
        for (z, &count) in counts.iter().enumerate() {
            let subs = s.zone_subs(z, &stocks);
            assert_eq!(subs.len(), count);
            for sub in &subs {
                assert_eq!(sub.id.raw(), next_id);
                assert_eq!(sub.locality, Some(z as u32));
                assert_eq!(sub.publisher_index / s.pubs_per_zone, z);
                next_id += 1;
            }
        }
        assert_eq!(next_id, 300);
        // Regenerating a single zone is deterministic and independent
        // of whether other zones were generated.
        assert_eq!(s.zone_subs(1, &stocks), s.zone_subs(1, &stocks));
    }

    #[test]
    fn zoned_topology_concatenates_the_same_zones() {
        let s = spec();
        let scenario = ScenarioBuilder::new(Topology::Zoned {
            zones: s.zones,
            skew: s.skew,
        })
        .total_subs(s.total_subs)
        .publishers(s.zones * s.pubs_per_zone)
        .seed(s.seed)
        .build();
        assert_eq!(scenario.sub_count(), 300);
        assert_eq!(scenario.publisher_count(), 6);
        let stocks = stocks_for(s.total_publishers(), s.seed);
        let direct: Vec<GeneratedSub> =
            (0..s.zones).flat_map(|z| s.zone_subs(z, &stocks)).collect();
        for (a, b) in scenario.subs.iter().zip(&direct) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.filter, b.filter);
            assert_eq!(a.publisher_index, b.publisher_index);
            assert_eq!(a.locality, b.locality);
        }
    }

    /// The streaming feed and the materialized path (scenario →
    /// profile evaluation → tag partition) must produce identical
    /// allocations: same units per zone, in the same order.
    #[test]
    fn streaming_feed_matches_materialized_input() {
        let s = spec();
        let mut feed = ZonedStreamFeed::new(s, WINDOW);
        let brokers = feed.broker_pool(40);

        // Materialized path: evaluate every subscription up front.
        let scenario = ScenarioBuilder::new(Topology::Zoned {
            zones: s.zones,
            skew: s.skew,
        })
        .total_subs(s.total_subs)
        .publishers(s.zones * s.pubs_per_zone)
        .brokers(40)
        .seed(s.seed)
        .build();
        let mut input = AllocationInput::new();
        input.brokers = brokers.clone();
        input.publishers = feed.publishers().clone();
        for sub in &scenario.subs {
            let stream: Vec<Publication> = (0..WINDOW)
                .map(|m| {
                    scenario.stocks[sub.publisher_index]
                        .publication(AdvId::new(sub.publisher_index as u64 + 1), MsgId::new(m))
                })
                .collect();
            let mut profile = SubscriptionProfile::new();
            for p in &stream {
                if sub.filter.matches(p) {
                    profile.record(p.adv_id, p.msg_id);
                }
            }
            input
                .subscriptions
                .push(greenps_core::model::SubscriptionEntry::new(
                    sub.id,
                    sub.filter.clone(),
                    profile,
                ));
        }
        let tags: BTreeMap<SubId, u32> = scenario
            .subs
            .iter()
            .map(|sub| (sub.id, sub.locality.unwrap()))
            .collect();

        let config = ZonedConfig::with_metric(ClosenessMetric::Intersect);
        let streamed = zoned_allocate(
            &mut feed,
            &brokers,
            &input.publishers.clone(),
            &config,
            &Registry::disabled(),
        )
        .unwrap();
        let mut tag_feed = InputZoneFeed::new(&input, &ZonePlan::Tags(tags));
        let materialized = zoned_allocate(
            &mut tag_feed,
            &brokers,
            &input.publishers,
            &config,
            &Registry::disabled(),
        )
        .unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!(streamed.zone_count(), 3);
        assert_eq!(streamed.sub_count(), 300);
    }
}
