//! Synthetic stock-quote workload.
//!
//! The paper replays Yahoo! Finance daily closing data because real
//! stock series "do not follow any well-defined distribution pattern".
//! We cannot ship that dataset, so this module synthesizes daily OHLCV
//! series with a geometric random walk plus volume bursts — preserving
//! the property that matters (skewed, correlated, distribution-free
//! attribute values) while emitting the paper's exact publication
//! schema:
//!
//! ```text
//! [class,'STOCK'],[symbol,'YHOO'],[open,18.37],[high,18.6],[low,18.37],
//! [close,18.37],[volume,6200],[date,'5-Sep-96'],[openClose%Diff,0.0],
//! [highLow%Diff,0.014],[closeEqualsLow,'true'],[closeEqualsHigh,'false']
//! ```

use greenps_pubsub::ids::{AdvId, MsgId};
use greenps_pubsub::message::Publication;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One synthetic trading day.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyQuote {
    /// Opening price.
    pub open: f64,
    /// Daily high.
    pub high: f64,
    /// Daily low.
    pub low: f64,
    /// Closing price.
    pub close: f64,
    /// Shares traded.
    pub volume: i64,
    /// Date string, `d-Mon-yy`.
    pub date: String,
}

/// A synthetic daily series for one stock symbol.
#[derive(Debug, Clone)]
pub struct StockSeries {
    /// Ticker symbol.
    pub symbol: String,
    /// The trading days, oldest first.
    pub days: Vec<DailyQuote>,
}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

impl StockSeries {
    /// Generates `days` trading days for `symbol`, deterministically
    /// from `seed`.
    ///
    /// # Panics
    /// Panics if `days` is zero.
    pub fn generate(symbol: impl Into<String>, seed: u64, days: usize) -> Self {
        assert!(days > 0, "need at least one trading day");
        let symbol = symbol.into();
        let mut rng = StdRng::seed_from_u64(seed);
        // Per-stock personality: starting price, drift, volatility.
        let mut price = rng.gen_range(5.0..150.0f64);
        let drift = rng.gen_range(-0.0005..0.0015f64);
        let vol = rng.gen_range(0.005..0.04f64);
        let base_volume = rng.gen_range(1_000..500_000i64);

        let mut out = Vec::with_capacity(days);
        for d in 0..days {
            let z: f64 = {
                // Box–Muller from two uniforms.
                let u1: f64 = rng.gen_range(1e-9..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            let open = price;
            let close = (price * (drift + vol * z).exp()).max(0.01);
            let spread = vol * price * rng.gen_range(0.2..1.5);
            let high = open.max(close) + spread * rng.gen_range(0.0..1.0);
            let low = (open.min(close) - spread * rng.gen_range(0.0..1.0)).max(0.01);
            // Volume bursts on big moves.
            let burst = 1.0 + 8.0 * ((close - open).abs() / open);
            let volume = ((base_volume as f64) * burst * rng.gen_range(0.5..2.0)) as i64;
            let year = 96 + (d / 252) % 30;
            let date = format!("{}-{}-{}", 1 + d % 28, MONTHS[(d / 28) % 12], year);
            out.push(DailyQuote {
                open: round2(open),
                high: round2(high),
                low: round2(low),
                close: round2(close),
                volume,
                date,
            });
            price = close;
        }
        Self { symbol, days: out }
    }

    /// The quote for the publication with message id `msg` (the series
    /// replays cyclically like the paper's trace).
    pub fn quote(&self, msg: MsgId) -> &DailyQuote {
        // Reduce modulo the series length in `u64` first: the remainder
        // always fits `usize`, unlike the raw message id on 32-bit.
        let idx = usize::try_from(msg.raw() % self.days.len() as u64).unwrap_or(0);
        &self.days[idx]
    }

    /// Builds the full publication for one message id.
    pub fn publication(&self, adv: AdvId, msg: MsgId) -> Publication {
        let q = self.quote(msg);
        let open_close = if q.open == 0.0 {
            0.0
        } else {
            round3((q.close - q.open).abs() / q.open)
        };
        let high_low = if q.high == 0.0 {
            0.0
        } else {
            round3((q.high - q.low) / q.high)
        };
        Publication::builder(adv, msg)
            .attr("class", "STOCK")
            .attr("symbol", self.symbol.as_str())
            .attr("open", q.open)
            .attr("high", q.high)
            .attr("low", q.low)
            .attr("close", q.close)
            .attr("volume", q.volume)
            .attr("date", q.date.as_str())
            .attr("openClose%Diff", open_close)
            .attr("highLow%Diff", high_low)
            .attr("closeEqualsLow", q.close == q.low)
            .attr("closeEqualsHigh", q.close == q.high)
            .build()
    }

    /// The value range of a numeric attribute over the series — used to
    /// draw inequality thresholds with meaningful selectivity.
    pub fn attr_range(&self, attr: &str) -> Option<(f64, f64)> {
        let vals: Vec<f64> = self
            .days
            .iter()
            .map(|q| match attr {
                "open" => Some(q.open),
                "high" => Some(q.high),
                "low" => Some(q.low),
                "close" => Some(q.close),
                "volume" => Some(q.volume as f64),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((lo, hi))
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// A default symbol universe (real tickers, synthetic data).
pub fn symbols(n: usize) -> Vec<String> {
    const BASE: [&str; 24] = [
        "YHOO", "GOOG", "MSFT", "IBM", "AAPL", "ORCL", "INTC", "CSCO", "DELL", "HPQ", "SUNW",
        "AMZN", "EBAY", "TXN", "AMD", "NVDA", "QCOM", "MOT", "NOK", "SAP", "ADBE", "EMC", "JNPR",
        "RHAT",
    ];
    (0..n)
        .map(|i| match BASE.get(i) {
            Some(sym) => (*sym).to_string(),
            None => format!("SYM{i:03}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = StockSeries::generate("YHOO", 7, 100);
        let b = StockSeries::generate("YHOO", 7, 100);
        assert_eq!(a.days, b.days);
        let c = StockSeries::generate("YHOO", 8, 100);
        assert_ne!(a.days, c.days);
    }

    #[test]
    fn quotes_are_well_formed() {
        let s = StockSeries::generate("GOOG", 3, 500);
        for q in &s.days {
            assert!(q.low <= q.open.min(q.close) + 1e-9, "{q:?}");
            assert!(q.high >= q.open.max(q.close) - 1e-9, "{q:?}");
            assert!(q.low > 0.0 && q.volume > 0);
        }
    }

    #[test]
    fn publication_schema_matches_paper() {
        let s = StockSeries::generate("YHOO", 1, 10);
        let p = s.publication(AdvId::new(1), MsgId::new(3));
        for attr in [
            "class",
            "symbol",
            "open",
            "high",
            "low",
            "close",
            "volume",
            "date",
            "openClose%Diff",
            "highLow%Diff",
            "closeEqualsLow",
            "closeEqualsHigh",
        ] {
            assert!(p.get(attr).is_some(), "missing {attr}");
        }
        assert_eq!(p.get("class").unwrap().as_str(), Some("STOCK"));
        assert_eq!(p.get("symbol").unwrap().as_str(), Some("YHOO"));
    }

    #[test]
    fn series_replays_cyclically() {
        let s = StockSeries::generate("IBM", 2, 10);
        assert_eq!(s.quote(MsgId::new(3)), s.quote(MsgId::new(13)));
    }

    #[test]
    fn attr_range_covers_values() {
        let s = StockSeries::generate("MSFT", 5, 200);
        let (lo, hi) = s.attr_range("close").unwrap();
        assert!(lo < hi);
        for q in &s.days {
            assert!(q.close >= lo && q.close <= hi);
        }
        assert!(s.attr_range("bogus").is_none());
    }

    #[test]
    fn symbol_universe() {
        let syms = symbols(30);
        assert_eq!(syms.len(), 30);
        assert_eq!(syms[0], "YHOO");
        assert_eq!(syms[29], "SYM029");
        // unique
        let set: std::collections::HashSet<_> = syms.iter().collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one trading day")]
    fn zero_days_panics() {
        let _ = StockSeries::generate("X", 0, 0);
    }
}
