//! Plain-text tables and CSV output for experiment results.

use crate::runner::Outcome;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        s.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        std::fs::write(path, s)
    }
}

/// The standard result table used by most experiments.
pub fn outcome_table(outcomes: &[Outcome]) -> Table {
    let mut t = Table::new(&[
        "scenario",
        "approach",
        "subs",
        "brokers",
        "avg msg rate (msg/s)",
        "deliveries",
        "mean hops",
        "mean delay (ms)",
        "plan time (ms)",
    ]);
    for o in outcomes {
        t.row(vec![
            o.scenario.clone(),
            o.approach.clone(),
            o.subscriptions.to_string(),
            o.allocated_brokers.to_string(),
            format!("{:.2}", o.metrics.avg_broker_msg_rate),
            o.metrics.deliveries.to_string(),
            format!("{:.2}", o.metrics.mean_hops),
            format!("{:.2}", o.metrics.mean_delay_s * 1e3),
            format!("{:.1}", o.plan_time.as_secs_f64() * 1e3),
        ]);
    }
    t
}

/// Percentage reduction of `ours` relative to `baseline` (positive =
/// better/lower).
pub fn reduction_pct(baseline: f64, ours: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - ours) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("greenps_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n\"x,y\",plain\n");
    }

    #[test]
    fn reduction() {
        assert_eq!(reduction_pct(100.0, 8.0), 92.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }
}
