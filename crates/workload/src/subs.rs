//! Subscription workload generator (paper §VI-A).
//!
//! "Using the YHOO stock as an example …, 40% of the subscriptions
//! subscribe to the template `[class,=,'STOCK'],[symbol,=,'YHOO']`,
//! while the other 60% also subscribe to that same subscription but
//! with an additional inequality attribute, such as
//! `[class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,x]`."
//!
//! Inequality thresholds are drawn from the stock's own value range so
//! selectivities spread over (0, 1) without assuming any distribution.

use crate::stock::StockSeries;
use greenps_pubsub::filter::stock_template;
use greenps_pubsub::ids::SubId;
use greenps_pubsub::predicate::{Op, Predicate};
use greenps_pubsub::Filter;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fraction of subscriptions that are the pure symbol template.
pub const TEMPLATE_FRACTION: f64 = 0.4;

/// Numeric attributes eligible for the inequality predicate.
const INEQ_ATTRS: [&str; 5] = ["open", "high", "low", "close", "volume"];

/// A generated subscription bound to the publisher (stock) it follows.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedSub {
    /// Subscription identity.
    pub id: SubId,
    /// The content filter.
    pub filter: Filter,
    /// Index of the stock/publisher this subscription follows.
    pub publisher_index: usize,
    /// Locality zone tag for hierarchical allocation (DESIGN.md §12).
    /// `None` for the flat §VI-A topologies; `Some(zone)` for
    /// [`crate::scenario::Topology::Zoned`] workloads.
    pub locality: Option<u32>,
}

/// Generates `counts[i]` subscriptions for publisher `i` of `series`.
///
/// Ids are assigned sequentially from 0.
pub fn generate(series: &[StockSeries], counts: &[usize], seed: u64) -> Vec<GeneratedSub> {
    assert_eq!(series.len(), counts.len(), "one count per publisher");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(counts.iter().sum());
    let mut next_id = 0u64;
    for (i, (stock, &count)) in series.iter().zip(counts).enumerate() {
        for _ in 0..count {
            let filter = one_subscription(stock, &mut rng);
            out.push(GeneratedSub {
                id: SubId::new(next_id),
                filter,
                publisher_index: i,
                locality: None,
            });
            next_id += 1;
        }
    }
    out
}

/// Generates one subscription for a stock: 40% pure template, 60% with
/// an inequality attribute.
pub fn one_subscription(stock: &StockSeries, rng: &mut StdRng) -> Filter {
    let base = stock_template(&stock.symbol);
    if rng.gen_bool(TEMPLATE_FRACTION) {
        return base;
    }
    let attr = INEQ_ATTRS[rng.gen_range(0..INEQ_ATTRS.len())];
    let (lo, hi) = stock.attr_range(attr).expect("numeric attribute");
    // A threshold inside the observed range gives selectivity in (0,1);
    // widen slightly so some subscriptions match (almost) everything or
    // (almost) nothing, like real traders' standing orders.
    let span = (hi - lo).max(1e-6);
    let threshold = rng.gen_range((lo - 0.05 * span)..(hi + 0.05 * span));
    let op = [Op::Lt, Op::Le, Op::Gt, Op::Ge][rng.gen_range(0..4)];
    let value = if attr == "volume" {
        greenps_pubsub::Value::Int(threshold as i64)
    } else {
        greenps_pubsub::Value::Float((threshold * 100.0).round() / 100.0)
    };
    base.and(Predicate::new(attr, op, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_pubsub::ids::{AdvId, MsgId};

    fn series() -> Vec<StockSeries> {
        vec![
            StockSeries::generate("YHOO", 1, 250),
            StockSeries::generate("GOOG", 2, 250),
        ]
    }

    #[test]
    fn counts_and_ids_are_sequential() {
        let subs = generate(&series(), &[10, 5], 42);
        assert_eq!(subs.len(), 15);
        for (i, s) in subs.iter().enumerate() {
            assert_eq!(s.id, SubId::new(i as u64));
        }
        assert_eq!(subs.iter().filter(|s| s.publisher_index == 0).count(), 10);
        assert_eq!(subs.iter().filter(|s| s.publisher_index == 1).count(), 5);
    }

    #[test]
    fn roughly_forty_percent_templates() {
        let subs = generate(&series(), &[2000, 0], 7);
        let templates = subs.iter().filter(|s| s.filter.len() == 2).count();
        let frac = templates as f64 / 2000.0;
        assert!((0.35..0.45).contains(&frac), "template fraction {frac}");
        // the rest have exactly one extra predicate
        for s in &subs {
            assert!(s.filter.len() == 2 || s.filter.len() == 3);
        }
    }

    #[test]
    fn subscriptions_only_match_their_own_symbol() {
        let sers = series();
        let subs = generate(&sers, &[50, 50], 3);
        let yhoo_pub = sers[0].publication(AdvId::new(1), MsgId::new(0));
        for s in subs.iter().filter(|s| s.publisher_index == 1) {
            assert!(!s.filter.matches(&yhoo_pub), "GOOG sub matched YHOO pub");
        }
    }

    #[test]
    fn inequality_selectivities_spread() {
        let sers = series();
        let subs = generate(&sers, &[400, 0], 11);
        // Evaluate each subscription against all publications of its
        // stock and check the selectivity histogram is not degenerate.
        let pubs: Vec<_> = (0..250)
            .map(|i| sers[0].publication(AdvId::new(1), MsgId::new(i)))
            .collect();
        let mut matched_everything = 0;
        let mut matched_nothing = 0;
        let mut middle = 0;
        for s in subs.iter().filter(|s| s.filter.len() == 3) {
            let hits = pubs.iter().filter(|p| s.filter.matches(p)).count();
            if hits == pubs.len() {
                matched_everything += 1;
            } else if hits == 0 {
                matched_nothing += 1;
            } else {
                middle += 1;
            }
        }
        assert!(middle > 100, "most inequality subs are partially selective");
        assert!(matched_everything < 100);
        assert!(matched_nothing < 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&series(), &[20, 20], 9);
        let b = generate(&series(), &[20, 20], 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.filter, y.filter);
        }
    }

    #[test]
    #[should_panic(expected = "one count per publisher")]
    fn mismatched_counts_panic() {
        let _ = generate(&series(), &[1], 0);
    }
}
