//! Cross-module workload integration: heterogeneous deployments flow
//! traffic, the adversarial scenario behaves as §II-B predicts at the
//! planning level, and pairwise placements deploy cleanly.

use greenps_core::cram::CramBuilder;
use greenps_core::pairwise::pairwise_n;
use greenps_core::pipeline::{CancelToken, ReconfigContext};
use greenps_profile::ClosenessMetric;
use greenps_simnet::SimDuration;
use greenps_workload::runner::{profile_and_gather, RunConfig};
use greenps_workload::{deploy, from_allocation, manual, ScenarioBuilder, Topology};

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        warmup: SimDuration::from_secs(4),
        profile: SimDuration::from_secs(60),
        measure: SimDuration::from_secs(60),
        seed,
    }
}

#[test]
fn heterogeneous_manual_deployment_flows() {
    let scenario = ScenarioBuilder::new(Topology::Heterogeneous)
        .ns(30)
        .seed(81)
        .build();
    let placement = manual(&scenario, 81);
    let mut d = deploy(&scenario, &placement);
    d.run_for(SimDuration::from_secs(5));
    let m = d.measure(SimDuration::from_secs(60));
    assert!(m.deliveries > 100, "deliveries {}", m.deliveries);
    assert!(m.mean_hops >= 1.0);
}

#[test]
fn adversarial_scenario_gathers_identical_profiles() {
    let scenario = ScenarioBuilder::new(Topology::EveryBrokerSubscribes)
        .brokers(10)
        .seed(82)
        .build();
    let (_, input) = profile_and_gather(&scenario, &cfg(82), &ReconfigContext::new());
    assert_eq!(input.subscriptions.len(), 10);
    // All subscriptions sink the identical publication set: one GIF.
    let (_, stats) = CramBuilder::new(ClosenessMetric::Ios).run(&input).unwrap();
    assert_eq!(stats.initial_gifs, 1, "identical interests form one GIF");
}

#[test]
fn pairwise_allocation_deploys_and_delivers() {
    let mut scenario = ScenarioBuilder::new(Topology::Homogeneous)
        .total_subs(80)
        .seed(83)
        .build();
    scenario.brokers.truncate(10);
    let (_, input) = profile_and_gather(&scenario, &cfg(83), &ReconfigContext::new());
    let result = pairwise_n(&input, 83, &CancelToken::never()).unwrap();
    let placement = from_allocation(&scenario, &result.allocation, 83);
    let mut d = deploy(&scenario, &placement);
    d.run_for(SimDuration::from_secs(4));
    let m = d.measure(SimDuration::from_secs(60));
    assert!(m.deliveries > 50, "deliveries {}", m.deliveries);
}
