//! Property-based tests of the bit-vector framework: the shifting bit
//! vector against a reference set model, closeness-metric laws, profile
//! relationship consistency, and poset invariants.

use greenps_profile::{
    ClosenessMetric, Poset, Relation, ShiftingBitVector, SubscriptionProfile, XOR_CAP,
};
use greenps_pubsub::ids::{AdvId, MsgId};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_ops() -> impl Strategy<Value = (usize, Vec<u64>)> {
    (8usize..200, proptest::collection::vec(0u64..500, 0..120))
}

proptest! {
    /// The bit vector behaves exactly like a BTreeSet restricted to the
    /// trailing window.
    #[test]
    fn bitvec_matches_set_model((cap, ids) in arb_ops()) {
        let mut v = ShiftingBitVector::new(cap);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut max_id = 0u64;
        for id in ids {
            max_id = max_id.max(id);
            let accepted = v.record(id);
            if accepted {
                model.insert(id);
            }
            // Window invariant: first_id tracks the newest id so the
            // window always covers it.
            prop_assert!(v.window_end() > max_id || v.is_empty() || !accepted);
            model.retain(|&m| m >= v.first_id());
            prop_assert_eq!(v.count_ones(), model.len());
        }
        let got: Vec<u64> = v.iter_ids().collect();
        let want: Vec<u64> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Set operations agree with the set model across arbitrary window
    /// placements.
    #[test]
    #[allow(deprecated)] // the legacy per-op counts stay model-checked
    fn bitvec_set_ops_match_model(
        (cap_a, ids_a) in arb_ops(),
        (cap_b, ids_b) in arb_ops(),
    ) {
        let mut a = ShiftingBitVector::new(cap_a);
        let mut b = ShiftingBitVector::new(cap_b);
        for id in ids_a { a.record(id); }
        for id in ids_b { b.record(id); }
        let sa: BTreeSet<u64> = a.iter_ids().collect();
        let sb: BTreeSet<u64> = b.iter_ids().collect();
        prop_assert_eq!(a.and_count(&b), sa.intersection(&sb).count());
        prop_assert_eq!(a.or_count(&b), sa.union(&sb).count());
        prop_assert_eq!(a.xor_count(&b), sa.symmetric_difference(&sb).count());
        prop_assert_eq!(a.is_subset_of(&b), sa.is_subset(&sb));
    }

    /// OR-merging keeps exactly the most recent `capacity` window of the
    /// union.
    #[test]
    fn bitvec_or_assign_is_windowed_union(
        (cap, ids_a) in arb_ops(),
        ids_b in proptest::collection::vec(0u64..500, 0..120),
    ) {
        let mut a = ShiftingBitVector::new(cap);
        let mut b = ShiftingBitVector::new(cap);
        for id in ids_a { a.record(id); }
        for id in &ids_b { b.record(*id); }
        let sa: BTreeSet<u64> = a.iter_ids().collect();
        let sb: BTreeSet<u64> = b.iter_ids().collect();
        let merged = a.or(&b);
        let got: BTreeSet<u64> = merged.iter_ids().collect();
        let expected: BTreeSet<u64> = sa
            .union(&sb)
            .copied()
            .filter(|&id| id >= merged.first_id())
            .collect();
        prop_assert_eq!(&got, &expected);
        // Nothing below the window start survives, and the window is at
        // most `capacity` wide.
        prop_assert!(merged.window_end() - merged.first_id() == cap as u64);
    }
}

fn arb_profile() -> impl Strategy<Value = SubscriptionProfile> {
    proptest::collection::vec(
        (1u64..4, proptest::collection::btree_set(0u64..96, 0..40)),
        1..3,
    )
    .prop_map(|entries| {
        let mut p = SubscriptionProfile::with_capacity(96);
        for (adv, ids) in entries {
            for id in ids {
                p.record(AdvId::new(adv), MsgId::new(id));
            }
        }
        p
    })
}

proptest! {
    /// Closeness metrics are symmetric, non-negative, and zero exactly
    /// on empty relationships (except XOR, which cannot detect them).
    #[test]
    fn closeness_laws(a in arb_profile(), b in arb_profile()) {
        for metric in ClosenessMetric::ALL {
            let ab = metric.closeness(&a, &b);
            let ba = metric.closeness(&b, &a);
            prop_assert_eq!(ab, ba, "symmetry of {}", metric);
            prop_assert!(ab >= 0.0);
            prop_assert!(ab <= XOR_CAP);
            if metric.supports_empty_pruning() {
                let empty_rel = a.intersect_count(&b) == 0;
                prop_assert_eq!(ab == 0.0, empty_rel, "{} zero iff empty", metric);
            }
        }
    }

    /// Relationship classification agrees with raw set relations, and
    /// flip() mirrors argument order.
    #[test]
    fn relationship_consistency(a in arb_profile(), b in arb_profile()) {
        let rel = a.relationship(&b);
        prop_assert_eq!(rel.flip(), b.relationship(&a));
        let inter = a.intersect_count(&b);
        let (ca, cb) = (a.count_ones(), b.count_ones());
        match rel {
            Relation::Empty => prop_assert_eq!(inter, 0),
            Relation::Equal => {
                prop_assert_eq!(inter, ca);
                prop_assert_eq!(inter, cb);
            }
            Relation::Superset => {
                prop_assert_eq!(inter, cb);
                prop_assert!(ca > cb);
            }
            Relation::Subset => {
                prop_assert_eq!(inter, ca);
                prop_assert!(cb > ca);
            }
            Relation::Intersect => {
                prop_assert!(inter > 0 && inter < ca && inter < cb);
            }
        }
    }

    /// The OR of two profiles covers both inputs.
    #[test]
    fn or_covers_both(a in arb_profile(), b in arb_profile()) {
        let merged = a.or(&b);
        for p in [&a, &b] {
            let rel = merged.relationship(p);
            prop_assert!(
                matches!(rel, Relation::Equal | Relation::Superset) || p.is_empty(),
                "merged must cover input, got {:?}", rel
            );
        }
    }

    /// Poset structural invariants hold under random insert/remove.
    #[test]
    fn poset_invariants(
        profiles in proptest::collection::vec(arb_profile(), 1..25),
        removals in proptest::collection::vec(0usize..25, 0..12),
    ) {
        let mut poset: Poset<usize> = Poset::new();
        let mut live: Vec<usize> = Vec::new();
        for (i, p) in profiles.iter().enumerate() {
            poset.insert(i, p.clone());
            live.push(i);
            poset.check_invariants();
        }
        for r in removals {
            if live.is_empty() { break; }
            let idx = r % live.len();
            let k = live.swap_remove(idx);
            prop_assert!(poset.remove(k).is_some());
            poset.check_invariants();
        }
        prop_assert_eq!(poset.len(), live.len());
    }

    /// Load estimates are monotone: the union's estimated rate is at
    /// least each input's and at most their sum.
    #[test]
    fn union_load_bounds(a in arb_profile(), b in arb_profile()) {
        use greenps_profile::{PublisherProfile, PublisherTable};
        let publishers: PublisherTable = (1..4)
            .map(|i| PublisherProfile::new(AdvId::new(i), 10.0, 1000.0, MsgId::new(95)))
            .collect();
        let la = a.estimate_load(&publishers);
        let lb = b.estimate_load(&publishers);
        let lu = a.estimate_union_load(&b, &publishers);
        prop_assert!(lu.rate >= la.rate.max(lb.rate) - 1e-9);
        prop_assert!(lu.rate <= la.rate + lb.rate + 1e-9);
        // And it matches materializing the union.
        let materialized = a.or(&b).estimate_load(&publishers);
        prop_assert!((lu.rate - materialized.rate).abs() < 1e-9);
        prop_assert!((lu.bandwidth - materialized.bandwidth).abs() < 1e-6);
    }
}
