//! Bounded, shifting bit vectors (paper §III-B).
//!
//! A bit vector records which publications of one publisher a
//! subscription received. Bit `i` corresponds to the publication whose
//! message id is `first_id + i`. The vector has a bounded capacity
//! (default 1,280 bits); recording an id beyond the window shifts the
//! window forward just enough to place the new id in the last bit,
//! discarding the oldest bits — exactly the paper's example: capacity
//! 10, `first_id` 100, incoming id 119 → shift by 10, set index 9,
//! `first_id` becomes 110.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

const WORD_BITS: usize = 64;

/// Narrows an in-window id offset to an index. Every caller guards the
/// offset against the window span first, so the value always fits; the
/// saturating fallback means a (32-bit-target) overflow would hit the
/// subsequent bounds check instead of silently truncating. On 64-bit
/// targets this compiles to a no-op.
fn idx(offset: u64) -> usize {
    usize::try_from(offset).unwrap_or(usize::MAX)
}

/// Default bit vector capacity from the paper.
pub const DEFAULT_CAPACITY: usize = 1_280;

/// A bounded bit vector over a shifting window of publication ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShiftingBitVector {
    first_id: u64,
    capacity: usize,
    words: Vec<u64>,
}

impl Default for ShiftingBitVector {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl ShiftingBitVector {
    /// Creates an empty vector with the given capacity in bits, starting
    /// at id 0.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::starting_at(capacity, 0)
    }

    /// Creates an empty vector whose window starts at `first_id`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn starting_at(capacity: usize, first_id: u64) -> Self {
        assert!(capacity > 0, "bit vector capacity must be positive");
        let words = capacity.div_ceil(WORD_BITS);
        Self {
            first_id,
            capacity,
            words: vec![0; words],
        }
    }

    /// Builds a vector from a window start and explicit bits, mirroring
    /// the paper's figures (`bits[i]` set means id `first_id + i`
    /// received).
    ///
    /// # Panics
    /// Panics if `bits` is longer than `capacity` or `capacity` is zero.
    pub fn from_bits(capacity: usize, first_id: u64, bits: &[bool]) -> Self {
        assert!(bits.len() <= capacity, "more bits than capacity");
        let mut v = Self::starting_at(capacity, first_id);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set_index(i);
            }
        }
        v
    }

    /// Id corresponding to bit index 0 — the paper's per-vector counter.
    pub fn first_id(&self) -> u64 {
        self.first_id
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// One past the last id the window can currently hold.
    pub fn window_end(&self) -> u64 {
        self.first_id + self.capacity as u64
    }

    fn set_index(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Records receipt of publication `id`.
    ///
    /// Returns `false` when the id predates the window (too old to
    /// record); the paper's protocol never needs those bits again.
    pub fn record(&mut self, id: u64) -> bool {
        if id < self.first_id {
            return false;
        }
        if id >= self.window_end() {
            let shift = id - self.window_end() + 1;
            self.shift_forward(shift);
        }
        self.set_index(idx(id - self.first_id));
        true
    }

    /// Shifts the window forward by `shift` ids, discarding the oldest
    /// bits (the paper's left-shift when the first bit is the MSB).
    pub fn shift_forward(&mut self, shift: u64) {
        if shift >= self.capacity as u64 {
            self.words.iter_mut().for_each(|w| *w = 0);
        } else {
            let shift = idx(shift);
            let word_off = shift / WORD_BITS;
            let bit_off = shift % WORD_BITS;
            let n = self.words.len();
            for i in 0..n {
                let lo = self.words.get(i + word_off).copied().unwrap_or(0);
                let hi = self.words.get(i + word_off + 1).copied().unwrap_or(0);
                self.words[i] = if bit_off == 0 {
                    lo
                } else {
                    (lo >> bit_off) | (hi << (WORD_BITS - bit_off))
                };
            }
            self.mask_tail();
        }
        self.first_id += shift;
    }

    fn mask_tail(&mut self) {
        let valid = self.capacity % WORD_BITS;
        if valid != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << valid) - 1;
        }
    }

    /// True when publication `id` is recorded.
    pub fn contains(&self, id: u64) -> bool {
        if id < self.first_id || id >= self.window_end() {
            return false;
        }
        let i = idx(id - self.first_id);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Number of set bits — `|S|` in the closeness formulas.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the recorded publication ids in ascending order.
    pub fn iter_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let first = self.first_id;
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(first + (wi * WORD_BITS + bit) as u64)
            })
        })
    }

    /// All pairwise cardinalities (`|∩|`, `|∪|`, `|self|`, `|other|`)
    /// gathered in a **single** word-level pass — the batch popcount
    /// kernel every closeness metric routes through. `|⊕|` is derived
    /// (`|∪| − |∩|`), so one pass serves all four metrics where the
    /// separate `and_count`/`or_count`/`xor_count` calls would walk the
    /// words up to three times.
    pub fn pair_cardinalities(&self, other: &Self) -> PairCardinalities {
        pair_cardinalities_windows(
            (&self.words, self.first_id, self.window_end()),
            (&other.words, other.first_id, other.window_end()),
        )
    }

    /// `|self ∩ other|` — ids recorded in both vectors.
    #[deprecated(note = "use `pair_cardinalities` (one pass serves all metrics) \
                         or a `ClosenessKernel`")]
    pub fn and_count(&self, other: &Self) -> usize {
        self.zip_count(other, |a, b| a & b)
    }

    /// `|self ∪ other|` — ids recorded in either vector.
    #[deprecated(note = "use `pair_cardinalities` (one pass serves all metrics) \
                         or a `ClosenessKernel`")]
    pub fn or_count(&self, other: &Self) -> usize {
        self.zip_count(other, |a, b| a | b)
    }

    /// `|self ⊕ other|` — ids recorded in exactly one vector.
    #[deprecated(note = "use `pair_cardinalities` (one pass serves all metrics) \
                         or a `ClosenessKernel`")]
    pub fn xor_count(&self, other: &Self) -> usize {
        self.zip_count(other, |a, b| a ^ b)
    }

    pub(crate) fn zip_count(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> usize {
        if self.first_id == other.first_id {
            // Fast path: aligned windows (the common case thanks to
            // publisher message-id synchronization).
            let n = self.words.len().max(other.words.len());
            let mut count = 0;
            for i in 0..n {
                let a = self.words.get(i).copied().unwrap_or(0);
                let b = other.words.get(i).copied().unwrap_or(0);
                count += f(a, b).count_ones() as usize;
            }
            count
        } else {
            let (lo, hi_end) = combined_window(self, other);
            let words = idx(hi_end - lo).div_ceil(WORD_BITS);
            (0..words)
                .map(|i| f(self.window_word(lo, i), other.window_word(lo, i)).count_ones() as usize)
                .sum()
        }
    }

    /// True when every id recorded here is also recorded in `other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.zip_count(other, |a, b| a & b) == self.count_ones()
    }

    /// Bitwise set equality (ignores window placement).
    pub fn same_ids(&self, other: &Self) -> bool {
        self.zip_count(other, |a, b| a ^ b) == 0
    }

    /// Raw backing words, LSB-first from `first_id`. The arena kernel
    /// copies these into its contiguous pool.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites `self` with `other`'s window and bits, reusing the
    /// existing word buffer so repeated copies in a packing loop stay
    /// allocation-free once the buffer has grown to size.
    pub fn copy_from(&mut self, other: &Self) {
        self.first_id = other.first_id;
        self.capacity = other.capacity;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Word `i` of this vector's bits re-aligned to a window starting
    /// at `first`, which must not exceed `first_id`; bits outside this
    /// vector's own window read as zero.
    ///
    /// This is the streaming counterpart of [`Self::aligned_words`] for
    /// the read-only set operations: misaligned popcount scans shift
    /// words on the fly instead of materializing a realigned copy, so
    /// the closeness kernels never allocate.
    fn window_word(&self, first: u64, i: usize) -> u64 {
        window_word_in(&self.words, self.first_id, first, i)
    }

    /// Materializes this vector's bits inside an arbitrary window
    /// `[first, first + words*64)`; bits outside this vector's own
    /// window read as zero. Only the merge path ([`Self::or_assign`])
    /// uses this — reads go through [`Self::window_word`].
    fn aligned_words(&self, first: u64, words: usize) -> Vec<u64> {
        let mut out = vec![0u64; words];
        for id in self.iter_ids() {
            if id >= first {
                let i = idx(id - first);
                if i < words * WORD_BITS {
                    out[i / WORD_BITS] |= 1 << (i % WORD_BITS);
                }
            }
        }
        out
    }

    /// Merges `other` into `self` with bitwise OR (clustering two
    /// subscriptions, Figure 1 of the paper). The merged window covers
    /// both inputs; if their union spans more than this vector's
    /// capacity, the oldest bits are discarded.
    pub fn or_assign(&mut self, other: &Self) {
        // Fast path: identical windows (the common case — vectors of
        // one experiment share first_id and capacity) is a pure
        // word-level OR.
        if self.first_id == other.first_id && self.capacity == other.capacity {
            for (w, o) in self.words.iter_mut().zip(&other.words) {
                *w |= o;
            }
            return;
        }
        let (lo, hi_end) = combined_window(self, other);
        let span = hi_end - lo;
        let first = if span > self.capacity as u64 {
            hi_end - self.capacity as u64
        } else {
            lo
        };
        let words = self.capacity.div_ceil(WORD_BITS);
        let mut merged = self.aligned_words(first, words);
        for (m, o) in merged.iter_mut().zip(other.aligned_words(first, words)) {
            *m |= o;
        }
        self.first_id = first;
        self.words = merged;
        self.mask_tail();
    }

    /// Returns the OR of two vectors as a new vector (capacity of
    /// `self`).
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }
}

/// Result of the batch popcount kernel: every cardinality the four
/// closeness metrics need, computed from one pass over a vector pair
/// (see [`ShiftingBitVector::pair_cardinalities`]). Component-wise sums
/// accumulate per-publisher pairs into profile-level totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairCardinalities {
    /// `|A ∩ B|`.
    pub and: usize,
    /// `|A ∪ B|`.
    pub or: usize,
    /// `|A|`.
    pub left: usize,
    /// `|B|`.
    pub right: usize,
}

impl PairCardinalities {
    /// `|A ⊕ B|`, derived as `|∪| − |∩|`.
    pub fn xor(self) -> usize {
        self.or - self.and
    }

    /// Component-wise sum (accumulation across publishers).
    #[must_use]
    pub fn plus(self, other: Self) -> Self {
        Self {
            and: self.and + other.and,
            or: self.or + other.or,
            left: self.left + other.left,
            right: self.right + other.right,
        }
    }

    /// Cardinalities of a pair whose right side is empty (`B = ∅`).
    pub fn left_only(count: usize) -> Self {
        Self {
            and: 0,
            or: count,
            left: count,
            right: 0,
        }
    }

    /// Cardinalities of a pair whose left side is empty (`A = ∅`).
    pub fn right_only(count: usize) -> Self {
        Self {
            and: 0,
            or: count,
            left: 0,
            right: count,
        }
    }
}

fn combined_window(a: &ShiftingBitVector, b: &ShiftingBitVector) -> (u64, u64) {
    (
        a.first_id.min(b.first_id),
        a.window_end().max(b.window_end()),
    )
}

/// Word `i` of a raw bit-window re-aligned to a window starting at
/// `target_first`, which must not exceed `own_first`; bits outside the
/// source window read as zero. Shared by [`ShiftingBitVector`] and the
/// arena kernel so both streaming popcount paths produce identical
/// words.
pub(crate) fn window_word_in(words: &[u64], own_first: u64, target_first: u64, i: usize) -> u64 {
    debug_assert!(target_first <= own_first);
    let delta = idx(own_first - target_first);
    let (wo, bo) = (delta / WORD_BITS, delta % WORD_BITS);
    let word = |j: Option<usize>| -> u64 { j.and_then(|j| words.get(j).copied()).unwrap_or(0) };
    let lo = word(i.checked_sub(wo));
    if bo == 0 {
        lo
    } else {
        let hi = word(i.checked_sub(wo + 1));
        (lo << bo) | (hi >> (WORD_BITS - bo))
    }
}

/// The batch popcount kernel over two raw bit-windows, each given as
/// `(words, first_id, window_end)`. [`ShiftingBitVector`] and the
/// contiguous arena both route through this single implementation, so
/// the two layouts are word-for-word identical by construction.
pub(crate) fn pair_cardinalities_windows(
    a: (&[u64], u64, u64),
    b: (&[u64], u64, u64),
) -> PairCardinalities {
    let (a_words, a_first, a_end) = a;
    let (b_words, b_first, b_end) = b;
    let mut out = PairCardinalities::default();
    let mut accum = |x: u64, y: u64| {
        out.and += (x & y).count_ones() as usize;
        out.or += (x | y).count_ones() as usize;
        out.left += x.count_ones() as usize;
        out.right += y.count_ones() as usize;
    };
    if a_first == b_first {
        // Fast path: aligned windows (the common case thanks to
        // publisher message-id synchronization).
        let n = a_words.len().max(b_words.len());
        for i in 0..n {
            let x = a_words.get(i).copied().unwrap_or(0);
            let y = b_words.get(i).copied().unwrap_or(0);
            accum(x, y);
        }
    } else {
        let lo = a_first.min(b_first);
        let hi_end = a_end.max(b_end);
        let words = idx(hi_end - lo).div_ceil(WORD_BITS);
        for i in 0..words {
            accum(
                window_word_in(a_words, a_first, lo, i),
                window_word_in(b_words, b_first, lo, i),
            );
        }
    }
    out
}

impl PartialOrd for ShiftingBitVector {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ShiftingBitVector {
    /// Lexicographic order over the recorded id sets (consistent with
    /// the set-based equality).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter_ids().cmp(other.iter_ids())
    }
}

impl PartialEq for ShiftingBitVector {
    fn eq(&self, other: &Self) -> bool {
        self.same_ids(other)
    }
}

impl Eq for ShiftingBitVector {}

impl Hash for ShiftingBitVector {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for id in self.iter_ids() {
            id.hash(state);
        }
    }
}

impl fmt::Display for ShiftingBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}+", self.first_id)?;
        let show = self.capacity.min(64);
        for i in 0..show {
            let set = self.contains(self.first_id + i as u64);
            f.write_str(if set { "1" } else { "0" })?;
        }
        if self.capacity > show {
            f.write_str("…")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn records_within_window() {
        let mut v = ShiftingBitVector::starting_at(10, 100);
        assert!(v.record(100));
        assert!(v.record(105));
        assert!(v.contains(100));
        assert!(v.contains(105));
        assert!(!v.contains(101));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn paper_shift_example() {
        // "if the bit vector length is 10 while the counter representing
        // the first bit is 100, and an incoming publication has a
        // publication ID of 119, then shift the bit vector by 10 bits,
        // set the bit at index 9, and update the counter to 110."
        let mut v = ShiftingBitVector::starting_at(10, 100);
        v.record(103);
        v.record(119);
        assert_eq!(v.first_id(), 110);
        assert!(v.contains(119));
        assert!(!v.contains(103), "old bit shifted out");
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn shift_preserves_recent_bits() {
        let mut v = ShiftingBitVector::starting_at(10, 0);
        for id in [5, 7, 9] {
            v.record(id);
        }
        v.record(12); // shift by 3: window now [3, 13)
        assert_eq!(v.first_id(), 3);
        for id in [5, 7, 9, 12] {
            assert!(v.contains(id), "id {id} lost");
        }
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn too_old_ids_are_rejected() {
        let mut v = ShiftingBitVector::starting_at(10, 100);
        assert!(!v.record(99));
        assert!(v.is_empty());
    }

    #[test]
    fn giant_shift_clears_everything_old() {
        let mut v = ShiftingBitVector::starting_at(128, 0);
        for id in 0..128 {
            v.record(id);
        }
        v.record(10_000);
        assert_eq!(v.count_ones(), 1);
        assert!(v.contains(10_000));
        assert_eq!(v.first_id(), 10_000 - 127);
    }

    #[test]
    #[allow(deprecated)] // exercises the deprecated per-op counts on purpose
    fn figure_1_clustering_example() {
        // S1: Adv1 bits 11100 at 75;       Adv2 bits 11111 at 144
        // S2: Adv1 bits 00111 at 75;       Adv3 bits 00100 at 2
        // S1+S2: Adv1 = 11111, Adv2 = 11111, Adv3 = 00100
        let s1_adv1 = ShiftingBitVector::from_bits(5, 75, &[true, true, true, false, false]);
        let s2_adv1 = ShiftingBitVector::from_bits(5, 75, &[false, false, true, true, true]);
        let merged = s1_adv1.or(&s2_adv1);
        assert_eq!(merged.count_ones(), 5);
        assert_eq!(
            merged.iter_ids().collect::<Vec<_>>(),
            vec![75, 76, 77, 78, 79]
        );
        // intersection of S1 and S2 on Adv1 is the single id 77
        assert_eq!(s1_adv1.and_count(&s2_adv1), 1);
        assert_eq!(s1_adv1.xor_count(&s2_adv1), 4);
        assert_eq!(s1_adv1.or_count(&s2_adv1), 5);
    }

    #[test]
    #[allow(deprecated)] // exercises the deprecated per-op counts on purpose
    fn set_ops_with_misaligned_windows() {
        let mut a = ShiftingBitVector::starting_at(16, 0);
        let mut b = ShiftingBitVector::starting_at(16, 8);
        for id in [4, 9, 10] {
            a.record(id);
        }
        for id in [9, 10, 20] {
            b.record(id);
        }
        assert_eq!(a.and_count(&b), 2); // 9, 10
        assert_eq!(a.or_count(&b), 4); // 4, 9, 10, 20
        assert_eq!(a.xor_count(&b), 2); // 4, 20
        assert!(!a.is_subset_of(&b));
        let sub = {
            let mut s = ShiftingBitVector::starting_at(16, 6);
            s.record(9);
            s
        };
        assert!(sub.is_subset_of(&a));
    }

    #[test]
    fn or_assign_keeps_most_recent_on_overflow() {
        let mut a = ShiftingBitVector::starting_at(10, 0);
        a.record(0);
        a.record(5);
        let mut b = ShiftingBitVector::starting_at(10, 12);
        b.record(15);
        a.or_assign(&b); // union window [0,22) spans 22 > 10 → keep [12,22)
        assert_eq!(a.first_id(), 12);
        assert!(a.contains(15));
        assert!(!a.contains(5));
        assert_eq!(a.count_ones(), 1);
    }

    #[test]
    fn equality_and_hash_ignore_window_placement() {
        use std::collections::hash_map::DefaultHasher;
        let mut a = ShiftingBitVector::starting_at(64, 0);
        let mut b = ShiftingBitVector::starting_at(64, 3);
        for id in [10, 20, 30] {
            a.record(id);
            b.record(id);
        }
        assert_eq!(a, b);
        let hash = |v: &ShiftingBitVector| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        b.record(40);
        assert_ne!(a, b);
    }

    #[test]
    fn iter_ids_round_trips() {
        let mut v = ShiftingBitVector::starting_at(200, 50);
        let ids = [50u64, 63, 64, 65, 127, 128, 200, 249];
        for &id in &ids {
            v.record(id);
        }
        assert_eq!(v.iter_ids().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn display_is_compact() {
        let mut v = ShiftingBitVector::starting_at(5, 75);
        v.record(75);
        v.record(77);
        assert_eq!(v.to_string(), "[75+10100]");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ShiftingBitVector::new(0);
    }

    #[test]
    #[allow(deprecated)] // cross-checks the kernel against the legacy counts
    fn pair_cardinalities_match_individual_counts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..60 {
            let cap = rng.gen_range(1..300usize);
            // Mix aligned and misaligned windows.
            let first_a = rng.gen_range(0..50u64);
            let first_b = if case % 2 == 0 {
                first_a
            } else {
                rng.gen_range(0..50u64)
            };
            let mut a = ShiftingBitVector::starting_at(cap, first_a);
            let mut b = ShiftingBitVector::starting_at(cap, first_b);
            for _ in 0..rng.gen_range(0..80) {
                a.record(first_a + rng.gen_range(0..cap as u64));
            }
            for _ in 0..rng.gen_range(0..80) {
                b.record(first_b + rng.gen_range(0..cap as u64));
            }
            let c = a.pair_cardinalities(&b);
            // Ground truth from the id sets, independent of the
            // word-level streaming paths.
            let sa: BTreeSet<u64> = a.iter_ids().collect();
            let sb: BTreeSet<u64> = b.iter_ids().collect();
            assert_eq!(c.and, sa.intersection(&sb).count());
            assert_eq!(c.or, sa.union(&sb).count());
            assert_eq!(c.and, a.and_count(&b));
            assert_eq!(c.or, a.or_count(&b));
            assert_eq!(c.xor(), a.xor_count(&b));
            assert_eq!(c.left, a.count_ones());
            assert_eq!(c.right, b.count_ones());
            // Symmetry of the kernel.
            let r = b.pair_cardinalities(&a);
            assert_eq!(
                (r.and, r.or, r.left, r.right),
                (c.and, c.or, c.right, c.left)
            );
        }
    }

    #[test]
    fn pair_cardinalities_accumulate() {
        let a = PairCardinalities {
            and: 1,
            or: 5,
            left: 3,
            right: 3,
        };
        let b = PairCardinalities::left_only(4).plus(PairCardinalities::right_only(2));
        let total = a.plus(b);
        assert_eq!(total.and, 1);
        assert_eq!(total.or, 11);
        assert_eq!(total.left, 7);
        assert_eq!(total.right, 5);
        assert_eq!(total.xor(), 10);
    }

    #[test]
    fn model_based_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let cap = rng.gen_range(1..200usize);
            let mut v = ShiftingBitVector::new(cap);
            let mut model: BTreeSet<u64> = BTreeSet::new();
            let mut id = 0u64;
            for _ in 0..300 {
                id += rng.gen_range(0..5);
                if v.record(id) {
                    model.insert(id);
                }
                // model: drop ids outside current window
                let first = v.first_id();
                model.retain(|&m| m >= first);
            }
            assert_eq!(
                v.iter_ids().collect::<Vec<_>>(),
                model.iter().copied().collect::<Vec<_>>()
            );
            assert_eq!(v.count_ones(), model.len());
        }
    }
}
