//! Subscription and publisher profiles (paper §III-B).
//!
//! A subscription profile holds one [`ShiftingBitVector`] per publisher
//! (advertisement) the subscription received publications from. A
//! publisher profile carries the advertisement id, publication rate,
//! bandwidth consumption and the last message id sent — everything CROC
//! needs to estimate subscription loads without assuming any workload
//! distribution.

use crate::bitvec::{PairCardinalities, ShiftingBitVector, DEFAULT_CAPACITY};
use greenps_pubsub::ids::{AdvId, MsgId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Publications sinked by one subscription, per publisher.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SubscriptionProfile {
    vectors: BTreeMap<AdvId, ShiftingBitVector>,
    #[serde(default = "default_capacity")]
    capacity: usize,
}

fn default_capacity() -> usize {
    DEFAULT_CAPACITY
}

impl SubscriptionProfile {
    /// Creates an empty profile with the paper's default bit-vector
    /// capacity (1,280 bits).
    pub fn new() -> Self {
        Self::with_capacity(default_capacity())
    }

    /// Creates an empty profile whose bit vectors hold `capacity` bits.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            vectors: BTreeMap::new(),
            capacity,
        }
    }

    /// The bit-vector capacity newly recorded publishers receive.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records receipt of a publication identified by `(adv, msg_id)`.
    pub fn record(&mut self, adv: AdvId, msg_id: MsgId) {
        self.vectors
            .entry(adv)
            .or_insert_with(|| ShiftingBitVector::new(self.capacity))
            .record(msg_id.raw());
    }

    /// Installs a prebuilt bit vector for a publisher (test/bench
    /// convenience mirroring the paper's figures).
    pub fn insert_vector(&mut self, adv: AdvId, vector: ShiftingBitVector) {
        self.vectors.insert(adv, vector);
    }

    /// The bit vector for one publisher, if any publications from it
    /// were received.
    pub fn vector(&self, adv: AdvId) -> Option<&ShiftingBitVector> {
        self.vectors.get(&adv)
    }

    /// Iterates over `(publisher, bit vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AdvId, &ShiftingBitVector)> {
        self.vectors.iter().map(|(a, v)| (*a, v))
    }

    /// The publishers this subscription received from.
    pub fn publishers(&self) -> impl Iterator<Item = AdvId> + '_ {
        self.vectors.keys().copied()
    }

    /// Number of per-publisher vectors.
    pub fn publisher_count(&self) -> usize {
        self.vectors.len()
    }

    /// Total set bits across all publishers — `|S|`.
    pub fn count_ones(&self) -> usize {
        self.vectors
            .values()
            .map(ShiftingBitVector::count_ones)
            .sum()
    }

    /// True when no publication was recorded.
    pub fn is_empty(&self) -> bool {
        self.vectors.values().all(ShiftingBitVector::is_empty)
    }

    /// All pairwise cardinalities (`|∩|`, `|∪|`, `|S1|`, `|S2|`, and
    /// derived `|⊕|`) summed across publishers, one batch popcount pass
    /// per shared vector — the profile-level entry point of the
    /// closeness engine's kernel. Every [`crate::ClosenessMetric`]
    /// routes through this instead of separate
    /// `intersect_count`/`union_count`/`count_ones` walks.
    pub fn pair_cardinalities(&self, other: &Self) -> PairCardinalities {
        let mut total = PairCardinalities::default();
        for (adv, v) in &self.vectors {
            total = total.plus(match other.vectors.get(adv) {
                Some(o) => v.pair_cardinalities(o),
                None => PairCardinalities::left_only(v.count_ones()),
            });
        }
        for (adv, o) in &other.vectors {
            if !self.vectors.contains_key(adv) {
                total = total.plus(PairCardinalities::right_only(o.count_ones()));
            }
        }
        total
    }

    /// `|S1 ∩ S2|` summed across publishers.
    pub fn intersect_count(&self, other: &Self) -> usize {
        self.vectors
            .iter()
            .filter_map(|(adv, v)| other.vectors.get(adv).map(|o| v.zip_count(o, |a, b| a & b)))
            .sum()
    }

    /// `|S1 ∪ S2|` summed across publishers.
    pub fn union_count(&self, other: &Self) -> usize {
        let mut total = 0;
        for (adv, v) in &self.vectors {
            total += match other.vectors.get(adv) {
                Some(o) => v.zip_count(o, |a, b| a | b),
                None => v.count_ones(),
            };
        }
        total += other
            .vectors
            .iter()
            .filter(|(adv, _)| !self.vectors.contains_key(adv))
            .map(|(_, o)| o.count_ones())
            .sum::<usize>();
        total
    }

    /// `|S1 ⊕ S2|` summed across publishers.
    pub fn xor_count(&self, other: &Self) -> usize {
        self.union_count(other) - self.intersect_count(other)
    }

    /// Merges another profile into this one with bitwise OR —
    /// clustering two subscriptions into one (Figure 1).
    pub fn or_assign(&mut self, other: &Self) {
        for (adv, v) in &other.vectors {
            match self.vectors.get_mut(adv) {
                Some(mine) => mine.or_assign(v),
                None => {
                    self.vectors.insert(*adv, v.clone());
                }
            }
        }
    }

    /// The OR of two profiles as a new profile.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Relationship between two profiles, computed from the bit vectors
    /// rather than the subscription language (paper §IV-C.2 and the
    /// online appendix).
    pub fn relationship(&self, other: &Self) -> Relation {
        let inter = self.intersect_count(other);
        if inter == 0 {
            return Relation::Empty;
        }
        let c1 = self.count_ones();
        let c2 = other.count_ones();
        match (inter == c1, inter == c2) {
            (true, true) => Relation::Equal,
            (false, true) => Relation::Superset,
            (true, false) => Relation::Subset,
            (false, false) => Relation::Intersect,
        }
    }

    /// Estimates the load this profile's subscription imposes, given the
    /// publishers' profiles (paper §III-B's example: 10 of 100 bits set,
    /// publisher at 50 msg/s and 50 kB/s → 5 msg/s and 5 kB/s).
    pub fn estimate_load(&self, publishers: &PublisherTable) -> Load {
        let mut load = Load::ZERO;
        for (adv, v) in &self.vectors {
            let Some(p) = publishers.get(*adv) else {
                continue;
            };
            let fraction = fraction_of(v, p.last_msg_id);
            load.rate += fraction * p.rate;
            load.bandwidth += fraction * p.bandwidth;
        }
        load
    }

    /// Estimated *rate increase* of adding `other` to this profile:
    /// `rate(self ∪ other) - rate(self)`, touching only the publishers
    /// `other` mentions. With a running total this turns the allocation
    /// feasibility test from O(|advs(self)|) into O(|advs(other)|) —
    /// the inner loop of CRAM's repeated BIN PACKING runs.
    pub fn estimate_rate_delta(&self, other: &Self, publishers: &PublisherTable) -> f64 {
        let mut delta = 0.0;
        for (adv, o) in &other.vectors {
            let Some(p) = publishers.get(*adv) else {
                continue;
            };
            let ones_new = o.count_ones();
            if ones_new == 0 {
                continue;
            }
            let fraction = |ones: usize, first: u64, cap: usize| -> f64 {
                if ones == 0 {
                    return 0.0;
                }
                let observed = p
                    .last_msg_id
                    .raw()
                    .saturating_sub(first)
                    .saturating_add(1)
                    .min(cap as u64)
                    .max(ones as u64);
                ones as f64 / observed as f64
            };
            match self.vectors.get(adv) {
                Some(mine) => {
                    let old = fraction(mine.count_ones(), mine.first_id(), mine.capacity());
                    let new = fraction(
                        mine.zip_count(o, |a, b| a | b),
                        mine.first_id().min(o.first_id()),
                        mine.capacity().max(o.capacity()),
                    );
                    delta += (new - old) * p.rate;
                }
                None => {
                    delta += fraction(ones_new, o.first_id(), o.capacity()) * p.rate;
                }
            }
        }
        delta
    }

    /// Estimates the load of `self ∪ other` without materializing the
    /// union profile — the hot path of every allocation feasibility
    /// test.
    pub fn estimate_union_load(&self, other: &Self, publishers: &PublisherTable) -> Load {
        let mut load = Load::ZERO;
        let mut add = |adv: AdvId, ones: usize, first: u64, cap: usize| {
            let Some(p) = publishers.get(adv) else { return };
            if ones == 0 {
                return;
            }
            let observed = p
                .last_msg_id
                .raw()
                .saturating_sub(first)
                .saturating_add(1)
                .min(cap as u64)
                .max(ones as u64);
            let fraction = ones as f64 / observed as f64;
            load.rate += fraction * p.rate;
            load.bandwidth += fraction * p.bandwidth;
        };
        for (adv, v) in &self.vectors {
            match other.vectors.get(adv) {
                Some(o) => add(
                    *adv,
                    v.zip_count(o, |a, b| a | b),
                    v.first_id().min(o.first_id()),
                    v.capacity().max(o.capacity()),
                ),
                None => add(*adv, v.count_ones(), v.first_id(), v.capacity()),
            }
        }
        for (adv, o) in &other.vectors {
            if !self.vectors.contains_key(adv) {
                add(*adv, o.count_ones(), o.first_id(), o.capacity());
            }
        }
        load
    }
}

/// Fraction of a publisher's recent publications this vector recorded.
///
/// The denominator is the number of observable slots: ids from the
/// window start through the publisher's last sent message, capped at
/// the vector capacity.
pub fn fraction_of(v: &ShiftingBitVector, last_msg_id: MsgId) -> f64 {
    let ones = v.count_ones();
    if ones == 0 {
        return 0.0;
    }
    let observed = last_msg_id
        .raw()
        .saturating_sub(v.first_id())
        .saturating_add(1)
        .min(v.capacity() as u64)
        .max(ones as u64);
    ones as f64 / observed as f64
}

/// How two profiles relate, derived from their bit vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Identical publication sets.
    Equal,
    /// `self`'s publication set strictly contains `other`'s.
    Superset,
    /// `self`'s publication set is strictly contained in `other`'s.
    Subset,
    /// Non-empty overlap, neither contains the other.
    Intersect,
    /// No common publications.
    Empty,
}

impl Relation {
    /// Derives the relation from precomputed pair cardinalities — the
    /// same decision procedure as [`SubscriptionProfile::relationship`]
    /// (`|∩| = 0` → empty; otherwise compare `|∩|` against `|S1|` and
    /// `|S2|`), so a [`crate::kernel::ClosenessKernel`] can classify a
    /// pair without re-walking the profiles.
    #[must_use]
    pub fn from_cardinalities(c: PairCardinalities) -> Relation {
        if c.and == 0 {
            return Relation::Empty;
        }
        match (c.and == c.left, c.and == c.right) {
            (true, true) => Relation::Equal,
            (false, true) => Relation::Superset,
            (true, false) => Relation::Subset,
            (false, false) => Relation::Intersect,
        }
    }

    /// The same relation seen from the other profile's side.
    #[must_use]
    pub fn flip(self) -> Relation {
        match self {
            Relation::Superset => Relation::Subset,
            Relation::Subset => Relation::Superset,
            r => r,
        }
    }
}

/// A publisher's profile: identity, rates and the synchronization
/// counter (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PublisherProfile {
    /// The publisher's advertisement id.
    pub adv_id: AdvId,
    /// Publication rate in messages per second.
    pub rate: f64,
    /// Bandwidth consumption in bytes per second.
    pub bandwidth: f64,
    /// Message id of the last publication sent.
    pub last_msg_id: MsgId,
}

impl PublisherProfile {
    /// Creates a publisher profile.
    pub fn new(adv_id: AdvId, rate: f64, bandwidth: f64, last_msg_id: MsgId) -> Self {
        Self {
            adv_id,
            rate,
            bandwidth,
            last_msg_id,
        }
    }

    /// Mean publication size in bytes.
    pub fn mean_msg_size(&self) -> f64 {
        if self.rate <= 0.0 {
            0.0
        } else {
            self.bandwidth / self.rate
        }
    }
}

/// All publishers known to CROC, keyed by advertisement id.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PublisherTable {
    publishers: BTreeMap<AdvId, PublisherProfile>,
}

impl PublisherTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a publisher profile.
    pub fn insert(&mut self, profile: PublisherProfile) {
        self.publishers.insert(profile.adv_id, profile);
    }

    /// Looks up a publisher.
    pub fn get(&self, adv: AdvId) -> Option<&PublisherProfile> {
        self.publishers.get(&adv)
    }

    /// Iterates over profiles.
    pub fn iter(&self) -> impl Iterator<Item = &PublisherProfile> {
        self.publishers.values()
    }

    /// Number of publishers.
    pub fn len(&self) -> usize {
        self.publishers.len()
    }

    /// True when no publishers are known.
    pub fn is_empty(&self) -> bool {
        self.publishers.is_empty()
    }

    /// Total publication rate across all publishers.
    pub fn total_rate(&self) -> f64 {
        self.publishers.values().map(|p| p.rate).sum()
    }

    /// Merges another table, keeping the entry with the larger
    /// `last_msg_id` on conflict (BIA aggregation).
    pub fn merge(&mut self, other: &PublisherTable) {
        for p in other.publishers.values() {
            match self.publishers.get(&p.adv_id) {
                Some(mine) if mine.last_msg_id >= p.last_msg_id => {}
                _ => self.insert(*p),
            }
        }
    }
}

impl FromIterator<PublisherProfile> for PublisherTable {
    fn from_iter<T: IntoIterator<Item = PublisherProfile>>(iter: T) -> Self {
        let mut t = Self::new();
        for p in iter {
            t.insert(p);
        }
        t
    }
}

/// Estimated rate and bandwidth requirement of a subscription, cluster
/// or broker.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Load {
    /// Messages per second.
    pub rate: f64,
    /// Bytes per second.
    pub bandwidth: f64,
}

impl Load {
    /// Zero load.
    pub const ZERO: Load = Load {
        rate: 0.0,
        bandwidth: 0.0,
    };

    /// Creates a load.
    pub fn new(rate: f64, bandwidth: f64) -> Self {
        Self { rate, bandwidth }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: Load) -> Load {
        Load {
            rate: self.rate + other.rate,
            bandwidth: self.bandwidth + other.bandwidth,
        }
    }

    /// Scales both components.
    #[must_use]
    pub fn scaled(self, k: f64) -> Load {
        Load {
            rate: self.rate * k,
            bandwidth: self.bandwidth * k,
        }
    }
}

impl std::ops::Add for Load {
    type Output = Load;
    fn add(self, rhs: Load) -> Load {
        self.plus(rhs)
    }
}

impl std::ops::AddAssign for Load {
    fn add_assign(&mut self, rhs: Load) {
        *self = self.plus(rhs);
    }
}

impl fmt::Display for Load {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} msg/s, {:.0} B/s", self.rate, self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(first: u64, bits: &[bool]) -> ShiftingBitVector {
        ShiftingBitVector::from_bits(bits.len().max(1), first, bits)
    }

    fn adv(n: u64) -> AdvId {
        AdvId::new(n)
    }

    #[test]
    fn record_builds_per_publisher_vectors() {
        let mut p = SubscriptionProfile::with_capacity(16);
        p.record(adv(1), MsgId::new(75));
        p.record(adv(1), MsgId::new(76));
        p.record(adv(2), MsgId::new(144));
        assert_eq!(p.publisher_count(), 2);
        assert_eq!(p.count_ones(), 3);
        assert!(p.vector(adv(1)).unwrap().contains(75));
        assert!(p.vector(adv(3)).is_none());
        assert!(!p.is_empty());
    }

    #[test]
    fn figure_1_profile_clustering() {
        // S1 = {Adv1: 11100@75, Adv2: 11111@144}
        // S2 = {Adv1: 00111@75, Adv3: 00100@2}
        let mut s1 = SubscriptionProfile::with_capacity(5);
        s1.insert_vector(adv(1), bv(75, &[true, true, true, false, false]));
        s1.insert_vector(adv(2), bv(144, &[true, true, true, true, true]));
        let mut s2 = SubscriptionProfile::with_capacity(5);
        s2.insert_vector(adv(1), bv(75, &[false, false, true, true, true]));
        s2.insert_vector(adv(3), bv(2, &[false, false, true, false, false]));

        let merged = s1.or(&s2);
        assert_eq!(merged.publisher_count(), 3);
        assert_eq!(merged.vector(adv(1)).unwrap().count_ones(), 5);
        assert_eq!(merged.vector(adv(2)).unwrap().count_ones(), 5);
        assert_eq!(merged.vector(adv(3)).unwrap().count_ones(), 1);
        assert_eq!(merged.count_ones(), 11);

        assert_eq!(s1.intersect_count(&s2), 1);
        assert_eq!(s1.union_count(&s2), 11);
        assert_eq!(s1.xor_count(&s2), 10);
    }

    #[test]
    fn relationships() {
        let mut a = SubscriptionProfile::with_capacity(8);
        a.insert_vector(adv(1), bv(0, &[true, true, true, false]));
        let mut b = SubscriptionProfile::with_capacity(8);
        b.insert_vector(adv(1), bv(0, &[true, true, false, false]));
        let mut c = SubscriptionProfile::with_capacity(8);
        c.insert_vector(adv(1), bv(0, &[false, false, false, true]));
        let mut d = SubscriptionProfile::with_capacity(8);
        d.insert_vector(adv(2), bv(0, &[true, false, false, false]));

        assert_eq!(a.relationship(&a.clone()), Relation::Equal);
        assert_eq!(a.relationship(&b), Relation::Superset);
        assert_eq!(b.relationship(&a), Relation::Subset);
        assert_eq!(a.relationship(&c), Relation::Empty);
        assert_eq!(a.relationship(&d), Relation::Empty);
        let mixed = b.or(&c); // {0,1,3} vs a {0,1,2} → intersect
        assert_eq!(a.relationship(&mixed), Relation::Intersect);
        assert_eq!(Relation::Superset.flip(), Relation::Subset);
        assert_eq!(Relation::Intersect.flip(), Relation::Intersect);
    }

    #[test]
    fn paper_load_estimation_example() {
        // "a subscription with 10 out of 100 bits set in a bit vector
        // corresponding to a publisher whose publication rate is
        // 50 msg/s and bandwidth is 50 kB/s → 5 msg/s and 5 kB/s."
        let mut bits = vec![false; 100];
        for slot in bits.iter_mut().take(10) {
            *slot = true;
        }
        let mut s = SubscriptionProfile::with_capacity(100);
        s.insert_vector(adv(1), bv(0, &bits));
        let publishers: PublisherTable = [PublisherProfile::new(
            adv(1),
            50.0,
            50_000.0,
            MsgId::new(99), // 100 observable slots
        )]
        .into_iter()
        .collect();
        let load = s.estimate_load(&publishers);
        assert!((load.rate - 5.0).abs() < 1e-9);
        assert!((load.bandwidth - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn load_estimation_with_short_observation() {
        // Only 10 slots observed, 5 set → fraction 0.5 even though the
        // vector could hold 100.
        let mut s = SubscriptionProfile::with_capacity(100);
        let mut v = ShiftingBitVector::starting_at(100, 0);
        for id in 0..5 {
            v.record(id * 2);
        }
        s.insert_vector(adv(1), v);
        let publishers: PublisherTable =
            [PublisherProfile::new(adv(1), 10.0, 1000.0, MsgId::new(9))]
                .into_iter()
                .collect();
        let load = s.estimate_load(&publishers);
        assert!((load.rate - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_publisher_contributes_nothing() {
        let mut s = SubscriptionProfile::with_capacity(8);
        s.insert_vector(adv(9), bv(0, &[true]));
        assert_eq!(s.estimate_load(&PublisherTable::new()), Load::ZERO);
    }

    #[test]
    fn publisher_table_merge_keeps_freshest() {
        let mut a = PublisherTable::new();
        a.insert(PublisherProfile::new(adv(1), 1.0, 10.0, MsgId::new(5)));
        let mut b = PublisherTable::new();
        b.insert(PublisherProfile::new(adv(1), 2.0, 20.0, MsgId::new(9)));
        b.insert(PublisherProfile::new(adv(2), 3.0, 30.0, MsgId::new(1)));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(adv(1)).unwrap().rate, 2.0);
        assert_eq!(a.total_rate(), 5.0);
        assert!(!a.is_empty());
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn mean_msg_size() {
        let p = PublisherProfile::new(adv(1), 50.0, 50_000.0, MsgId::new(0));
        assert_eq!(p.mean_msg_size(), 1000.0);
        let idle = PublisherProfile::new(adv(1), 0.0, 0.0, MsgId::new(0));
        assert_eq!(idle.mean_msg_size(), 0.0);
    }

    #[test]
    fn load_arithmetic() {
        let mut l = Load::new(1.0, 10.0) + Load::new(2.0, 20.0);
        l += Load::new(1.0, 1.0);
        assert_eq!(l, Load::new(4.0, 31.0));
        assert_eq!(l.scaled(2.0), Load::new(8.0, 62.0));
        assert_eq!(Load::new(1.5, 100.0).to_string(), "1.50 msg/s, 100 B/s");
    }

    #[test]
    fn profiles_equal_and_hashable_for_gifs() {
        use std::collections::HashSet;
        let mut a = SubscriptionProfile::with_capacity(8);
        a.insert_vector(adv(1), bv(0, &[true, false, true]));
        let b = a.clone();
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
