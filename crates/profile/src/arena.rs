//! Contiguous bitset arena — the cache-friendly backing store for the
//! closeness engine's hot path.
//!
//! CRAM's closest-pair search spends nearly all of its popcount time
//! streaming over pairs of bit windows. Storing each window in its own
//! heap `Vec` (one per [`ShiftingBitVector`]) scatters them across the
//! heap, so every pair evaluation is a pointer chase. The arena instead
//! keeps all windows in **one** contiguous `Vec<u64>` of fixed-stride
//! rows: a pair evaluation reads two adjacent slices of the same
//! allocation, which stays resident in L1/L2 across a tile of
//! evaluations and never allocates.
//!
//! Rows are addressed by a small copyable [`RowId`] handle. Freed rows
//! go on a free list and are reused, so the arena's footprint tracks
//! the number of live profiles, not the insertion count.
//!
//! The word-level popcount routine is literally shared with
//! [`ShiftingBitVector::pair_cardinalities`] (both call the same
//! `pair_cardinalities_windows` helper), so arena-backed cardinalities
//! are identical to the per-profile path by construction — the property
//! the engine's layout proptests pin down.

use crate::bitvec::{pair_cardinalities_windows, PairCardinalities, ShiftingBitVector};

const WORD_BITS: usize = 64;

/// Handle to one fixed-stride row in a [`BitsetArena`].
///
/// Handles are only meaningful for the arena that issued them; using a
/// stale handle after [`BitsetArena::remove`] reads as an empty row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(u32);

#[derive(Debug, Clone, Copy, Default)]
struct RowMeta {
    live: bool,
    first_id: u64,
    window_end: u64,
    ones: usize,
}

/// One contiguous `Vec<u64>` pool of fixed-stride bit windows.
#[derive(Debug, Clone)]
pub struct BitsetArena {
    stride_words: usize,
    stride_bits: usize,
    words: Vec<u64>,
    meta: Vec<RowMeta>,
    free: Vec<RowId>,
    live: usize,
}

impl BitsetArena {
    /// Creates an empty arena whose rows hold `stride_bits` bits each
    /// (rounded up to whole words; at least one word).
    pub fn new(stride_bits: usize) -> Self {
        let stride_words = stride_bits.div_ceil(WORD_BITS).max(1);
        Self {
            stride_words,
            stride_bits: stride_words * WORD_BITS,
            words: Vec::new(),
            meta: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Row capacity in bits (the fixed stride, rounded up to words).
    pub fn stride_bits(&self) -> usize {
        self.stride_bits
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Copies a bit vector into a fresh row and returns its handle, or
    /// `None` when the vector's window capacity exceeds the stride (the
    /// caller keeps such oversize vectors in a side store).
    pub fn try_insert(&mut self, v: &ShiftingBitVector) -> Option<RowId> {
        if v.capacity() > self.stride_bits || v.words().len() > self.stride_words {
            return None;
        }
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                let id = RowId(u32::try_from(self.meta.len()).ok()?);
                self.words.resize(self.words.len() + self.stride_words, 0);
                self.meta.push(RowMeta::default());
                id
            }
        };
        let start = id.0 as usize * self.stride_words;
        if let Some(row) = self.words.get_mut(start..start + self.stride_words) {
            let src = v.words();
            for (i, w) in row.iter_mut().enumerate() {
                *w = src.get(i).copied().unwrap_or(0);
            }
        }
        if let Some(m) = self.meta.get_mut(id.0 as usize) {
            *m = RowMeta {
                live: true,
                first_id: v.first_id(),
                window_end: v.window_end(),
                ones: v.count_ones(),
            };
        }
        self.live += 1;
        Some(id)
    }

    /// Releases a row for reuse. Removing a dead or unknown handle is a
    /// no-op.
    pub fn remove(&mut self, id: RowId) {
        if let Some(m) = self.meta.get_mut(id.0 as usize) {
            if m.live {
                m.live = false;
                self.free.push(id);
                self.live -= 1;
            }
        }
    }

    /// Cached popcount of a row (zero for dead handles).
    pub fn ones(&self, id: RowId) -> usize {
        match self.meta.get(id.0 as usize) {
            Some(m) if m.live => m.ones,
            _ => 0,
        }
    }

    /// The row's raw window as `(words, first_id, window_end)`, or
    /// `None` for dead handles.
    pub fn row(&self, id: RowId) -> Option<(&[u64], u64, u64)> {
        let m = self.meta.get(id.0 as usize).filter(|m| m.live)?;
        let start = id.0 as usize * self.stride_words;
        let words = self.words.get(start..start + self.stride_words)?;
        Some((words, m.first_id, m.window_end))
    }

    /// Streaming popcount over two rows — the arena-side batch kernel.
    /// Dead handles read as empty windows. Allocation-free.
    pub fn pair_cardinalities(&self, a: RowId, b: RowId) -> PairCardinalities {
        match (self.row(a), self.row(b)) {
            (Some(ra), Some(rb)) => pair_cardinalities_windows(ra, rb),
            (Some(_), None) => PairCardinalities::left_only(self.ones(a)),
            (None, Some(_)) => PairCardinalities::right_only(self.ones(b)),
            (None, None) => PairCardinalities::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(first: u64, ids: &[u64]) -> ShiftingBitVector {
        let mut v = ShiftingBitVector::starting_at(128, first);
        for &id in ids {
            v.record(id);
        }
        v
    }

    #[test]
    fn insert_and_read_back_round_trips() {
        let mut arena = BitsetArena::new(128);
        let v = vector(10, &[10, 75, 100]);
        let id = arena.try_insert(&v).unwrap();
        assert_eq!(arena.ones(id), 3);
        let (words, first, end) = arena.row(id).unwrap();
        assert_eq!(first, 10);
        assert_eq!(end, 10 + 128);
        assert_eq!(words.len(), 2);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn oversize_vectors_are_rejected() {
        let mut arena = BitsetArena::new(64);
        let v = ShiftingBitVector::starting_at(1280, 0);
        assert!(arena.try_insert(&v).is_none());
        assert!(arena.is_empty());
    }

    #[test]
    fn cardinalities_match_bitvec_kernel() {
        let mut arena = BitsetArena::new(256);
        // Mix aligned and misaligned windows, as CRAM's profiles do.
        let cases = [
            (vector(0, &[1, 2, 64, 130]), vector(0, &[2, 64, 200])),
            (vector(0, &[5, 9]), vector(8, &[9, 20, 200])),
            (vector(40, &[41]), vector(3, &[41, 99])),
        ];
        for (a, b) in &cases {
            let ra = arena.try_insert(a).unwrap();
            let rb = arena.try_insert(b).unwrap();
            assert_eq!(arena.pair_cardinalities(ra, rb), a.pair_cardinalities(b));
        }
    }

    #[test]
    fn freed_rows_are_reused_and_read_empty() {
        let mut arena = BitsetArena::new(128);
        let a = arena.try_insert(&vector(0, &[1, 2, 3])).unwrap();
        let words_before = {
            arena.try_insert(&vector(0, &[9])).unwrap();
            arena.len()
        };
        arena.remove(a);
        assert_eq!(arena.ones(a), 0);
        assert!(arena.row(a).is_none());
        let b = arena.try_insert(&vector(0, &[7])).unwrap();
        assert_eq!(b, a, "free list reuses the slot");
        assert_eq!(arena.len(), words_before);
        assert_eq!(arena.ones(b), 1);
        // Double-remove is a no-op.
        arena.remove(a);
        arena.remove(a);
        assert_eq!(arena.len(), words_before - 1);
    }
}
