//! # greenps-profile
//!
//! The bit-vector supported resource allocation framework of the paper's
//! Phase 1: bounded shifting bit vectors, per-publisher subscription
//! profiles, publisher profiles, load estimation, the four closeness
//! metrics, profile relationships, and the poset used by CRAM's search
//! pruning.
//!
//! Everything here is *language independent* — relationships and
//! closeness are computed from which publications a subscription
//! actually received, never from its filter syntax.
//!
//! ## Example
//!
//! ```
//! use greenps_profile::{ClosenessMetric, PublisherProfile, PublisherTable, SubscriptionProfile};
//! use greenps_pubsub::ids::{AdvId, MsgId};
//!
//! let mut s1 = SubscriptionProfile::new();
//! let mut s2 = SubscriptionProfile::new();
//! for id in 0..100u64 {
//!     s1.record(AdvId::new(1), MsgId::new(id));
//!     if id % 2 == 0 {
//!         s2.record(AdvId::new(1), MsgId::new(id));
//!     }
//! }
//! assert_eq!(s1.intersect_count(&s2), 50);
//! let ios = ClosenessMetric::Ios.closeness(&s1, &s2);
//! assert!((ios - 50.0 * 50.0 / 150.0).abs() < 1e-9);
//!
//! let publishers: PublisherTable =
//!     [PublisherProfile::new(AdvId::new(1), 50.0, 50_000.0, MsgId::new(99))]
//!         .into_iter()
//!         .collect();
//! let load = s2.estimate_load(&publishers);
//! assert!((load.rate - 25.0).abs() < 1e-9); // half the publications
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod bitvec;
pub mod closeness;
pub mod kernel;
pub mod poset;
pub mod profile;

pub use arena::{BitsetArena, RowId};
pub use bitvec::{PairCardinalities, ShiftingBitVector, DEFAULT_CAPACITY};
pub use closeness::{Closeness, ClosenessMetric, XOR_CAP};
pub use kernel::{ArenaKernel, ClosenessKernel, PerProfileKernel};
pub use poset::Poset;
pub use profile::{
    fraction_of, Load, PublisherProfile, PublisherTable, Relation, SubscriptionProfile,
};
