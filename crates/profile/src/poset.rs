//! The poset (partially ordered set) of subscription profiles
//! (paper §IV-C.2, Figure 2).
//!
//! A directed acyclic graph where each node holds a unique profile;
//! parents' publication sets are supersets of their children's, while
//! intersecting or disjoint profiles are siblings. Unlike the classic
//! Siena poset, ordering is computed from **bit vectors**, not the
//! subscription language — which is what makes the framework
//! language-independent.
//!
//! CRAM uses the poset for its search-pruning optimization: the search
//! for a profile's closest partner walks the DAG breadth-first and
//! prunes entire subtrees whose roots have an empty relationship with
//! the probe (descendants of a disjoint profile are also disjoint).

use crate::profile::{Relation, SubscriptionProfile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::Hash;

#[derive(Debug, Clone)]
struct Node<K: Ord> {
    profile: SubscriptionProfile,
    parents: BTreeSet<K>,
    children: BTreeSet<K>,
}

/// A DAG of profiles ordered by publication-set containment.
#[derive(Debug, Clone)]
pub struct Poset<K: Ord> {
    nodes: BTreeMap<K, Node<K>>,
    roots: BTreeSet<K>,
    /// Relationship computations performed so far (E8 ablation metric).
    relation_ops: u64,
}

impl<K: Copy + Ord + Eq + Hash> Default for Poset<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Ord + Eq + Hash> Poset<K> {
    /// Creates an empty poset.
    pub fn new() -> Self {
        Self {
            nodes: BTreeMap::new(),
            roots: BTreeSet::new(),
            relation_ops: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the poset has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when `k` is present.
    pub fn contains(&self, k: K) -> bool {
        self.nodes.contains_key(&k)
    }

    /// The profile stored at `k`.
    pub fn profile(&self, k: K) -> Option<&SubscriptionProfile> {
        self.nodes.get(&k).map(|n| &n.profile)
    }

    /// Keys with no parents (maximal profiles).
    pub fn roots(&self) -> impl Iterator<Item = K> + '_ {
        self.roots.iter().copied()
    }

    /// Children of `k` (covered profiles one level down).
    pub fn children(&self, k: K) -> impl Iterator<Item = K> + '_ {
        self.nodes
            .get(&k)
            .into_iter()
            .flat_map(|n| n.children.iter().copied())
    }

    /// Parents of `k` (covering profiles one level up).
    pub fn parents(&self, k: K) -> impl Iterator<Item = K> + '_ {
        self.nodes
            .get(&k)
            .into_iter()
            .flat_map(|n| n.parents.iter().copied())
    }

    /// All keys, in key order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.nodes.keys().copied()
    }

    /// Number of profile-relationship computations performed by inserts
    /// and removals so far.
    pub fn relation_ops(&self) -> u64 {
        self.relation_ops
    }

    /// Inserts a profile under key `k`, wiring it between its tightest
    /// covering nodes and the maximal nodes it covers.
    ///
    /// Profiles equal to an existing node are attached *below* the equal
    /// node (GIF grouping normally prevents duplicates).
    ///
    /// # Panics
    /// Panics if `k` is already present.
    pub fn insert(&mut self, k: K, profile: SubscriptionProfile) {
        assert!(!self.nodes.contains_key(&k), "key already in poset");

        let parents = self.find_parents(&profile);
        let children = self.find_children(&profile, &parents);

        // Unlink parent→child edges now routed through the new node.
        // find_parents/find_children only yield keys already stored in
        // the poset, so every lookup below succeeds.
        for &p in &parents {
            for &c in &children {
                if self.nodes[&p].children.contains(&c) {
                    if let Some(pn) = self.nodes.get_mut(&p) {
                        pn.children.remove(&c);
                    }
                    if let Some(cn) = self.nodes.get_mut(&c) {
                        cn.parents.remove(&p);
                    }
                }
            }
        }
        for &p in &parents {
            if let Some(pn) = self.nodes.get_mut(&p) {
                pn.children.insert(k);
            }
        }
        for &c in &children {
            if let Some(cn) = self.nodes.get_mut(&c) {
                cn.parents.insert(k);
            }
            if self.nodes[&c].parents.len() == 1 {
                self.roots.remove(&c);
            }
        }
        if parents.is_empty() {
            self.roots.insert(k);
        }
        self.nodes.insert(
            k,
            Node {
                profile,
                parents: parents.into_iter().collect(),
                children: children.into_iter().collect(),
            },
        );
    }

    /// Finds the minimal set of nodes whose profiles cover (⊇) `p`.
    fn find_parents(&mut self, p: &SubscriptionProfile) -> Vec<K> {
        let mut ops = 0u64;
        let mut parents = Vec::new();
        let mut frontier: VecDeque<K> = self.roots.iter().copied().collect();
        let mut visited: BTreeSet<K> = BTreeSet::new();
        while let Some(n) = frontier.pop_front() {
            if !visited.insert(n) {
                continue;
            }
            ops += 1;
            let rel = self.nodes[&n].profile.relationship(p);
            if !matches!(rel, Relation::Superset | Relation::Equal) {
                continue;
            }
            // Does a child cover p more tightly?
            let mut tighter = false;
            let kids: Vec<K> = self.nodes[&n].children.iter().copied().collect();
            for c in kids {
                ops += 1;
                let crel = self.nodes[&c].profile.relationship(p);
                if matches!(crel, Relation::Superset | Relation::Equal) {
                    tighter = true;
                    frontier.push_back(c);
                }
            }
            if !tighter && !parents.contains(&n) {
                parents.push(n);
            }
        }
        self.relation_ops += ops;
        parents
    }

    /// Finds the maximal set of nodes strictly covered by `p`, pruning
    /// subtrees with empty relationships.
    fn find_children(&mut self, p: &SubscriptionProfile, parents: &[K]) -> Vec<K> {
        let mut candidates: Vec<K> = Vec::new();
        let start: Vec<K> = if parents.is_empty() {
            self.roots.iter().copied().collect()
        } else {
            parents
                .iter()
                .flat_map(|&par| self.nodes[&par].children.iter().copied())
                .collect()
        };
        let mut ops = 0u64;
        let mut frontier: VecDeque<K> = start.into();
        let mut visited: BTreeSet<K> = BTreeSet::new();
        while let Some(n) = frontier.pop_front() {
            if !visited.insert(n) {
                continue;
            }
            ops += 1;
            let rel = p.relationship(&self.nodes[&n].profile);
            match rel {
                Relation::Superset => {
                    // p strictly covers n: candidate child; descendants
                    // are dominated.
                    candidates.push(n);
                }
                Relation::Empty => {
                    // Descendants of a disjoint profile are disjoint too.
                }
                _ => {
                    for c in self.nodes[&n].children.iter().copied() {
                        frontier.push_back(c);
                    }
                }
            }
        }
        // Keep only maximal candidates (drop any candidate covered by
        // another candidate).
        let mut maximal: Vec<K> = Vec::new();
        'outer: for &c in &candidates {
            for &d in &candidates {
                if c != d {
                    ops += 1;
                    let rel = self.nodes[&d].profile.relationship(&self.nodes[&c].profile);
                    if rel == Relation::Superset && !maximal.contains(&c) {
                        // c is dominated by d — but only drop when d is
                        // itself (transitively) kept; since domination is
                        // transitive over candidates, dropping is safe.
                        continue 'outer;
                    }
                }
            }
            maximal.push(c);
        }
        self.relation_ops += ops;
        maximal
    }

    /// Removes a node, reconnecting its parents to its children.
    ///
    /// Returns the stored profile, or `None` when absent.
    pub fn remove(&mut self, k: K) -> Option<SubscriptionProfile> {
        let node = self.nodes.remove(&k)?;
        self.roots.remove(&k);
        // Edges are kept symmetric, so every parent/child recorded on
        // the removed node is itself present in the map.
        for &p in &node.parents {
            if let Some(pn) = self.nodes.get_mut(&p) {
                pn.children.remove(&k);
            }
        }
        for &c in &node.children {
            if let Some(cn) = self.nodes.get_mut(&c) {
                cn.parents.remove(&k);
            }
        }
        // Reconnect: every parent adopts every child (edges remain
        // containment-consistent by transitivity).
        for &p in &node.parents {
            for &c in &node.children {
                if let Some(pn) = self.nodes.get_mut(&p) {
                    pn.children.insert(c);
                }
                if let Some(cn) = self.nodes.get_mut(&c) {
                    cn.parents.insert(p);
                }
            }
        }
        for &c in &node.children {
            if self.nodes[&c].parents.is_empty() {
                self.roots.insert(c);
            }
        }
        Some(node.profile)
    }

    /// Breadth-first traversal from the roots, visiting every node once.
    pub fn bfs(&self) -> PosetBfs<'_, K> {
        PosetBfs {
            poset: self,
            frontier: self.roots.iter().copied().collect(),
            visited: BTreeSet::new(),
        }
    }

    /// Verifies structural invariants (tests/debugging): edge symmetry,
    /// containment along edges, acyclicity, and root correctness.
    ///
    /// # Panics
    /// Panics with a description when an invariant is violated.
    pub fn check_invariants(&self) {
        for (k, n) in &self.nodes {
            for c in &n.children {
                assert!(self.nodes.contains_key(c), "dangling child");
                if let Some(cn) = self.nodes.get(c) {
                    assert!(cn.parents.contains(k), "edge not symmetric");
                    let rel = n.profile.relationship(&cn.profile);
                    assert!(
                        matches!(rel, Relation::Superset | Relation::Equal),
                        "parent does not cover child"
                    );
                }
            }
            assert_eq!(
                n.parents.is_empty(),
                self.roots.contains(k),
                "root set wrong"
            );
        }
        // Acyclicity via BFS count (every node reachable exactly once
        // from roots and no node revisited means no cycle among
        // reachable nodes); unreachable nodes would indicate a cycle.
        let reached = self.bfs().count();
        assert_eq!(reached, self.nodes.len(), "cycle or orphan detected");
    }
}

/// Iterator over a poset in breadth-first order from the roots.
pub struct PosetBfs<'a, K: Ord> {
    poset: &'a Poset<K>,
    frontier: VecDeque<K>,
    visited: BTreeSet<K>,
}

impl<K: Copy + Ord + Eq + Hash> Iterator for PosetBfs<'_, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        while let Some(k) = self.frontier.pop_front() {
            if self.visited.insert(k) {
                for c in self.poset.nodes[&k].children.iter().copied() {
                    self.frontier.push_back(c);
                }
                return Some(k);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::ShiftingBitVector;
    use greenps_pubsub::ids::AdvId;

    /// Profile with the given publication ids set for publisher 1.
    fn prof(ids: &[u64]) -> SubscriptionProfile {
        let mut v = ShiftingBitVector::starting_at(256, 0);
        for &id in ids {
            v.record(id);
        }
        let mut p = SubscriptionProfile::with_capacity(256);
        p.insert_vector(AdvId::new(1), v);
        p
    }

    #[test]
    fn figure_2_shape() {
        // ROOT-level nodes: STOCK (broad) and SPORTS (disjoint), with
        // STOCK covering two narrower profiles.
        let mut poset: Poset<u32> = Poset::new();
        let stock = prof(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let yhoo = prof(&[0, 1, 2]);
        let volume = prof(&[4, 5]);
        let sports = prof(&[100, 101]);
        let racing = prof(&[100]);
        poset.insert(1, stock);
        poset.insert(2, yhoo);
        poset.insert(3, volume);
        poset.insert(4, sports);
        poset.insert(5, racing);
        poset.check_invariants();

        let roots: Vec<u32> = poset.roots().collect();
        assert_eq!(roots, vec![1, 4]);
        let stock_children: Vec<u32> = poset.children(1).collect();
        assert_eq!(stock_children, vec![2, 3]);
        assert_eq!(poset.children(4).collect::<Vec<_>>(), vec![5]);
        assert_eq!(poset.parents(5).collect::<Vec<_>>(), vec![4]);
        assert_eq!(poset.len(), 5);
    }

    #[test]
    fn insert_in_any_order_gives_same_structure() {
        let profiles: Vec<(u32, SubscriptionProfile)> = vec![
            (1, prof(&[0, 1, 2, 3, 4, 5, 6, 7])),
            (2, prof(&[0, 1, 2])),
            (3, prof(&[4, 5])),
            (4, prof(&[0, 1])),
        ];
        let mut orders = vec![
            vec![0, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![1, 3, 0, 2],
            vec![2, 0, 3, 1],
        ];
        let mut shapes: Vec<Vec<(u32, Vec<u32>)>> = Vec::new();
        for order in orders.drain(..) {
            let mut poset: Poset<u32> = Poset::new();
            for i in order {
                let (k, p) = &profiles[i];
                poset.insert(*k, p.clone());
            }
            poset.check_invariants();
            let shape: Vec<(u32, Vec<u32>)> = poset
                .keys()
                .map(|k| (k, poset.children(k).collect()))
                .collect();
            shapes.push(shape);
        }
        for s in &shapes[1..] {
            assert_eq!(s, &shapes[0]);
        }
        // expected: 1 → {2, 3}, 2 → {4}
        assert_eq!(
            shapes[0],
            vec![(1, vec![2, 3]), (2, vec![4]), (3, vec![]), (4, vec![])]
        );
    }

    #[test]
    fn intermediate_insert_rewires_edges() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0, 1, 2, 3]));
        poset.insert(2, prof(&[0]));
        assert_eq!(poset.children(1).collect::<Vec<_>>(), vec![2]);
        // Insert a profile between 1 and 2.
        poset.insert(3, prof(&[0, 1]));
        poset.check_invariants();
        assert_eq!(poset.children(1).collect::<Vec<_>>(), vec![3]);
        assert_eq!(poset.children(3).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn diamond_with_multiple_parents() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0, 1, 2]));
        poset.insert(2, prof(&[1, 2, 3]));
        poset.insert(3, prof(&[1, 2])); // covered by both
        poset.check_invariants();
        assert_eq!(poset.parents(3).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(poset.roots().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn remove_reconnects_grandparents() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0, 1, 2, 3]));
        poset.insert(2, prof(&[0, 1]));
        poset.insert(3, prof(&[0]));
        assert_eq!(poset.children(2).collect::<Vec<_>>(), vec![3]);
        let removed = poset.remove(2).unwrap();
        assert_eq!(removed.count_ones(), 2);
        poset.check_invariants();
        assert_eq!(poset.children(1).collect::<Vec<_>>(), vec![3]);
        assert_eq!(poset.parents(3).collect::<Vec<_>>(), vec![1]);
        assert!(poset.remove(99).is_none());
    }

    #[test]
    fn remove_root_promotes_children() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0, 1, 2, 3]));
        poset.insert(2, prof(&[0, 1]));
        poset.insert(3, prof(&[2, 3]));
        poset.remove(1);
        poset.check_invariants();
        let roots: Vec<u32> = poset.roots().collect();
        assert_eq!(roots, vec![2, 3]);
    }

    #[test]
    fn bfs_visits_every_node_once() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0, 1, 2]));
        poset.insert(2, prof(&[1, 2, 3]));
        poset.insert(3, prof(&[1, 2]));
        poset.insert(4, prof(&[50]));
        let order: Vec<u32> = poset.bfs().collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[..3], [1, 2, 4]); // roots first in key order
        assert_eq!(order[3], 3);
    }

    #[test]
    fn equal_profile_attaches_below() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0, 1]));
        poset.insert(2, prof(&[0, 1]));
        poset.check_invariants();
        assert_eq!(poset.children(1).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "key already in poset")]
    fn duplicate_key_panics() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0]));
        poset.insert(1, prof(&[1]));
    }

    #[test]
    fn relation_ops_counter_moves() {
        let mut poset: Poset<u32> = Poset::new();
        poset.insert(1, prof(&[0, 1, 2]));
        let before = poset.relation_ops();
        poset.insert(2, prof(&[0, 1]));
        assert!(poset.relation_ops() > before);
    }

    #[test]
    fn randomized_inserts_and_removes_keep_invariants() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut poset: Poset<u32> = Poset::new();
        let mut live: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for _ in 0..200 {
            if live.is_empty() || rng.gen_bool(0.65) {
                let ids: Vec<u64> = (0..rng.gen_range(1..6))
                    .map(|_| rng.gen_range(0..24))
                    .collect();
                poset.insert(next, prof(&ids));
                live.push(next);
                next += 1;
            } else {
                let i = rng.gen_range(0..live.len());
                let k = live.swap_remove(i);
                poset.remove(k).unwrap();
            }
            poset.check_invariants();
        }
    }
}
