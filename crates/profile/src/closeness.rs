//! Closeness metrics between subscription profiles (paper §IV-C).
//!
//! Given two profiles `S1`, `S2` (bit-vector sets):
//!
//! * **INTERSECT** — `|S1 ∩ S2|`;
//! * **XOR** — `1 / |S1 ⊕ S2|`, capped when the xor cardinality is zero
//!   (derived from Gryphon's metric; note it cannot distinguish empty
//!   from non-empty relationships);
//! * **IOS** — `|S1 ∩ S2|² / (|S1| + |S2|)`;
//! * **IOU** — `|S1 ∩ S2|² / |S1 ∪ S2|`.
//!
//! IOS and IOU favour clustering higher-traffic subscriptions (the
//! squared numerator) while penalizing non-overlapping traffic, and are
//! zero exactly when the relationship is empty — the property CRAM's
//! poset search pruning relies on.

use crate::bitvec::PairCardinalities;
use crate::profile::SubscriptionProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pluggable closeness measure between subscription profiles.
///
/// The paper's four metrics implement this via [`ClosenessMetric`];
/// downstream users can supply their own measure to CRAM
/// (`greenps_core::cram::CramBuilder::custom`). Higher values indicate
/// more favourable clustering candidates; a measure that returns `0.0`
/// exactly for empty relationships should report
/// [`Closeness::supports_empty_pruning`] so CRAM can prune its poset
/// search.
///
/// The `Sync` bound lets the parallel closeness engine share a measure
/// across its scoped worker threads; stateless measures (like the four
/// paper metrics) satisfy it automatically.
pub trait Closeness: Sync {
    /// Closeness between two profiles; higher is more favourable.
    fn closeness(&self, a: &SubscriptionProfile, b: &SubscriptionProfile) -> f64;

    /// True when the measure is zero exactly for empty relationships.
    fn supports_empty_pruning(&self) -> bool {
        false
    }
}

impl Closeness for ClosenessMetric {
    fn closeness(&self, a: &SubscriptionProfile, b: &SubscriptionProfile) -> f64 {
        ClosenessMetric::closeness(*self, a, b)
    }

    fn supports_empty_pruning(&self) -> bool {
        ClosenessMetric::supports_empty_pruning(*self)
    }
}

/// Cap applied to the XOR metric when `|S1 ⊕ S2| = 0` (identical sets),
/// standing in for "division by zero handled with a capped maximum".
pub const XOR_CAP: f64 = 1e9;

/// The four closeness metrics evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClosenessMetric {
    /// Cardinality of the intersection.
    Intersect,
    /// Inverse of the xor'ed cardinality (Gryphon-derived).
    Xor,
    /// Intersect-over-sum: `|∩|² / (|S1| + |S2|)`.
    Ios,
    /// Intersect-over-union: `|∩|² / |∪|`.
    Iou,
}

impl ClosenessMetric {
    /// All metrics, in the paper's presentation order.
    pub const ALL: [ClosenessMetric; 4] = [
        ClosenessMetric::Intersect,
        ClosenessMetric::Xor,
        ClosenessMetric::Ios,
        ClosenessMetric::Iou,
    ];

    /// Computes the closeness between two profiles. Higher is more
    /// favourable for clustering.
    ///
    /// All four metrics are served by one batch popcount pass
    /// ([`SubscriptionProfile::pair_cardinalities`]) rather than
    /// separate intersect/union/count walks.
    pub fn closeness(self, a: &SubscriptionProfile, b: &SubscriptionProfile) -> f64 {
        self.from_cardinalities(a.pair_cardinalities(b))
    }

    /// Evaluates the metric from precomputed pair cardinalities.
    ///
    /// This is the scalar half of [`Self::closeness`]: a
    /// [`crate::kernel::ClosenessKernel`] produces the cardinalities
    /// from whatever layout it stores profiles in, and this function
    /// turns them into the metric value. Because `closeness` itself
    /// routes through here, any kernel whose cardinalities match the
    /// per-profile pass yields bit-identical `f64` results.
    pub fn from_cardinalities(self, c: PairCardinalities) -> f64 {
        match self {
            ClosenessMetric::Intersect => c.and as f64,
            ClosenessMetric::Xor => {
                let x = c.xor();
                if x == 0 {
                    XOR_CAP
                } else {
                    1.0 / x as f64
                }
            }
            ClosenessMetric::Ios => {
                let inter = c.and as f64;
                let denom = (c.left + c.right) as f64;
                if denom == 0.0 {
                    0.0
                } else {
                    inter * inter / denom
                }
            }
            ClosenessMetric::Iou => {
                let inter = c.and as f64;
                let union = c.or as f64;
                if union == 0.0 {
                    0.0
                } else {
                    inter * inter / union
                }
            }
        }
    }

    /// True when the metric is zero exactly for empty relationships,
    /// enabling poset search pruning (INTERSECT, IOS, IOU — not XOR).
    pub fn supports_empty_pruning(self) -> bool {
        !matches!(self, ClosenessMetric::Xor)
    }
}

impl fmt::Display for ClosenessMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClosenessMetric::Intersect => "INTERSECT",
            ClosenessMetric::Xor => "XOR",
            ClosenessMetric::Ios => "IOS",
            ClosenessMetric::Iou => "IOU",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::ShiftingBitVector;
    use greenps_pubsub::ids::AdvId;

    /// Builds a profile with `ones` bits set starting at `offset`, on a
    /// universe of `cap` slots of a single publisher.
    fn profile(cap: usize, offset: usize, ones: usize) -> SubscriptionProfile {
        let mut bits = vec![false; cap];
        for slot in bits.iter_mut().skip(offset).take(ones) {
            *slot = true;
        }
        let mut p = SubscriptionProfile::with_capacity(cap);
        p.insert_vector(AdvId::new(1), ShiftingBitVector::from_bits(cap, 0, &bits));
        p
    }

    #[test]
    fn figure_3_ios_arithmetic() {
        // S1 has 36 bits, S2 has 16 bits, overlap is 8 bits:
        // IOS(S1,S2) = 8²/52 ... the paper works with |S1|+|S2| = 60
        // because its S1∩S2 region is counted in both: 8²/(36+16+8) is
        // not the paper's reading — it uses |S1|=36, |S2|=16 where the 8
        // shaded bits belong to both, so |S1|+|S2| = 52? The paper
        // computes 8² ÷ 60 ≈ 1.07, i.e. |S1|=36 and |S2|=24 overall.
        // We reproduce the arithmetic with explicit sets: |S1|=36,
        // |S2|=24, |∩|=8.
        let s1 = profile(64, 0, 36); // ids 0..36
        let s2 = profile(64, 28, 24); // ids 28..52, overlap 28..36 = 8
        assert_eq!(s1.intersect_count(&s2), 8);
        let ios = ClosenessMetric::Ios.closeness(&s1, &s2);
        assert!((ios - 64.0 / 60.0).abs() < 1e-9, "got {ios}");
        assert!((ios - 1.07).abs() < 0.01);
    }

    #[test]
    fn figure_3_covered_subscription_closeness() {
        // closeness between S1 (36 bits) and one of its covered 4-bit
        // subscriptions: 4²/40 = 0.4
        let s1 = profile(64, 0, 36);
        let small = profile(64, 0, 4);
        let ios = ClosenessMetric::Ios.closeness(&s1, &small);
        assert!((ios - 0.4).abs() < 1e-9);
        // and S2 (24 bits in the paper's totals) with a 1-bit covered
        // subscription: 1²/25 = 0.04
        let s2 = profile(64, 0, 24);
        let unit = profile(64, 0, 1);
        let ios = ClosenessMetric::Ios.closeness(&s2, &unit);
        assert!((ios - 0.04).abs() < 1e-9);
    }

    #[test]
    fn figure_3_cgs_closeness_beats_pairwise() {
        // S1 with ALL of its covered subscriptions: 12²/48 = 3 — greater
        // than S1-S2 closeness 1.07, supporting optimization 3.
        let s1 = profile(64, 0, 36);
        let covered = profile(64, 0, 12);
        let ios = ClosenessMetric::Ios.closeness(&s1, &covered);
        assert!((ios - 3.0).abs() < 1e-9);
        // S2 with its covered set: 8²/32 = 2.
        let s2 = profile(64, 0, 24);
        let covered2 = profile(64, 0, 8);
        let ios2 = ClosenessMetric::Ios.closeness(&s2, &covered2);
        assert!((ios2 - 2.0).abs() < 1e-9);
        assert!(ios > 1.07 && ios2 > 1.07);
    }

    #[test]
    fn intersect_metric() {
        let a = profile(32, 0, 10);
        let b = profile(32, 5, 10);
        assert_eq!(ClosenessMetric::Intersect.closeness(&a, &b), 5.0);
    }

    #[test]
    fn xor_metric_and_cap() {
        let a = profile(32, 0, 10);
        let b = profile(32, 5, 10);
        // xor = 10 non-shared bits
        assert!((ClosenessMetric::Xor.closeness(&a, &b) - 0.1).abs() < 1e-12);
        assert_eq!(ClosenessMetric::Xor.closeness(&a, &a.clone()), XOR_CAP);
    }

    #[test]
    fn xor_cannot_detect_empty_relation() {
        let a = profile(32, 0, 4);
        let b = profile(32, 10, 4);
        assert_eq!(a.intersect_count(&b), 0);
        assert!(ClosenessMetric::Xor.closeness(&a, &b) > 0.0);
        assert!(!ClosenessMetric::Xor.supports_empty_pruning());
    }

    #[test]
    fn ios_iou_zero_on_empty_relation() {
        let a = profile(32, 0, 4);
        let b = profile(32, 10, 4);
        for m in [
            ClosenessMetric::Intersect,
            ClosenessMetric::Ios,
            ClosenessMetric::Iou,
        ] {
            assert_eq!(m.closeness(&a, &b), 0.0, "{m}");
            assert!(m.supports_empty_pruning());
        }
    }

    #[test]
    fn iou_formula() {
        let a = profile(32, 0, 10);
        let b = profile(32, 5, 10); // inter 5, union 15
        let iou = ClosenessMetric::Iou.closeness(&a, &b);
        assert!((iou - 25.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = profile(64, 0, 20);
        let b = profile(64, 10, 30);
        for m in ClosenessMetric::ALL {
            assert_eq!(m.closeness(&a, &b), m.closeness(&b, &a), "{m}");
        }
    }

    #[test]
    fn empty_profiles_yield_zero_not_nan() {
        let e = SubscriptionProfile::new();
        for m in [
            ClosenessMetric::Intersect,
            ClosenessMetric::Ios,
            ClosenessMetric::Iou,
        ] {
            let v = m.closeness(&e, &e);
            assert_eq!(v, 0.0, "{m}");
        }
        // identical empties under XOR hit the cap (xor = 0)
        assert_eq!(ClosenessMetric::Xor.closeness(&e, &e), XOR_CAP);
    }

    #[test]
    fn trait_object_dispatch() {
        let a = profile(32, 0, 10);
        let b = profile(32, 5, 10);
        let dyn_metric: &dyn Closeness = &ClosenessMetric::Ios;
        assert_eq!(
            dyn_metric.closeness(&a, &b),
            ClosenessMetric::Ios.closeness(&a, &b)
        );
        assert!(dyn_metric.supports_empty_pruning());

        /// A custom measure: plain union cardinality.
        struct UnionSize;
        impl Closeness for UnionSize {
            fn closeness(&self, a: &SubscriptionProfile, b: &SubscriptionProfile) -> f64 {
                a.union_count(b) as f64
            }
        }
        assert_eq!(UnionSize.closeness(&a, &b), 15.0);
        assert!(!UnionSize.supports_empty_pruning());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = ClosenessMetric::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, vec!["INTERSECT", "XOR", "IOS", "IOU"]);
    }
}
