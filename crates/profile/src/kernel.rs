//! The closeness kernel — one trait in front of every batch popcount
//! path.
//!
//! The closeness surface used to be spread across
//! `ShiftingBitVector::{and_count,or_count,xor_count,pair_cardinalities}`
//! plus per-profile walks in [`crate::closeness`]. A
//! [`ClosenessKernel`] collapses that to a single question — "what are
//! the pair cardinalities of the profiles stored under these two
//! keys?" — and lets the engine choose *how* profiles are stored:
//!
//! * [`PerProfileKernel`] keeps whole [`SubscriptionProfile`] clones,
//!   byte-for-byte the legacy layout;
//! * [`ArenaKernel`] packs every per-publisher bit window into one
//!   contiguous [`BitsetArena`] so a pair evaluation is a streaming
//!   popcount over adjacent rows with zero allocation.
//!
//! Both paths route through the same word-level routine, so their
//! cardinalities — and therefore every metric value derived via
//! [`crate::ClosenessMetric::from_cardinalities`] — are bit-identical.

use crate::arena::{BitsetArena, RowId};
use crate::bitvec::{pair_cardinalities_windows, PairCardinalities, ShiftingBitVector};
use crate::profile::SubscriptionProfile;
use greenps_pubsub::ids::AdvId;
use std::collections::BTreeMap;

/// Batch cardinality provider over keyed subscription profiles.
///
/// Keys are engine-chosen opaque `u64`s (CRAM uses its GIF keys). A
/// lookup of an unknown key behaves as an empty profile.
pub trait ClosenessKernel: Send + Sync {
    /// Stores (or replaces) the profile under `key`.
    fn insert(&mut self, key: u64, profile: &SubscriptionProfile);

    /// Drops the profile stored under `key` (no-op when absent).
    fn remove(&mut self, key: u64);

    /// Pair cardinalities of the profiles under `a` and `b`, summed
    /// across publishers — the single pass all four closeness metrics
    /// are derived from.
    fn pair_cardinalities(&self, a: u64, b: u64) -> PairCardinalities;

    /// Number of stored profiles.
    fn len(&self) -> usize;

    /// True when no profile is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The legacy layout: one heap-allocated [`SubscriptionProfile`] clone
/// per key. Kept as the reference implementation the arena is proven
/// against.
#[derive(Debug, Default)]
pub struct PerProfileKernel {
    profiles: BTreeMap<u64, SubscriptionProfile>,
}

impl PerProfileKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClosenessKernel for PerProfileKernel {
    fn insert(&mut self, key: u64, profile: &SubscriptionProfile) {
        self.profiles.insert(key, profile.clone());
    }

    fn remove(&mut self, key: u64) {
        self.profiles.remove(&key);
    }

    fn pair_cardinalities(&self, a: u64, b: u64) -> PairCardinalities {
        match (self.profiles.get(&a), self.profiles.get(&b)) {
            (Some(pa), Some(pb)) => pa.pair_cardinalities(pb),
            (Some(pa), None) => PairCardinalities::left_only(pa.count_ones()),
            (None, Some(pb)) => PairCardinalities::right_only(pb.count_ones()),
            (None, None) => PairCardinalities::default(),
        }
    }

    fn len(&self) -> usize {
        self.profiles.len()
    }
}

/// Where one per-publisher bit window of a keyed profile lives.
#[derive(Debug, Clone, Copy)]
enum Leg {
    /// A fixed-stride arena row.
    Row(RowId),
    /// A slot in the oversize side store.
    Overflow(usize),
}

#[derive(Debug, Clone, Copy)]
struct LegRef {
    adv: AdvId,
    leg: Leg,
    ones: usize,
}

/// The cache-friendly layout: per-publisher windows packed into one
/// contiguous [`BitsetArena`]; windows wider than the stride fall back
/// to an oversize side store. A pair evaluation is a merge-join over
/// two `AdvId`-sorted leg lists — shared publishers stream both rows
/// through the word kernel, single-sided publishers use their cached
/// popcount — and performs **zero** allocations.
#[derive(Debug)]
pub struct ArenaKernel {
    arena: BitsetArena,
    overflow: Vec<Option<ShiftingBitVector>>,
    overflow_free: Vec<usize>,
    entries: BTreeMap<u64, Vec<LegRef>>,
}

impl ArenaKernel {
    /// Creates an empty kernel with the given arena row stride in bits.
    pub fn new(stride_bits: usize) -> Self {
        Self {
            arena: BitsetArena::new(stride_bits),
            overflow: Vec::new(),
            overflow_free: Vec::new(),
            entries: BTreeMap::new(),
        }
    }

    /// Row capacity of the backing arena in bits.
    pub fn stride_bits(&self) -> usize {
        self.arena.stride_bits()
    }

    /// Number of windows that did not fit the stride and live in the
    /// side store (a diagnostics hook: a well-chosen stride keeps this
    /// at zero).
    pub fn overflow_len(&self) -> usize {
        self.overflow.iter().filter(|s| s.is_some()).count()
    }

    fn free_legs(&mut self, legs: &[LegRef]) {
        for l in legs {
            match l.leg {
                Leg::Row(id) => self.arena.remove(id),
                Leg::Overflow(i) => {
                    if let Some(slot) = self.overflow.get_mut(i) {
                        if slot.take().is_some() {
                            self.overflow_free.push(i);
                        }
                    }
                }
            }
        }
    }

    /// Resolves a leg to its raw `(words, first_id, window_end)` view.
    fn view(&self, leg: Leg) -> Option<(&[u64], u64, u64)> {
        match leg {
            Leg::Row(id) => self.arena.row(id),
            Leg::Overflow(i) => {
                let v = self.overflow.get(i)?.as_ref()?;
                Some((v.words(), v.first_id(), v.window_end()))
            }
        }
    }

    fn leg_pair(&self, a: LegRef, b: LegRef) -> PairCardinalities {
        match (self.view(a.leg), self.view(b.leg)) {
            (Some(ra), Some(rb)) => pair_cardinalities_windows(ra, rb),
            (Some(_), None) => PairCardinalities::left_only(a.ones),
            (None, Some(_)) => PairCardinalities::right_only(b.ones),
            (None, None) => PairCardinalities::default(),
        }
    }
}

impl ClosenessKernel for ArenaKernel {
    fn insert(&mut self, key: u64, profile: &SubscriptionProfile) {
        if let Some(old) = self.entries.remove(&key) {
            self.free_legs(&old);
        }
        let mut legs = Vec::with_capacity(profile.publisher_count());
        // `SubscriptionProfile::iter` walks a BTreeMap, so legs come out
        // sorted by AdvId — the order the merge-join relies on.
        for (adv, v) in profile.iter() {
            let ones = v.count_ones();
            let leg = match self.arena.try_insert(v) {
                Some(id) => Leg::Row(id),
                None => {
                    let i = match self.overflow_free.pop() {
                        Some(i) => i,
                        None => {
                            self.overflow.push(None);
                            self.overflow.len() - 1
                        }
                    };
                    if let Some(slot) = self.overflow.get_mut(i) {
                        *slot = Some(v.clone());
                    }
                    Leg::Overflow(i)
                }
            };
            legs.push(LegRef { adv, leg, ones });
        }
        self.entries.insert(key, legs);
    }

    fn remove(&mut self, key: u64) {
        if let Some(legs) = self.entries.remove(&key) {
            self.free_legs(&legs);
        }
    }

    fn pair_cardinalities(&self, a: u64, b: u64) -> PairCardinalities {
        let empty: &[LegRef] = &[];
        let la = self.entries.get(&a).map_or(empty, Vec::as_slice);
        let lb = self.entries.get(&b).map_or(empty, Vec::as_slice);
        let mut total = PairCardinalities::default();
        let (mut i, mut j) = (0, 0);
        // Merge-join over the AdvId-sorted leg lists, mirroring
        // `SubscriptionProfile::pair_cardinalities`' two-map walk.
        while let (Some(x), Some(y)) = (la.get(i), lb.get(j)) {
            total = total.plus(match x.adv.cmp(&y.adv) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    self.leg_pair(*x, *y)
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    PairCardinalities::left_only(x.ones)
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    PairCardinalities::right_only(y.ones)
                }
            });
        }
        while let Some(x) = la.get(i) {
            total = total.plus(PairCardinalities::left_only(x.ones));
            i += 1;
        }
        while let Some(y) = lb.get(j) {
            total = total.plus(PairCardinalities::right_only(y.ones));
            j += 1;
        }
        total
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenps_pubsub::ids::MsgId;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_profile(rng: &mut StdRng, cap: usize) -> SubscriptionProfile {
        let mut p = SubscriptionProfile::with_capacity(cap);
        for adv in 0..rng.gen_range(0..4u64) {
            for _ in 0..rng.gen_range(0..30) {
                p.record(AdvId::new(adv), MsgId::new(rng.gen_range(0..cap as u64)));
            }
        }
        p
    }

    #[test]
    fn kernels_agree_with_profile_walk() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let cap = rng.gen_range(1..200usize);
            let a = random_profile(&mut rng, cap);
            let b = random_profile(&mut rng, cap);
            let expected = a.pair_cardinalities(&b);

            let mut per = PerProfileKernel::new();
            per.insert(1, &a);
            per.insert(2, &b);
            assert_eq!(per.pair_cardinalities(1, 2), expected);

            // Stride smaller than some capacities exercises overflow.
            let mut arena = ArenaKernel::new(64);
            arena.insert(1, &a);
            arena.insert(2, &b);
            assert_eq!(arena.pair_cardinalities(1, 2), expected);
        }
    }

    #[test]
    fn unknown_keys_read_as_empty_profiles() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_profile(&mut rng, 64);
        for k in [
            &mut PerProfileKernel::new() as &mut dyn ClosenessKernel,
            &mut ArenaKernel::new(128),
        ] {
            k.insert(7, &a);
            let c = k.pair_cardinalities(7, 99);
            assert_eq!(c.and, 0);
            assert_eq!(c.left, a.count_ones());
            assert_eq!(c.right, 0);
            assert_eq!(k.pair_cardinalities(99, 98), PairCardinalities::default());
        }
    }

    #[test]
    fn remove_and_reinsert_reuses_arena_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_profile(&mut rng, 64);
        let b = random_profile(&mut rng, 64);
        let mut k = ArenaKernel::new(64);
        k.insert(1, &a);
        k.insert(2, &b);
        assert_eq!(k.len(), 2);
        k.remove(1);
        assert_eq!(k.len(), 1);
        assert_eq!(k.pair_cardinalities(1, 2).left, 0);
        k.insert(3, &a);
        assert_eq!(k.pair_cardinalities(3, 2), a.pair_cardinalities(&b));
        // Replacing a key frees its old legs.
        k.insert(2, &a);
        assert_eq!(k.pair_cardinalities(3, 2), a.pair_cardinalities(&a));
    }
}
