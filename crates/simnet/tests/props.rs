//! Property-based tests of the discrete-event network: causality, FIFO
//! per link, bandwidth conservation and counter consistency.

use greenps_simnet::{Context, LinkSpec, Network, NodeId, Payload, Process, SimDuration, SimTime};
use proptest::prelude::*;
use std::any::Any;

#[derive(Debug, Clone)]
struct Tagged {
    seq: u64,
    size: usize,
}

impl Payload for Tagged {
    fn wire_size(&self) -> usize {
        self.size
    }
}

/// Sends a scripted list of (delay_us, size) messages to one target.
struct ScriptedSender {
    target: NodeId,
    script: Vec<(u64, usize)>,
}

impl Process<Tagged> for ScriptedSender {
    fn on_start(&mut self, ctx: &mut Context<'_, Tagged>) {
        for (i, &(delay, size)) in self.script.iter().enumerate() {
            ctx.send_after(
                SimDuration::from_micros(delay),
                self.target,
                Tagged {
                    seq: i as u64,
                    size,
                },
            );
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, Tagged>, _: NodeId, _: Tagged) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records every arrival with its time.
#[derive(Default)]
struct Recorder {
    got: Vec<(SimTime, u64, usize)>,
}

impl Process<Tagged> for Recorder {
    fn on_message(&mut self, ctx: &mut Context<'_, Tagged>, _: NodeId, msg: Tagged) {
        self.got.push((ctx.now(), msg.seq, msg.size));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arrival time respects causality: at least send-delay + latency +
    /// serialization after t=0; and messages sent with equal delays on
    /// one FIFO link arrive in send order.
    #[test]
    fn causality_and_fifo(
        script in proptest::collection::vec((0u64..10_000, 1usize..5_000), 1..30),
        latency_us in 0u64..5_000,
        bandwidth in 1_000.0..1_000_000.0f64,
    ) {
        let mut net: Network<Tagged> = Network::new();
        let recorder = net.add_node(Recorder::default());
        let sender = net.add_node(ScriptedSender {
            target: recorder,
            script: script.clone(),
        });
        net.connect(
            sender,
            recorder,
            LinkSpec {
                latency: SimDuration::from_micros(latency_us),
                bandwidth: Some(bandwidth),
            },
        );
        net.run_to_quiescence();
        let rec: &Recorder = net.node_as(recorder).unwrap();
        prop_assert_eq!(rec.got.len(), script.len());
        for &(at, seq, size) in &rec.got {
            let (delay, ssize) = script[seq as usize];
            prop_assert_eq!(size, ssize);
            let min_arrival = delay
                + latency_us
                + (ssize as f64 / bandwidth * 1e6) as u64;
            prop_assert!(
                at.as_micros() + 1 >= min_arrival,
                "seq {} arrived at {} < minimum {}",
                seq, at.as_micros(), min_arrival
            );
        }
        // FIFO: arrivals are sorted by time, and the link never
        // reorders two messages that left in a fixed order.
        for w in rec.got.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "arrival times sorted");
        }
        // Conservation: counters match the script.
        let total_bytes: u64 = script.iter().map(|&(_, s)| s as u64).sum();
        prop_assert_eq!(net.counters(sender).msgs_out, script.len() as u64);
        prop_assert_eq!(net.counters(sender).bytes_out, total_bytes);
        prop_assert_eq!(net.counters(recorder).msgs_in, script.len() as u64);
        prop_assert_eq!(net.delivered(), script.len() as u64);
    }

    /// A node output capacity spreads a burst: n messages of size s at
    /// capacity c finish no earlier than n*s/c seconds.
    #[test]
    fn output_capacity_bounds_throughput(
        n in 1usize..40,
        size in 100usize..2_000,
        capacity in 1_000.0..100_000.0f64,
    ) {
        let script: Vec<(u64, usize)> = (0..n).map(|_| (0, size)).collect();
        let mut net: Network<Tagged> = Network::new();
        let recorder = net.add_node(Recorder::default());
        let sender = net.add_node_with_capacity(
            ScriptedSender { target: recorder, script },
            Some(capacity),
        );
        net.connect(sender, recorder, LinkSpec::with_latency(SimDuration::ZERO));
        net.run_to_quiescence();
        let rec: &Recorder = net.node_as(recorder).unwrap();
        let last = rec.got.iter().map(|&(t, _, _)| t).max().unwrap();
        let lower = (n * size) as f64 / capacity;
        prop_assert!(
            last.as_secs_f64() + 1e-4 >= lower,
            "burst finished at {} < {}",
            last.as_secs_f64(), lower
        );
    }
}
