//! Virtual time.
//!
//! The simulator counts microseconds from the start of the run. Wrapped
//! in newtypes so simulated instants and durations cannot be confused
//! with wall-clock values.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant, saturating at zero when
    /// `earlier` is actually after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_000);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!((t2 - t).as_secs_f64(), 0.5);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimTime::from_micros(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn since_saturates_backwards() {
        assert_eq!(
            SimTime::ZERO.since(SimTime::from_micros(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_micros(5)
                .since(SimTime::from_micros(2))
                .as_micros(),
            3
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1_000_000).to_string(), "t=1.000000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }
}
