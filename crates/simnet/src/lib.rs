//! # greenps-simnet
//!
//! A deterministic discrete-event network simulator standing in for the
//! paper's cluster and SciNet testbeds (see DESIGN.md §2 for the
//! substitution rationale).
//!
//! Nodes are [`Process`] implementations connected by links with
//! propagation latency and optional bandwidth; each node can also be
//! given an *output capacity* to model the paper's broker bandwidth
//! limiter. Virtual time is tracked in microseconds and every run with
//! the same inputs produces the same event order.
//!
//! ## Example
//!
//! ```
//! use greenps_simnet::{Context, LinkSpec, Network, NodeId, Payload, Process, SimDuration};
//! use std::any::Any;
//!
//! struct Hello;
//! #[derive(Debug)]
//! struct Note(&'static str);
//! impl Payload for Note {
//!     fn wire_size(&self) -> usize { self.0.len() }
//! }
//! impl Process<Note> for Hello {
//!     fn on_message(&mut self, ctx: &mut Context<'_, Note>, from: NodeId, msg: Note) {
//!         // Reply only to greetings, not to replies (or the two nodes
//!         // would ping-pong forever).
//!         if msg.0 == "hi" && ctx.has_link(from) {
//!             ctx.send(from, Note("hi back"));
//!         }
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut net: Network<Note> = Network::new();
//! let a = net.add_node(Hello);
//! let b = net.add_node(Hello);
//! net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
//! net.inject(a, b, Note("hi"));
//! net.run_to_quiescence();
//! assert_eq!(net.counters(b).msgs_out, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod metrics;
pub mod network;
pub mod time;

pub use metrics::TrafficCounters;
pub use network::{Context, LinkSpec, Network, NodeId, Payload, Process};
pub use time::{SimDuration, SimTime};
