//! The discrete-event network: nodes, links and the event loop.
//!
//! A [`Network`] owns a set of [`Process`]es (brokers, clients, the CROC
//! coordinator) connected by point-to-point [`LinkSpec`]s with latency
//! and optional bandwidth. Each node additionally has an optional
//! *output capacity* — the paper's broker bandwidth limiter — through
//! which all of its outgoing messages are serialized.
//!
//! Message timing: a message handed to [`Context::send_after`] waits out
//! its processing delay, serializes through the sender's output capacity
//! (FIFO), then through the link's bandwidth (FIFO per direction), then
//! experiences the link's propagation latency, and finally triggers
//! `on_message` at the receiver.

use crate::metrics::TrafficCounters;
use crate::time::{SimDuration, SimTime};
use greenps_telemetry::{Counter, EventSink, Gauge, Histogram, Registry};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// Default output-queue backlog above which a `queue.stall` event is
/// emitted into the `simnet` telemetry ring (when a registry is
/// attached). Experiments probing congestion lower this via
/// [`Network::set_stall_threshold`].
pub const DEFAULT_STALL_THRESHOLD: SimDuration = SimDuration::from_millis(100);

/// Telemetry instruments the event loop feeds when a [`Registry`] is
/// attached via [`Network::set_telemetry`]. Every handle starts as a
/// no-op, so the default-constructed bundle adds only a branch per
/// event — the simulation schedule is identical either way.
struct NetTelemetry {
    delivered: Counter,
    dropped: Counter,
    max_queue_wait_us: Gauge,
    delivery_delay_us: Histogram,
    events: EventSink,
    stall_threshold: SimDuration,
}

impl NetTelemetry {
    fn disabled() -> Self {
        Self {
            delivered: Counter::noop(),
            dropped: Counter::noop(),
            max_queue_wait_us: Gauge::noop(),
            delivery_delay_us: Histogram::noop(),
            events: EventSink::noop(),
            stall_threshold: DEFAULT_STALL_THRESHOLD,
        }
    }

    fn attach(registry: &Registry, stall_threshold: SimDuration) -> Self {
        Self {
            delivered: registry.counter("simnet.delivered"),
            dropped: registry.counter("simnet.dropped"),
            max_queue_wait_us: registry.gauge("simnet.max_queue_wait_us"),
            delivery_delay_us: registry.histogram("simnet.delivery_delay_us"),
            events: registry.ring("simnet"),
            stall_threshold,
        }
    }
}

/// Index of a node inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Payloads must report their serialized size for bandwidth accounting.
pub trait Payload {
    /// Approximate size on the wire, in bytes.
    fn wire_size(&self) -> usize;
}

/// A simulated node's behaviour.
///
/// Implementations must be `'static` so the network can store them as
/// trait objects; `as_any`/`as_any_mut` let the experiment harness
/// downcast back to the concrete type to read statistics.
pub trait Process<M>: 'static {
    /// Called once when the simulation starts (or when the node is added
    /// to a running network).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message arrives from `from`.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _key: u64) {}

    /// Upcast for downcasting in the harness.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting in the harness.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second; `None` means unlimited.
    pub bandwidth: Option<f64>,
}

impl LinkSpec {
    /// A LAN-like link: 0.2 ms latency, 1 Gbps (the paper's testbeds).
    pub fn lan() -> Self {
        Self {
            latency: SimDuration::from_micros(200),
            bandwidth: Some(125_000_000.0),
        }
    }

    /// A latency-only link with unlimited bandwidth.
    pub fn with_latency(latency: SimDuration) -> Self {
        Self {
            latency,
            bandwidth: None,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::lan()
    }
}

#[derive(Debug, Clone)]
struct LinkState {
    spec: LinkSpec,
    /// Per-direction transmit-queue frontier, keyed by source node.
    busy_until: [(NodeId, SimTime); 2],
}

#[derive(Debug)]
struct NodeState {
    /// Output capacity in bytes/s (`None` = unlimited) — the broker
    /// bandwidth limiter from the paper's heterogeneous experiments.
    out_capacity: Option<f64>,
    out_busy_until: SimTime,
    counters: TrafficCounters,
    alive: bool,
}

enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, key: u64 },
    Start { node: NodeId },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Inner<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event<M>>>,
    nodes: Vec<NodeState>,
    links: BTreeMap<(NodeId, NodeId), LinkState>,
    dropped: u64,
    delivered: u64,
    telemetry: NetTelemetry,
}

impl<M: Payload> Inner<M> {
    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn send_from(&mut self, from: NodeId, to: NodeId, msg: M, delay: SimDuration) {
        let size = msg.wire_size();
        let key = Self::link_key(from, to);
        let Some(link) = self.links.get_mut(&key) else {
            // The link was removed (peer death, reconfiguration): the
            // message is lost, like a TCP connection reset mid-send.
            self.dropped += 1;
            self.telemetry.dropped.inc();
            self.telemetry
                .events
                .emit_with("msg.drop", || format!("{from}->{to}: link gone"));
            return;
        };
        let ready = self.now + delay;

        // Serialize through the sender's output capacity.
        let node = &mut self.nodes[from.0];
        let out_start = ready.max(node.out_busy_until);
        let queue_wait = out_start - ready;
        self.telemetry
            .max_queue_wait_us
            .observe_max(queue_wait.as_micros());
        if queue_wait >= self.telemetry.stall_threshold {
            self.telemetry.events.emit_with("queue.stall", || {
                format!("{from}: output backlog {queue_wait}")
            });
        }
        let out_tx = match node.out_capacity {
            Some(bw) => SimDuration::from_secs_f64(size as f64 / bw),
            None => SimDuration::ZERO,
        };
        node.out_busy_until = out_start + out_tx;
        node.counters.msgs_out += 1;
        node.counters.bytes_out += size as u64;
        let node_done = node.out_busy_until;

        // Serialize through the link's per-direction transmit queue.
        let dir = &mut link.busy_until[usize::from(from != key.0)];
        debug_assert!(dir.0 == from);
        let link_start = node_done.max(dir.1);
        let link_tx = match link.spec.bandwidth {
            Some(bw) => SimDuration::from_secs_f64(size as f64 / bw),
            None => SimDuration::ZERO,
        };
        dir.1 = link_start + link_tx;
        let arrival = dir.1 + link.spec.latency;
        self.telemetry
            .delivery_delay_us
            .record((arrival - self.now).as_micros());

        self.push(arrival, EventKind::Deliver { from, to, msg });
    }
}

/// Handle passed to process callbacks for interacting with the network.
pub struct Context<'a, M> {
    inner: &'a mut Inner<M>,
    node: NodeId,
}

impl<M: Payload> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// The id of the node whose callback is running.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Sends a message to a directly linked node. If no link exists
    /// (the peer died or was disconnected) the message is counted as
    /// dropped.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Sends a message after a local processing delay (e.g. the broker's
    /// matching delay). If no link exists the message is dropped.
    pub fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M) {
        let from = self.node;
        self.inner.send_from(from, to, msg, delay);
    }

    /// Schedules `on_timer(key)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, key: u64) {
        let at = self.inner.now + delay;
        self.inner.push(
            at,
            EventKind::Timer {
                node: self.node,
                key,
            },
        );
    }

    /// True when a link to `to` exists.
    pub fn has_link(&self, to: NodeId) -> bool {
        self.inner
            .links
            .contains_key(&Inner::<M>::link_key(self.node, to))
    }
}

/// A deterministic discrete-event network of processes.
pub struct Network<M> {
    inner: Inner<M>,
    processes: Vec<Option<Box<dyn Process<M>>>>,
}

impl<M: Payload + 'static> Default for Network<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Payload + 'static> Network<M> {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        Self {
            inner: Inner {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                nodes: Vec::new(),
                links: BTreeMap::new(),
                dropped: 0,
                delivered: 0,
                telemetry: NetTelemetry::disabled(),
            },
            processes: Vec::new(),
        }
    }

    /// Adds a node with unlimited output capacity; schedules `on_start`.
    pub fn add_node(&mut self, process: impl Process<M>) -> NodeId {
        self.add_node_with_capacity(process, None)
    }

    /// Adds a node whose outgoing traffic is limited to
    /// `out_capacity` bytes/s (`None` = unlimited).
    pub fn add_node_with_capacity(
        &mut self,
        process: impl Process<M>,
        out_capacity: Option<f64>,
    ) -> NodeId {
        let id = NodeId(self.processes.len());
        self.processes.push(Some(Box::new(process)));
        self.inner.nodes.push(NodeState {
            out_capacity,
            out_busy_until: SimTime::ZERO,
            counters: TrafficCounters::new(),
            alive: true,
        });
        self.inner
            .push(self.inner.now, EventKind::Start { node: id });
        id
    }

    /// Connects two nodes with a link.
    ///
    /// # Panics
    /// Panics if either node does not exist, the nodes are equal, or the
    /// link already exists.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        assert!(a != b, "cannot link {a} to itself");
        assert!(a.0 < self.inner.nodes.len() && b.0 < self.inner.nodes.len());
        let key = Inner::<M>::link_key(a, b);
        let prev = self.inner.links.insert(
            key,
            LinkState {
                spec,
                busy_until: [(key.0, SimTime::ZERO), (key.1, SimTime::ZERO)],
            },
        );
        assert!(prev.is_none(), "link {a}-{b} already exists");
    }

    /// Removes the link between two nodes; returns `true` if it existed.
    /// In-flight messages on the link are still delivered.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> bool {
        self.inner
            .links
            .remove(&Inner::<M>::link_key(a, b))
            .is_some()
    }

    /// Marks a node dead: future deliveries and timers for it are
    /// dropped, and its links are removed.
    pub fn kill_node(&mut self, id: NodeId) {
        self.inner.nodes[id.0].alive = false;
        self.processes[id.0] = None;
        self.inner.links.retain(|&(a, b), _| a != id && b != id);
    }

    /// Injects a message directly into `to`'s mailbox at the current
    /// time, bypassing links (used by the experiment harness to bootstrap
    /// protocols; `from` is reported to the handler as the sender).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.inner
            .push(self.inner.now, EventKind::Deliver { from, to, msg });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Number of nodes ever added (dead nodes keep their slots).
    pub fn node_count(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Number of links currently up.
    pub fn link_count(&self) -> usize {
        self.inner.links.len()
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered
    }

    /// Messages dropped (sent to dead nodes).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped
    }

    /// Attaches telemetry instruments from `registry`: the event loop
    /// will feed the `simnet.delivered`/`simnet.dropped` counters, the
    /// `simnet.max_queue_wait_us` gauge (worst output-capacity backlog
    /// seen), the `simnet.delivery_delay_us` histogram (send-to-arrival
    /// simulated delay), and the `simnet` event ring (`msg.drop`,
    /// `queue.stall`). Telemetry is observation only — the event
    /// schedule is bit-identical with or without it. Passing
    /// [`Registry::disabled`] detaches.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        let threshold = self.inner.telemetry.stall_threshold;
        self.inner.telemetry = NetTelemetry::attach(registry, threshold);
    }

    /// Sets the output-queue backlog above which a `queue.stall` event
    /// is emitted (default [`DEFAULT_STALL_THRESHOLD`]).
    pub fn set_stall_threshold(&mut self, threshold: SimDuration) {
        self.inner.telemetry.stall_threshold = threshold;
    }

    /// Traffic counters of a node.
    pub fn counters(&self, id: NodeId) -> &TrafficCounters {
        &self.inner.nodes[id.0].counters
    }

    /// Resets every node's traffic counters (start of a measurement
    /// window).
    pub fn reset_counters(&mut self) {
        for n in &mut self.inner.nodes {
            n.counters.reset();
        }
    }

    /// Downcasts a node's process to a concrete type.
    pub fn node_as<P: Process<M>>(&self, id: NodeId) -> Option<&P> {
        self.processes[id.0]
            .as_deref()
            .and_then(|p| p.as_any().downcast_ref())
    }

    /// Mutable downcast of a node's process.
    pub fn node_as_mut<P: Process<M>>(&mut self, id: NodeId) -> Option<&mut P> {
        self.processes[id.0]
            .as_deref_mut()
            .and_then(|p| p.as_any_mut().downcast_mut())
    }

    /// Runs a node's `on_message` handler synchronously as if `msg` had
    /// just arrived from `from` (harness utility for control-plane calls
    /// that should not consume simulated time).
    pub fn call_node(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.dispatch(EventKind::Deliver { from, to, msg });
    }

    /// Executes the next event, if any; returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.inner.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.inner.now);
        self.inner.now = ev.at;
        self.dispatch(ev.kind);
        true
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        let node = match &kind {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } | EventKind::Start { node } => *node,
        };
        if !self.inner.nodes[node.0].alive {
            if matches!(kind, EventKind::Deliver { .. }) {
                self.inner.dropped += 1;
                self.inner.telemetry.dropped.inc();
                self.inner
                    .telemetry
                    .events
                    .emit_with("msg.drop", || format!("{node}: node dead"));
            }
            return;
        }
        let Some(mut process) = self.processes[node.0].take() else {
            return;
        };
        {
            let mut ctx = Context {
                inner: &mut self.inner,
                node,
            };
            match kind {
                EventKind::Deliver { from, msg, .. } => {
                    let size = msg.wire_size() as u64;
                    ctx.inner.nodes[node.0].counters.msgs_in += 1;
                    ctx.inner.nodes[node.0].counters.bytes_in += size;
                    ctx.inner.delivered += 1;
                    ctx.inner.telemetry.delivered.inc();
                    process.on_message(&mut ctx, from, msg);
                }
                EventKind::Timer { key, .. } => process.on_timer(&mut ctx, key),
                EventKind::Start { .. } => process.on_start(&mut ctx),
            }
        }
        // The handler may have killed its own node; keep the slot empty
        // in that case.
        if self.processes[node.0].is_none() && self.inner.nodes[node.0].alive {
            self.processes[node.0] = Some(process);
        }
    }

    /// Runs until the event queue is empty or `deadline` is reached;
    /// time stops at the deadline if events remain.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(ev)) = self.inner.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.inner.now < deadline {
            self.inner.now = deadline;
        }
    }

    /// Runs for a span of simulated time from `now`.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.inner.now + span;
        self.run_until(deadline);
    }

    /// Drains every pending event regardless of time.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Clone)]
    struct Ping(usize);
    impl Payload for Ping {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    /// Echoes every message back after an optional processing delay and
    /// records arrival times.
    struct Echo {
        delay: SimDuration,
        arrivals: Vec<(SimTime, NodeId)>,
        timers: Vec<u64>,
        started: bool,
    }

    impl Echo {
        fn new(delay: SimDuration) -> Self {
            Self {
                delay,
                arrivals: Vec::new(),
                timers: Vec::new(),
                started: false,
            }
        }
    }

    impl Process<Ping> for Echo {
        fn on_start(&mut self, _ctx: &mut Context<'_, Ping>) {
            self.started = true;
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
            self.arrivals.push((ctx.now(), from));
            if ctx.has_link(from) {
                ctx.send_after(self.delay, from, msg);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, key: u64) {
            self.timers.push(key);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A silent sink.
    struct Sink {
        got: usize,
    }
    impl Process<Ping> for Sink {
        fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn latency_only_round_trip() {
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node(Echo::new(SimDuration::ZERO));
        let b = net.add_node(Echo::new(SimDuration::ZERO));
        net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(5)));
        net.inject(a, b, Ping(100)); // arrives at b at t=0
                                     // b echoes to a (5ms), a echoes back (10ms), forever; run 21ms
        net.run_until(SimTime::from_micros(21_000));
        let a_echo: &Echo = net.node_as(a).unwrap();
        let b_echo: &Echo = net.node_as(b).unwrap();
        assert!(a_echo.started && b_echo.started);
        // a receives at 5, 15 ms
        assert_eq!(
            a_echo
                .arrivals
                .iter()
                .map(|(t, _)| t.as_micros())
                .collect::<Vec<_>>(),
            vec![5_000, 15_000]
        );
        // b receives at 0, 10, 20 ms
        assert_eq!(
            b_echo
                .arrivals
                .iter()
                .map(|(t, _)| t.as_micros())
                .collect::<Vec<_>>(),
            vec![0, 10_000, 20_000]
        );
    }

    #[test]
    fn bandwidth_serializes_messages() {
        // 1000 B/s link, two 500-byte messages sent back-to-back:
        // arrivals at 0.5s and 1.0s (plus zero latency).
        struct Burst;
        impl Process<Ping> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(NodeId(1), Ping(500));
                ctx.send(NodeId(1), Ping(500));
            }
            fn on_message(&mut self, _: &mut Context<'_, Ping>, _: NodeId, _: Ping) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node(Burst);
        let b = net.add_node(Echo::new(SimDuration::ZERO));
        net.connect(
            a,
            b,
            LinkSpec {
                latency: SimDuration::ZERO,
                bandwidth: Some(1000.0),
            },
        );
        net.disconnect(b, a);
        net.connect(
            a,
            b,
            LinkSpec {
                latency: SimDuration::ZERO,
                bandwidth: Some(1000.0),
            },
        );
        net.run_to_quiescence();
        let echo: &Echo = net.node_as(b).unwrap();
        assert_eq!(
            echo.arrivals
                .iter()
                .map(|(t, _)| t.as_micros())
                .collect::<Vec<_>>(),
            vec![500_000, 1_000_000]
        );
    }

    #[test]
    fn node_output_capacity_throttles_across_links() {
        // Node with 1000 B/s output capacity fanning 500-byte messages to
        // two different unlimited links: second message leaves 0.5s later.
        struct Fan;
        impl Process<Ping> for Fan {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(NodeId(1), Ping(500));
                ctx.send(NodeId(2), Ping(500));
            }
            fn on_message(&mut self, _: &mut Context<'_, Ping>, _: NodeId, _: Ping) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node_with_capacity(Fan, Some(1000.0));
        let b = net.add_node(Echo::new(SimDuration::ZERO));
        let c = net.add_node(Echo::new(SimDuration::ZERO));
        net.connect(a, b, LinkSpec::with_latency(SimDuration::ZERO));
        net.connect(a, c, LinkSpec::with_latency(SimDuration::ZERO));
        net.run_until(SimTime::from_micros(2_000_000));
        let b_echo: &Echo = net.node_as(b).unwrap();
        let c_echo: &Echo = net.node_as(c).unwrap();
        assert_eq!(b_echo.arrivals[0].0.as_micros(), 500_000);
        assert_eq!(c_echo.arrivals[0].0.as_micros(), 1_000_000);
    }

    #[test]
    fn processing_delay_shifts_departure() {
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node(Echo::new(SimDuration::from_millis(3)));
        let b = net.add_node(Echo::new(SimDuration::ZERO));
        net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
        net.inject(b, a, Ping(10));
        net.run_until(SimTime::from_micros(4_500));
        let b_echo: &Echo = net.node_as(b).unwrap();
        // a processes 3ms then 1ms latency
        assert_eq!(b_echo.arrivals[0].0.as_micros(), 4_000);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerGuy;
        impl Process<Ping> for TimerGuy {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.set_timer(SimDuration::from_secs(2), 2);
                ctx.set_timer(SimDuration::from_secs(1), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, Ping>, _: NodeId, _: Ping) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node(Echo::new(SimDuration::ZERO));
        let _ = net.add_node(TimerGuy);
        // Echo's timer list is on node a; reuse it by setting timers from a.
        let _ = a;
        net.run_to_quiescence();
        assert_eq!(net.now(), SimTime::from_micros(2_000_000));
    }

    #[test]
    fn kill_node_drops_messages() {
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node(Echo::new(SimDuration::ZERO));
        let b = net.add_node(Sink { got: 0 });
        net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
        net.inject(a, b, Ping(1)); // in flight toward b
        net.kill_node(b);
        net.run_to_quiescence();
        assert_eq!(net.dropped(), 1);
        assert!(net.node_as::<Sink>(b).is_none());
    }

    #[test]
    fn counters_track_traffic() {
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node(Echo::new(SimDuration::ZERO));
        let b = net.add_node(Sink { got: 0 });
        net.connect(a, b, LinkSpec::with_latency(SimDuration::ZERO));
        net.inject(b, a, Ping(64));
        net.run_to_quiescence();
        assert_eq!(net.counters(a).msgs_in, 1);
        assert_eq!(net.counters(a).msgs_out, 1);
        assert_eq!(net.counters(a).bytes_out, 64);
        assert_eq!(net.counters(b).msgs_in, 1);
        assert_eq!(net.node_as::<Sink>(b).unwrap().got, 1);
        assert_eq!(net.delivered(), 2);
        net.reset_counters();
        assert_eq!(net.counters(a).total_msgs(), 0);
    }

    #[test]
    fn send_without_link_is_dropped() {
        // A node whose peer vanished keeps "sending"; the message is
        // counted as dropped instead of crashing the simulation.
        struct Blind;
        impl Process<Ping> for Blind {
            fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, m: Ping) {
                ctx.send(from, m);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net: Network<Ping> = Network::new();
        let a = net.add_node(Echo::new(SimDuration::ZERO));
        let c = net.add_node(Blind);
        net.inject(a, c, Ping(1));
        net.run_to_quiescence();
        assert_eq!(net.dropped(), 1);
    }

    #[test]
    fn telemetry_mirrors_event_loop() {
        let registry = Registry::new();
        let mut net: Network<Ping> = Network::new();
        net.set_telemetry(&registry);
        net.set_stall_threshold(SimDuration::from_micros(1));
        // 1000 B/s output capacity: the second 500-byte message queues
        // for 0.5 s behind the first — well past the stall threshold.
        let a = net.add_node_with_capacity(Echo::new(SimDuration::ZERO), Some(1000.0));
        let b = net.add_node(Sink { got: 0 });
        net.connect(a, b, LinkSpec::with_latency(SimDuration::from_millis(1)));
        net.inject(b, a, Ping(500)); // a echoes each back to b
        net.inject(b, a, Ping(500));
        net.run_to_quiescence();
        net.kill_node(b);
        net.inject(a, b, Ping(1)); // delivery to a dead node: dropped
        net.run_to_quiescence();

        let snap = registry.snapshot();
        // 2 injected into a + 2 echoes into b; the post-kill message drops.
        assert_eq!(snap.counters.get("simnet.delivered"), Some(&4));
        assert_eq!(snap.counters.get("simnet.dropped"), Some(&1));
        assert!(*snap.gauges.get("simnet.max_queue_wait_us").unwrap() >= 500_000);
        let delays = snap.histograms.get("simnet.delivery_delay_us").unwrap();
        assert_eq!(delays.count, 2); // only link sends time a delay
        let ring = snap.rings.get("simnet").unwrap();
        assert!(ring.events.iter().any(|e| e.kind == "queue.stall"));
        assert!(ring.events.iter().any(|e| e.kind == "msg.drop"));
    }

    #[test]
    fn run_until_advances_time_when_idle() {
        let mut net: Network<Ping> = Network::new();
        net.run_until(SimTime::from_micros(123));
        assert_eq!(net.now(), SimTime::from_micros(123));
    }

    #[test]
    fn call_node_is_synchronous() {
        let mut net: Network<Ping> = Network::new();
        let b = net.add_node(Sink { got: 0 });
        net.call_node(b, b, Ping(1));
        assert_eq!(net.node_as::<Sink>(b).unwrap().got, 1);
        assert_eq!(net.now(), SimTime::ZERO);
    }
}
