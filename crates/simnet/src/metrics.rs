//! Measurement utilities for the simulated event loop.
//!
//! The experiment harness measures average broker message rate, hop
//! counts and delivery delays over a simulated window. All aggregation
//! (summaries, delay histograms, quantiles) lives in `greenps-telemetry`
//! — use [`greenps_telemetry::BucketHistogram`] /
//! [`greenps_telemetry::Summary`] directly, or attach a
//! [`greenps_telemetry::Registry`] via `Network::set_telemetry` for the
//! instrument-handle form. Only [`TrafficCounters`] remains here: a
//! plain per-node tally the event loop owns by value on its hot path,
//! mirrored into telemetry instruments when a registry is attached.

use crate::time::SimDuration;

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficCounters {
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
}

impl TrafficCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages in + out — the paper's "broker message rate"
    /// numerator.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_in + self.msgs_out
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Message rate (in+out per second) over a window.
    pub fn msg_rate(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.total_msgs() as f64 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counters_rate() {
        let mut t = TrafficCounters::new();
        t.msgs_in = 30;
        t.msgs_out = 70;
        assert_eq!(t.total_msgs(), 100);
        assert_eq!(t.msg_rate(SimDuration::from_secs(10)), 10.0);
        assert_eq!(t.msg_rate(SimDuration::ZERO), 0.0);
        t.reset();
        assert_eq!(t.total_msgs(), 0);
    }
}
