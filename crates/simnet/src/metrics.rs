//! Measurement utilities: counters and histograms.
//!
//! The experiment harness measures average broker message rate, hop
//! counts and delivery delays over a simulated window. The actual
//! bookkeeping lives in `greenps-telemetry` ([`Summary`] is re-exported
//! from there; [`Histogram`] adapts its `BucketHistogram` to simulated
//! time) so the logic exists in exactly one place;
//! [`TrafficCounters`] remains a plain per-node tally because the
//! event loop owns it by value on its hot path — the network mirrors
//! it into telemetry instruments when a registry is attached
//! (`Network::set_telemetry`).

use crate::time::SimDuration;
use greenps_telemetry::BucketHistogram;

pub use greenps_telemetry::Summary;

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficCounters {
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
}

impl TrafficCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages in + out — the paper's "broker message rate"
    /// numerator.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_in + self.msgs_out
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Message rate (in+out per second) over a window.
    pub fn msg_rate(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.total_msgs() as f64 / window.as_secs_f64()
    }
}

/// Fixed-bucket histogram for delivery delays (microsecond domain) — a
/// thin adapter giving `greenps-telemetry`'s [`BucketHistogram`] a
/// simulated-time recording surface.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: BucketHistogram,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds;
    /// an implicit overflow bucket catches everything above the last.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        Self {
            inner: BucketHistogram::new(bounds),
        }
    }

    /// A default delay histogram: 1ms .. 60s, roughly logarithmic.
    pub fn delay_default() -> Self {
        Self::new(vec![
            1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
            60_000_000,
        ])
    }

    /// Records an observation.
    pub fn record(&mut self, value: u64) {
        self.inner.record(value);
    }

    /// Records a simulated duration in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// The aggregate summary of all recorded values.
    pub fn summary(&self) -> &Summary {
        self.inner.summary()
    }

    /// Approximate value at a quantile in `[0, 1]`, using bucket upper
    /// bounds. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.inner.quantile(q)
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final entry uses
    /// `u64::MAX` as the overflow bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.inner.buckets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counters_rate() {
        let mut t = TrafficCounters::new();
        t.msgs_in = 30;
        t.msgs_out = 70;
        assert_eq!(t.total_msgs(), 100);
        assert_eq!(t.msg_rate(SimDuration::from_secs(10)), 10.0);
        assert_eq!(t.msg_rate(SimDuration::ZERO), 0.0);
        t.reset();
        assert_eq!(t.total_msgs(), 0);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for v in [2.0, 4.0, 6.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));

        let mut t = Summary::new();
        t.record(10.0);
        s.merge(&t);
        assert_eq!(s.count(), 4);
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [5, 9, 50, 500, 5000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (1000, 1), (u64::MAX, 1)]);
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(1.0), Some(5000)); // overflow reports max
        assert_eq!(h.summary().count(), 5);
    }

    #[test]
    fn histogram_record_duration_uses_micros() {
        let mut h = Histogram::delay_default();
        h.record_duration(SimDuration::from_millis(2));
        assert_eq!(h.summary().count(), 1);
        assert_eq!(h.quantile(1.0), Some(5_000));
    }

    #[test]
    fn empty_histogram_quantile_is_none() {
        let h = Histogram::delay_default();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![10, 10]);
    }
}
