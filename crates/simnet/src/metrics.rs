//! Measurement utilities: counters, rate meters and histograms.
//!
//! The experiment harness measures average broker message rate, hop
//! counts and delivery delays over a simulated window; these types do
//! the bookkeeping.

use crate::time::{SimDuration, SimTime};

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficCounters {
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
}

impl TrafficCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages in + out — the paper's "broker message rate"
    /// numerator.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_in + self.msgs_out
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Message rate (in+out per second) over a window.
    pub fn msg_rate(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.total_msgs() as f64 / window.as_secs_f64()
    }
}

/// Online mean/min/max/count accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Fixed-bucket histogram for delivery delays (microsecond domain).
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds;
    /// an implicit overflow bucket catches everything above the last.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| matches!(w, &[a, b] if a < b)),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            summary: Summary::new(),
        }
    }

    /// A default delay histogram: 1ms .. 60s, roughly logarithmic.
    pub fn delay_default() -> Self {
        Self::new(vec![
            1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
            60_000_000,
        ])
    }

    /// Records an observation.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.summary.record(value as f64);
    }

    /// Records a simulated duration in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// The aggregate summary of all recorded values.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate value at a quantile in `[0, 1]`, using bucket upper
    /// bounds. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.summary.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Past the last bound is the overflow bucket: report
                // the observed max instead of a bound.
                return Some(
                    self.bounds
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| self.summary.max().unwrap_or_default() as u64),
                );
            }
        }
        None
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final entry uses
    /// `u64::MAX` as the overflow bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }
}

/// A measurement window: counters become rates relative to its start.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    start: SimTime,
}

impl Window {
    /// Opens a window at `start`.
    pub fn starting(start: SimTime) -> Self {
        Self { start }
    }

    /// Window start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Elapsed span at instant `now`.
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counters_rate() {
        let mut t = TrafficCounters::new();
        t.msgs_in = 30;
        t.msgs_out = 70;
        assert_eq!(t.total_msgs(), 100);
        assert_eq!(t.msg_rate(SimDuration::from_secs(10)), 10.0);
        assert_eq!(t.msg_rate(SimDuration::ZERO), 0.0);
        t.reset();
        assert_eq!(t.total_msgs(), 0);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for v in [2.0, 4.0, 6.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));

        let mut t = Summary::new();
        t.record(10.0);
        s.merge(&t);
        assert_eq!(s.count(), 4);
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [5, 9, 50, 500, 5000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (1000, 1), (u64::MAX, 1)]);
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(1.0), Some(5000)); // overflow reports max
        assert_eq!(h.summary().count(), 5);
    }

    #[test]
    fn empty_histogram_quantile_is_none() {
        let h = Histogram::delay_default();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![10, 10]);
    }

    #[test]
    fn window_elapsed() {
        let w = Window::starting(SimTime::from_micros(1_000));
        assert_eq!(
            w.elapsed(SimTime::from_micros(3_000)),
            SimDuration::from_micros(2_000)
        );
        assert_eq!(w.start(), SimTime::from_micros(1_000));
    }
}
