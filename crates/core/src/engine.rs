//! The parallel closeness engine: a sharded map over worker threads and
//! a memoized pair-closeness cache.
//!
//! CRAM and the PAIRWISE baselines spend almost all their time scanning
//! candidate pairs and evaluating a closeness measure on each. This
//! module factors that scan into two reusable pieces:
//!
//! * [`shard_map`] — partitions a slice of work items across a scoped
//!   worker pool (`crossbeam::thread::scope`) and returns per-item
//!   results **in input order**, so callers observe exactly the
//!   sequential result regardless of thread count;
//! * [`PairCache`] — a symmetric memo table of pair-closeness values
//!   keyed by ordered key pairs, with whole-key invalidation for keys
//!   whose profile changed (merged or deleted GIFs) and a hard entry
//!   budget so adversarial workloads (XOR full scans over large pools)
//!   cannot exhaust memory.
//!
//! Determinism contract: `shard_map(items, t, f)` equals
//! `items.iter().map(f).collect()` for every `t`, because shards are
//! contiguous chunks joined in order and `f` only reads shared
//! snapshot state. Callers keep their own tie-breaking rules; the
//! engine never reorders.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of distinct pairs the cache will hold. Beyond this
/// the cache deterministically stops admitting new entries (existing
/// entries keep being served), bounding memory on full-scan metrics
/// over large pools. 2^20 pairs ≈ 32 MB of key/value storage.
pub const PAIR_CACHE_BUDGET: usize = 1 << 20;

/// Batches smaller than this are not worth a thread spawn: callers
/// should fall back to the sequential path (which [`shard_map`]
/// guarantees is bit-identical) below it. CRAM's post-merge refreshes
/// touch only a handful of stale GIFs each, so without this floor the
/// merge loop would pay a scope spawn per iteration for no gain.
pub const MIN_PARALLEL_BATCH: usize = 16;

/// Minimum number of items a shard must receive before another worker
/// is spawned. Without a floor, a 40-item batch on 8 threads pays eight
/// scope spawns for five items each — the spawn overhead eats the win.
/// Coarsening is *granularity only*: shards remain contiguous chunks
/// joined in input order, so results are unchanged, merely produced by
/// fewer workers.
pub const MIN_SHARD_CHUNK: usize = 32;

/// Caps `threads` so every spawned shard processes at least
/// [`MIN_SHARD_CHUNK`] items (always allowing one).
fn coarsened_threads(threads: usize, items: usize) -> usize {
    threads.max(1).min(items.div_ceil(MIN_SHARD_CHUNK).max(1))
}

/// Number of worker threads the machine can usefully run, with a
/// conservative fallback of 1 when parallelism cannot be queried.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Applies `f` to every item of `items`, fanning contiguous shards out
/// across up to `threads` scoped worker threads, and returns the
/// results in input order.
///
/// With `threads <= 1` (or fewer items than would occupy two workers)
/// this degenerates to a plain sequential map — the parallel path is
/// bit-identical to it by construction, so callers can treat the
/// thread count as a pure performance knob.
pub fn shard_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = coarsened_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let fref = &f;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| s.spawn(move || shard.iter().map(fref).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join());
        }
        out
    })
}

/// Like [`shard_map`], but threads a per-worker scratch value through
/// every call so item processing can reuse buffers instead of
/// allocating per item.
///
/// `make_scratch` runs once per shard (once total on the sequential
/// path); `f` receives the shard's scratch mutably alongside each item.
/// Returns the per-item results in input order plus every scratch in
/// shard order. Because shards are contiguous chunks, concatenating the
/// scratches' accumulated state in shard order observes items in input
/// order — callers that merge scratch contents deterministically get
/// thread-count-independent results, same as [`shard_map`].
pub fn shard_map_scratch<T, R, S, FS, F>(
    items: &[T],
    threads: usize,
    make_scratch: FS,
    f: F,
) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = coarsened_threads(threads, items.len());
    if threads <= 1 {
        let mut scratch = make_scratch();
        let out = items.iter().map(|it| f(&mut scratch, it)).collect();
        return (out, vec![scratch]);
    }
    let chunk = items.len().div_ceil(threads);
    let fref = &f;
    let mref = &make_scratch;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| {
                s.spawn(move || {
                    let mut scratch = mref();
                    let out: Vec<R> = shard.iter().map(|it| fref(&mut scratch, it)).collect();
                    (out, scratch)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        let mut scratches = Vec::with_capacity(handles.len());
        for h in handles {
            let (part, scratch) = h.join();
            out.extend(part);
            scratches.push(scratch);
        }
        (out, scratches)
    })
}

/// How a [`PairCache`] reacts to a key whose profile changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationPolicy {
    /// Drop only the cached pairs touching the changed key (the
    /// default: surviving pairs stay warm across merges).
    #[default]
    TouchedRows,
    /// Drop the entire cache on any invalidation. Deterministic but
    /// conservative — useful when debugging suspected stale entries or
    /// when merges churn most keys anyway.
    Clear,
}

/// Configuration of a [`PairCache`], replacing the grown-by-accretion
/// positional constructor arguments with one named struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of distinct pairs held; beyond it the cache
    /// deterministically stops admitting new entries.
    pub budget: usize,
    /// What `invalidate` drops when a key's profile changes.
    pub invalidation: InvalidationPolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            budget: PAIR_CACHE_BUDGET,
            invalidation: InvalidationPolicy::TouchedRows,
        }
    }
}

/// A symmetric memo table of pair-closeness values.
///
/// Entries are stored under both key orders so `invalidate(k)` can drop
/// every pair touching `k` in one row removal plus its backrefs. The
/// cache is *correctness-neutral*: a hit returns exactly what the
/// measure computed earlier for the same profiles, and callers must
/// invalidate any key whose profile changes (CRAM does so for merged
/// and deleted GIFs; blacklisted pairs keep their entries because the
/// underlying profiles are unchanged).
#[derive(Debug)]
pub struct PairCache<K: Ord + Copy> {
    rows: BTreeMap<K, BTreeMap<K, f64>>,
    pairs: usize,
    config: CacheConfig,
    /// Lookup tallies. Atomics because [`PairCache::get`] runs
    /// concurrently on shard workers over a frozen cache; the totals
    /// are still thread-count-deterministic because every worker
    /// performs the same lookups regardless of sharding.
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Lookup statistics of a [`PairCache`]: how often [`PairCache::get`]
/// found an entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached closeness.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]`; 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<K: Ord + Copy> Default for PairCache<K> {
    fn default() -> Self {
        Self::with_config(CacheConfig::default())
    }
}

impl<K: Ord + Copy> PairCache<K> {
    /// Creates an empty cache with an explicit configuration.
    pub fn with_config(config: CacheConfig) -> Self {
        PairCache {
            rows: BTreeMap::new(),
            pairs: 0,
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of distinct pairs currently cached.
    pub fn len(&self) -> usize {
        self.pairs
    }

    /// True when no pairs are cached.
    pub fn is_empty(&self) -> bool {
        self.pairs == 0
    }

    /// Looks up the cached closeness for the pair `(a, b)` (order
    /// insensitive), tallying the outcome into [`PairCache::stats`].
    pub fn get(&self, a: K, b: K) -> Option<f64> {
        let found = self.peek(a, b);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Lookup without touching the hit/miss tallies (internal upkeep
    /// such as the insert budget check must not skew them).
    fn peek(&self, a: K, b: K) -> Option<f64> {
        self.rows.get(&a).and_then(|row| row.get(&b)).copied()
    }

    /// Hit/miss tallies accumulated by [`PairCache::get`] since
    /// construction (or the last [`PairCache::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss tallies without touching cached entries.
    pub fn reset_stats(&mut self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Inserts a closeness value for the pair `(a, b)`. New pairs are
    /// dropped once [`CacheConfig::budget`] distinct pairs are held;
    /// re-inserting an existing pair always updates it.
    pub fn insert(&mut self, a: K, b: K, closeness: f64) {
        if self.peek(a, b).is_none() && self.pairs >= self.config.budget {
            return;
        }
        let fresh = self
            .rows
            .entry(a)
            .or_default()
            .insert(b, closeness)
            .is_none();
        self.rows.entry(b).or_default().insert(a, closeness);
        if fresh {
            self.pairs += 1;
        }
    }

    /// Drops cached pairs per the configured [`InvalidationPolicy`] when
    /// `k`'s profile changes or `k` disappears from the pool.
    pub fn invalidate(&mut self, k: K) {
        if self.config.invalidation == InvalidationPolicy::Clear {
            if self.touches(k) {
                self.rows.clear();
                self.pairs = 0;
            }
            return;
        }
        if let Some(row) = self.rows.remove(&k) {
            self.pairs -= row.len();
            for partner in row.keys() {
                if let Some(back) = self.rows.get_mut(partner) {
                    back.remove(&k);
                    if back.is_empty() {
                        self.rows.remove(partner);
                    }
                }
            }
        }
    }

    /// True when any cached pair touches `k`.
    pub fn touches(&self, k: K) -> bool {
        self.rows.get(&k).is_some_and(|row| !row.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0usize, 1, 2, 3, 4, 7, 8, 64, 200] {
            let got = shard_map(&items, threads, |x| x * x + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn shard_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(shard_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(shard_map(&[9u32], 4, |x| x + 1), vec![10]);
    }

    #[test]
    fn shard_map_scratch_matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [0usize, 1, 2, 3, 4, 7, 8, 64, 200] {
            let (got, scratches) =
                shard_map_scratch(&items, threads, Vec::new, |scratch: &mut Vec<u64>, x| {
                    scratch.push(*x);
                    x * 3
                });
            assert_eq!(got, expected, "threads={threads}");
            // Concatenating scratches in shard order recovers input order.
            let seen: Vec<u64> = scratches.into_iter().flatten().collect();
            assert_eq!(seen, items, "threads={threads}");
        }
    }

    #[test]
    fn shard_map_scratch_reuses_buffers_within_a_shard() {
        let items: Vec<u32> = (0..8).collect();
        let (calls, scratches) = shard_map_scratch(
            &items,
            1,
            || 0u32,
            |scratch: &mut u32, _| {
                *scratch += 1;
                *scratch
            },
        );
        // One scratch on the sequential path, incremented once per item.
        assert_eq!(scratches, vec![8]);
        assert_eq!(calls, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn shard_map_borrows_shared_state() {
        let table: Vec<u64> = (0..50).map(|i| i * 10).collect();
        let idx: Vec<usize> = (0..50).rev().collect();
        let got = shard_map(&idx, 4, |i| table.get(*i).copied().unwrap_or(0));
        let want: Vec<u64> = idx.iter().map(|i| (*i as u64) * 10).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pair_cache_symmetric_roundtrip() {
        let mut c: PairCache<u64> = PairCache::default();
        assert!(c.is_empty());
        c.insert(3, 7, 1.5);
        assert_eq!(c.get(3, 7), Some(1.5));
        assert_eq!(c.get(7, 3), Some(1.5));
        assert_eq!(c.len(), 1);
        c.insert(7, 3, 2.5); // reversed order updates, not duplicates
        assert_eq!(c.get(3, 7), Some(2.5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pair_cache_self_pair() {
        let mut c: PairCache<u64> = PairCache::default();
        c.insert(5, 5, 9.0);
        assert_eq!(c.get(5, 5), Some(9.0));
        assert_eq!(c.len(), 1);
        c.invalidate(5);
        assert_eq!(c.get(5, 5), None);
        assert!(c.is_empty());
    }

    #[test]
    fn pair_cache_invalidate_drops_all_pairs_touching_key() {
        let mut c: PairCache<u64> = PairCache::default();
        c.insert(1, 2, 0.1);
        c.insert(1, 3, 0.2);
        c.insert(2, 3, 0.3);
        assert_eq!(c.len(), 3);
        c.invalidate(1);
        assert_eq!(c.get(1, 2), None);
        assert_eq!(c.get(2, 1), None);
        assert_eq!(c.get(1, 3), None);
        assert_eq!(c.get(2, 3), Some(0.3));
        assert_eq!(c.len(), 1);
        assert!(!c.touches(1));
        assert!(c.touches(2));
    }

    #[test]
    fn pair_cache_stats_count_hits_and_misses() {
        let mut c: PairCache<u64> = PairCache::default();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(1, 2, 0.5);
        assert!(c.get(1, 2).is_some());
        assert!(c.get(2, 1).is_some());
        assert!(c.get(1, 3).is_none());
        let stats = c.stats();
        assert_eq!(stats, CacheStats { hits: 2, misses: 1 });
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Inserting again (budget check included) must not skew stats.
        c.insert(1, 2, 0.7);
        c.insert(4, 5, 0.9);
        assert_eq!(c.stats(), stats);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.get(1, 2), Some(0.7));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn cache_config_budget_and_clear_policy() {
        let mut c: PairCache<u64> = PairCache::with_config(CacheConfig {
            budget: 2,
            invalidation: InvalidationPolicy::Clear,
        });
        assert_eq!(c.config().budget, 2);
        c.insert(1, 2, 0.1);
        c.insert(1, 3, 0.2);
        c.insert(1, 4, 0.3); // over budget → dropped
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1, 4), None);
        c.invalidate(9); // touches nothing → entries survive
        assert_eq!(c.len(), 2);
        c.invalidate(3); // Clear policy wipes everything
        assert!(c.is_empty());
        assert_eq!(c.get(1, 2), None);
    }

    #[test]
    fn coarsened_threads_floor_shard_sizes() {
        assert_eq!(coarsened_threads(8, 0), 1);
        assert_eq!(coarsened_threads(8, 31), 1);
        assert_eq!(coarsened_threads(8, 64), 2);
        assert_eq!(coarsened_threads(8, 1000), 8);
        assert_eq!(coarsened_threads(0, 1000), 1);
    }

    #[test]
    fn pair_cache_budget_is_enforced_deterministically() {
        let mut c: PairCache<usize> = PairCache::default();
        // Shrink the effective budget by filling to it: too slow to hit
        // the real budget here, so exercise the guard path via a tiny
        // synthetic fill against the public constant's semantics.
        for i in 0..100usize {
            c.insert(i, i + 1000, i as f64);
        }
        assert_eq!(c.len(), 100);
        // Existing entries always update even at the budget.
        c.insert(0, 1000, 42.0);
        assert_eq!(c.get(0, 1000), Some(42.0));
        assert_eq!(c.len(), 100);
    }
}
