//! # greenps-core
//!
//! The paper's primary contribution: green resource allocation for
//! content-based publish/subscribe.
//!
//! * **Phase 2** subscription allocation — [`sorting::fbf`],
//!   [`sorting::bin_packing`], and CRAM via [`cram::CramBuilder`] with
//!   the four closeness metrics, all three optimizations (GIF grouping,
//!   poset search pruning, one-to-many CGS clustering), and a parallel
//!   closest-pair search ([`engine`]);
//! * the related-work baselines [`pairwise::pairwise_k`] /
//!   [`pairwise::pairwise_n`];
//! * **Phase 3** recursive overlay construction
//!   ([`overlay::build_overlay`]) with pure-forwarder elimination,
//!   children takeover and best-fit replacement;
//! * **GRAPE** publisher relocation ([`grape::place_publishers`]);
//! * the composed planner [`croc::plan`];
//! * and the checkpointable [`pipeline`] the whole reconfiguration runs
//!   on ([`pipeline::Pipeline`], [`pipeline::ReconfigContext`],
//!   [`pipeline::CheckpointStore`]).
//!
//! ## Example
//!
//! ```
//! use greenps_core::croc::{plan, PlanConfig};
//! use greenps_core::model::{AllocationInput, BrokerSpec, LinearFn, SubscriptionEntry};
//! use greenps_core::pipeline::ReconfigContext;
//! use greenps_profile::{ClosenessMetric, PublisherProfile, SubscriptionProfile};
//! use greenps_pubsub::ids::{AdvId, BrokerId, MsgId, SubId};
//! use greenps_pubsub::Filter;
//!
//! let mut input = AllocationInput::new();
//! for i in 0..8u64 {
//!     input.brokers.push(BrokerSpec::new(
//!         BrokerId::new(i), format!("tcp://b{i}"),
//!         LinearFn::new(0.0001, 0.0), 100_000.0,
//!     ));
//! }
//! input.publishers.insert(PublisherProfile::new(AdvId::new(1), 50.0, 50_000.0, MsgId::new(99)));
//! for i in 0..20u64 {
//!     let mut p = SubscriptionProfile::new();
//!     for id in 0..40u64 { p.record(AdvId::new(1), MsgId::new(id)); }
//!     input.subscriptions.push(SubscriptionEntry::new(SubId::new(i), Filter::new(), p));
//! }
//! let plan = plan(&input, &PlanConfig::cram(ClosenessMetric::Ios), &ReconfigContext::new())?;
//! assert!(plan.broker_count() < 8); // far fewer brokers than the pool
//! # Ok::<(), greenps_core::pipeline::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod capacity;
pub mod cram;
pub mod croc;
pub mod engine;
pub mod grape;
pub mod model;
pub mod overlay;
pub mod pairwise;
pub mod pipeline;
pub mod sorting;
pub mod zones;

pub use capacity::{pack_all, Packer};
pub use cram::{CramBuilder, CramConfig, CramStats};
pub use croc::{plan, PlanConfig, PlanError, PlannedAllocation, ReconfigurationPlan};
pub use engine::{shard_map, CacheStats, PairCache};
pub use grape::{place_publishers, GrapeConfig, InterestTree};
pub use model::{
    AllocError, Allocation, AllocationInput, BrokerLoad, BrokerSpec, LinearFn, SubscriptionEntry,
    Unit,
};
pub use overlay::{build_overlay, AllocatorKind, Overlay, OverlayConfig, OverlayStats};
pub use pairwise::{pairwise_k, pairwise_n, PairwiseResult};
pub use pipeline::{
    Artifact, ArtifactError, CancelToken, CheckpointStore, Phase, PhaseKind, Pipeline,
    PipelineError, ReconfigContext,
};
pub use sorting::{bin_packing, fbf};
pub use zones::{
    zoned_allocate, zoned_allocate_resumable, StreamingGifBuilder, ZoneFeed, ZonePlan,
    ZonedAllocatePhase, ZonedAllocation, ZonedCheckpoint, ZonedConfig, ZonedRun,
};
